"""Logical definitions and reference evaluations of TPC-D Q3, Q4, Q6.

Parameters default to selectivities matching the paper's experiments
(50 % SHIPDATE restriction for Q3, 3.5 % ORDERDATE restriction for Q4,
20 % / 27 % / 48 % for Q6's three attributes).  Reference evaluators
compute results straight from the generated row lists — slow, obviously
correct, and used by the tests to validate every physical plan.

Revenue arithmetic is integer-exact: prices are cents, discounts are
percent, so ``SUM(extendedprice * (1 - discount))`` is computed as
``Σ extendedprice · (100 - discount)`` in cent-percent units.
"""

from __future__ import annotations

import datetime as dt
from collections import defaultdict
from dataclasses import dataclass

from .datagen import TPCDData
from .schema import LINEITEM_COLUMNS, ORDER_COLUMNS

# column positions (rows are plain tuples)
L_ORDERKEY = LINEITEM_COLUMNS.index("l_orderkey")
L_SHIPDATE = LINEITEM_COLUMNS.index("l_shipdate")
L_COMMITDATE = LINEITEM_COLUMNS.index("l_commitdate")
L_RECEIPTDATE = LINEITEM_COLUMNS.index("l_receiptdate")
L_DISCOUNT = LINEITEM_COLUMNS.index("l_discount")
L_QUANTITY = LINEITEM_COLUMNS.index("l_quantity")
L_EXTENDEDPRICE = LINEITEM_COLUMNS.index("l_extendedprice")
O_ORDERKEY = ORDER_COLUMNS.index("o_orderkey")
O_CUSTKEY = ORDER_COLUMNS.index("o_custkey")
O_ORDERDATE = ORDER_COLUMNS.index("o_orderdate")
O_ORDERPRIORITY = ORDER_COLUMNS.index("o_orderpriority")
O_SHIPPRIORITY = ORDER_COLUMNS.index("o_shippriority")
C_CUSTKEY = 0
C_MKTSEGMENT = 1


def revenue_numerator(lineitem: tuple) -> int:
    """``extendedprice · (100 - discount)`` in cent-percent units."""
    return lineitem[L_EXTENDEDPRICE] * (100 - lineitem[L_DISCOUNT])


def discounted_numerator(lineitem: tuple) -> int:
    """``extendedprice · discount`` (Q6's summand), cent-percent units."""
    return lineitem[L_EXTENDEDPRICE] * lineitem[L_DISCOUNT]


# ----------------------------------------------------------------------
# Q3: shipping priority (restrictions + two joins + grouping + ordering)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Q3Params:
    segment: str = "BUILDING"
    orderdate_before: dt.date = dt.date(1998, 5, 1)
    shipdate_after: dt.date = dt.date(1995, 6, 30)  # ≈ 50 % of LINEITEM
    #: optional inclusive lower bound on O_ORDERDATE; ``None`` keeps the
    #: classic one-sided Q3 window.  A two-sided window is what makes
    #: the join-key pushdown measurable on a key-correlated instance:
    #: qualifying orderkeys then form a band in the *middle* of the
    #: domain, which merge-join early exit alone cannot skip.
    orderdate_from: dt.date | None = None

    def order_qualifies(self, orderdate: dt.date) -> bool:
        """The date window, including the optional lower bound."""
        if self.orderdate_from is not None and orderdate < self.orderdate_from:
            return False
        return orderdate < self.orderdate_before


def reference_q3(data: TPCDData, params: Q3Params | None = None) -> list[tuple]:
    """Rows ``(l_orderkey, o_orderdate, o_shippriority, revenue_numerator)``
    ordered by revenue desc, orderdate asc."""
    params = params or Q3Params()
    wanted_customers = {
        row[C_CUSTKEY] for row in data.customers if row[C_MKTSEGMENT] == params.segment
    }
    orders = {
        row[O_ORDERKEY]: row
        for row in data.orders
        if row[O_CUSTKEY] in wanted_customers
        and params.order_qualifies(row[O_ORDERDATE])
    }
    revenue: dict[tuple, int] = defaultdict(int)
    for item in data.lineitems:
        order = orders.get(item[L_ORDERKEY])
        if order is None or item[L_SHIPDATE] <= params.shipdate_after:
            continue
        group = (item[L_ORDERKEY], order[O_ORDERDATE], order[O_SHIPPRIORITY])
        revenue[group] += revenue_numerator(item)
    rows = [group + (total,) for group, total in revenue.items()]
    rows.sort(key=lambda r: (-r[3], r[1].toordinal(), r[0]))
    return rows


def q3_lineitem_selectivity(data: TPCDData, params: Q3Params | None = None) -> float:
    """Fraction of LINEITEM passing the SHIPDATE restriction (paper: 50 %)."""
    params = params or Q3Params()
    matching = sum(
        1 for item in data.lineitems if item[L_SHIPDATE] > params.shipdate_after
    )
    return matching / len(data.lineitems)


# ----------------------------------------------------------------------
# Q4: order priority checking (restriction + EXISTS semijoin + grouping)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Q4Params:
    orderdate_from: dt.date = dt.date(1997, 1, 1)
    orderdate_until: dt.date = dt.date(1997, 4, 1)  # exclusive; ≈ 3.5 %


def reference_q4(data: TPCDData, params: Q4Params | None = None) -> list[tuple]:
    """Rows ``(o_orderpriority, order_count)`` ordered by priority."""
    params = params or Q4Params()
    late_orders = {
        item[L_ORDERKEY]
        for item in data.lineitems
        if item[L_COMMITDATE] < item[L_RECEIPTDATE]
    }
    counts: dict[str, int] = defaultdict(int)
    for order in data.orders:
        if not params.orderdate_from <= order[O_ORDERDATE] < params.orderdate_until:
            continue
        if order[O_ORDERKEY] in late_orders:
            counts[order[O_ORDERPRIORITY]] += 1
    return sorted(counts.items())


def q4_order_selectivity(data: TPCDData, params: Q4Params | None = None) -> float:
    params = params or Q4Params()
    matching = sum(
        1
        for order in data.orders
        if params.orderdate_from <= order[O_ORDERDATE] < params.orderdate_until
    )
    return matching / len(data.orders)


# ----------------------------------------------------------------------
# Q6: forecasting revenue change (pure multi-attribute restriction)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Q6Params:
    shipdate_from: dt.date = dt.date(1994, 1, 1)
    shipdate_days: int = 511  # ≈ 20 % of the shipdate window (paper's figure)
    discount: int = 6  # percent; BETWEEN discount-1 AND discount+1 → ≈ 27 %
    quantity_below: int = 25  # < 25 of 1..50 → ≈ 48 %

    @property
    def shipdate_until(self) -> dt.date:
        """Exclusive upper bound of the shipdate range."""
        return self.shipdate_from + dt.timedelta(days=self.shipdate_days)


def q6_matches(item: tuple, params: Q6Params) -> bool:
    return (
        params.shipdate_from <= item[L_SHIPDATE] < params.shipdate_until
        and params.discount - 1 <= item[L_DISCOUNT] <= params.discount + 1
        and item[L_QUANTITY] < params.quantity_below
    )


def reference_q6(data: TPCDData, params: Q6Params | None = None) -> int:
    """``SUM(extendedprice · discount)`` in cent-percent units."""
    params = params or Q6Params()
    return sum(
        discounted_numerator(item)
        for item in data.lineitems
        if q6_matches(item, params)
    )


def q6_selectivity(data: TPCDData, params: Q6Params | None = None) -> float:
    params = params or Q6Params()
    matching = sum(1 for item in data.lineitems if q6_matches(item, params))
    return matching / len(data.lineitems)
