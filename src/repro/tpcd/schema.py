"""TPC-D relation schemas (the subset Q3, Q4 and Q6 touch).

Rows are plain tuples in schema order.  Monetary values are stored as
integer cents and discounts as integer percent so that aggregates are
exact; dates are ``datetime.date`` objects handled by
:class:`~repro.relational.schema.DateEncoder`.

Encoder domains depend on the generated scale (key ranges grow with the
scale factor), so schemas are built per dataset by the functions below.
"""

from __future__ import annotations

import datetime as dt

from ..relational.schema import Attribute, DateEncoder, IntEncoder, Schema, StringEncoder

#: order dates span the classic TPC-D window
ORDERDATE_LO = dt.date(1992, 1, 1)
ORDERDATE_HI = dt.date(1998, 8, 2)
#: ship/commit/receipt dates may trail order dates by up to ~5 months
ANYDATE_LO = ORDERDATE_LO
ANYDATE_HI = dt.date(1998, 12, 31)

MKTSEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY")
ORDERPRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECI", "5-LOW")

# column positions, exported for readable plan code
CUSTOMER_COLUMNS = ("c_custkey", "c_mktsegment")
ORDER_COLUMNS = (
    "o_orderkey",
    "o_custkey",
    "o_orderdate",
    "o_orderpriority",
    "o_shippriority",
)
LINEITEM_COLUMNS = (
    "l_orderkey",
    "l_linenumber",
    "l_shipdate",
    "l_commitdate",
    "l_receiptdate",
    "l_discount",
    "l_quantity",
    "l_extendedprice",
)


def customer_schema(customer_count: int) -> Schema:
    """CUSTOMER(C_CUSTKEY, C_MKTSEGMENT)."""
    return Schema(
        [
            Attribute("c_custkey", IntEncoder(1, max(1, customer_count))),
            Attribute("c_mktsegment", StringEncoder(prefix_chars=1)),
        ]
    )


def order_schema(order_count: int, customer_count: int | None = None) -> Schema:
    """ORDER(O_ORDERKEY, O_CUSTKEY, O_ORDERDATE, O_ORDERPRIORITY, O_SHIPPRIORITY)."""
    if customer_count is None:
        customer_count = order_count
    return Schema(
        [
            Attribute("o_orderkey", IntEncoder(1, max(1, order_count))),
            Attribute("o_custkey", IntEncoder(1, max(1, customer_count))),
            Attribute("o_orderdate", DateEncoder(ORDERDATE_LO, ORDERDATE_HI)),
            Attribute("o_orderpriority", StringEncoder(prefix_chars=1)),
            Attribute("o_shippriority", IntEncoder(0, 1)),
        ]
    )


def lineitem_schema(order_count: int) -> Schema:
    """LINEITEM(L_ORDERKEY, ..., L_EXTENDEDPRICE); money in cents, discount in %."""
    return Schema(
        [
            Attribute("l_orderkey", IntEncoder(1, max(1, order_count))),
            Attribute("l_linenumber", IntEncoder(1, 7)),
            Attribute("l_shipdate", DateEncoder(ANYDATE_LO, ANYDATE_HI)),
            Attribute("l_commitdate", DateEncoder(ANYDATE_LO, ANYDATE_HI)),
            Attribute("l_receiptdate", DateEncoder(ANYDATE_LO, ANYDATE_HI)),
            Attribute("l_discount", IntEncoder(0, 10)),
            Attribute("l_quantity", IntEncoder(1, 50)),
            Attribute("l_extendedprice", IntEncoder(0, 11_000_000)),
        ]
    )
