"""Physical table instances and operator plans for Q3, Q4 and Q6.

The paper compares access methods by creating several physical
*instances* of the same logical relation (Section 5.1: "we created four
instances of LINEITEM").  The builders below do the same on the
simulated disk; plan functions assemble operator trees per access
method, mirroring Figures 5-2/5-3 (Q3), 5-7/5-8 (Q4) and Section 5.3
(Q6).

Rows are loaded in a deterministic shuffle — the arrival order of a
table grown over time — so that IOT leaves are physically scattered and
index scans pay random accesses, exactly the regime of the paper's cost
model.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from typing import Iterable

from ..core.query_space import IntersectionSpace, QuerySpace
from ..invariants import require_instance
from ..planner.pushdown import DEFAULT_COVER_BUDGET, KeyCover, pushdown_space
from ..storage.prefetch import DualCursorPrefetcher
from ..relational.operators import (
    Count,
    ExternalMergeSort,
    FullTableScan,
    HashJoin,
    IOTScan,
    InMemorySort,
    MergeJoin,
    MergeSemiJoin,
    Operator,
    ScalarAggregate,
    SortedGroupBy,
    Sum,
    TetrisOperator,
    UBRangeScan,
)
from ..relational.table import Database, HeapTable, IOTTable, UBTable
from ..relational.rowsize import page_capacity_for
from .datagen import TPCDData, shuffled
from .queries import (
    C_CUSTKEY,
    C_MKTSEGMENT,
    L_COMMITDATE,
    L_DISCOUNT,
    L_ORDERKEY,
    L_QUANTITY,
    L_RECEIPTDATE,
    L_SHIPDATE,
    O_CUSTKEY,
    O_ORDERDATE,
    O_ORDERKEY,
    O_ORDERPRIORITY,
    O_SHIPPRIORITY,
    Q3Params,
    Q4Params,
    Q6Params,
    q6_matches,
    revenue_numerator,
    discounted_numerator,
)

#: Extra stored bytes per row for TPC-D columns the reproduction does not
#: materialize as attributes (comments, clerk, ship instructions, ...).
#: Calibrated so the page geometry matches the paper: ~80 LINEITEM rows
#: per 8 kB page (Section 5.3), ~215 B/ORDER row (322 MB at SF 1 → ~38
#: rows/page) and ~180 B/CUSTOMER row.
LINEITEM_EXTRA_BYTES = 78
ORDER_EXTRA_BYTES = 197
CUSTOMER_EXTRA_BYTES = 157


def lineitem_page_capacity(data: TPCDData) -> int:
    return page_capacity_for(
        data.lineitem_schema, extra_payload_bytes=LINEITEM_EXTRA_BYTES
    )


def order_page_capacity(data: TPCDData) -> int:
    return page_capacity_for(data.order_schema, extra_payload_bytes=ORDER_EXTRA_BYTES)


def customer_page_capacity(data: TPCDData) -> int:
    return page_capacity_for(
        data.customer_schema, extra_payload_bytes=CUSTOMER_EXTRA_BYTES
    )


# ----------------------------------------------------------------------
# instance builders
# ----------------------------------------------------------------------
def build_customer_heap(db: Database, data: TPCDData) -> HeapTable:
    table = db.create_heap_table(
        "customer_heap", data.customer_schema, customer_page_capacity(data)
    )
    table.load(shuffled(data.customers))
    return table

def build_customer_ub(db: Database, data: TPCDData) -> UBTable:
    table = db.create_ub_table(
        "customer_ub",
        data.customer_schema,
        ("c_custkey", "c_mktsegment"),
        customer_page_capacity(data),
    )
    table.load(shuffled(data.customers))
    return table


def build_order_heap(db: Database, data: TPCDData) -> HeapTable:
    table = db.create_heap_table(
        "order_heap", data.order_schema, order_page_capacity(data)
    )
    table.load(shuffled(data.orders))
    return table


def build_order_iot(db: Database, data: TPCDData, leading: str) -> IOTTable:
    key = {
        "o_orderkey": ("o_orderkey",),
        "o_orderdate": ("o_orderdate", "o_orderkey"),
    }[leading]
    table = db.create_iot(
        f"order_iot_{leading}", data.order_schema, key, order_page_capacity(data)
    )
    table.load(shuffled(data.orders))
    return table


def build_order_ub(db: Database, data: TPCDData) -> UBTable:
    """The paper's three-dimensional organization of ORDER (Section 5.2)."""
    table = db.create_ub_table(
        "order_ub",
        data.order_schema,
        ("o_orderkey", "o_custkey", "o_orderdate"),
        order_page_capacity(data),
    )
    table.load(shuffled(data.orders))
    return table


def build_lineitem_heap(db: Database, data: TPCDData) -> HeapTable:
    table = db.create_heap_table(
        "lineitem_heap", data.lineitem_schema, lineitem_page_capacity(data)
    )
    table.load(shuffled(data.lineitems))
    return table


def build_lineitem_iot(db: Database, data: TPCDData, leading: str) -> IOTTable:
    key = {
        "l_orderkey": ("l_orderkey", "l_linenumber"),
        "l_shipdate": ("l_shipdate", "l_orderkey", "l_linenumber"),
        "l_discount": ("l_discount", "l_orderkey", "l_linenumber"),
        "l_quantity": ("l_quantity", "l_orderkey", "l_linenumber"),
    }[leading]
    table = db.create_iot(
        f"lineitem_iot_{leading}",
        data.lineitem_schema,
        key,
        lineitem_page_capacity(data),
    )
    table.load(shuffled(data.lineitems))
    return table


def build_lineitem_ub_sort(db: Database, data: TPCDData) -> UBTable:
    """2-D instance for Q3: (ORDERKEY, SHIPDATE)."""
    table = db.create_ub_table(
        "lineitem_ub_sort",
        data.lineitem_schema,
        ("l_orderkey", "l_shipdate"),
        lineitem_page_capacity(data),
    )
    table.load(shuffled(data.lineitems))
    return table


def build_lineitem_ub_q4(db: Database, data: TPCDData) -> UBTable:
    """3-D instance for Q4: (ORDERKEY, COMMITDATE, RECEIPTDATE)."""
    table = db.create_ub_table(
        "lineitem_ub_q4",
        data.lineitem_schema,
        ("l_orderkey", "l_commitdate", "l_receiptdate"),
        lineitem_page_capacity(data),
    )
    table.load(shuffled(data.lineitems))
    return table


def build_lineitem_ub_range(db: Database, data: TPCDData) -> UBTable:
    """3-D instance for Q6: (SHIPDATE, DISCOUNT, QUANTITY)."""
    table = db.create_ub_table(
        "lineitem_ub_range",
        data.lineitem_schema,
        ("l_shipdate", "l_discount", "l_quantity"),
        lineitem_page_capacity(data),
    )
    table.load(shuffled(data.lineitems))
    return table


def sort_memory_pages(table_pages: int) -> int:
    """Work memory scaled like the paper's (32 MB against a ≥1 GB table)."""
    return max(8, table_pages // 32)


# ----------------------------------------------------------------------
# Q3: sorted, restricted access to LINEITEM (Table 5-1 / Figure 5-5)
# ----------------------------------------------------------------------
def q3_lineitem_access(
    method: str,
    db: Database,
    table: HeapTable | IOTTable | UBTable,
    params: Q3Params | None = None,
) -> tuple[Operator, ExternalMergeSort | TetrisOperator | None]:
    """Restricted LINEITEM sorted by ORDERKEY, via one access method.

    Returns ``(plan, instrumented)`` where ``instrumented`` is the
    operator carrying method-specific statistics (the external sort or
    the Tetris operator), or ``None`` for the presorted IOT.
    """
    params = params or Q3Params()
    after = params.shipdate_after

    def passes(row: tuple) -> bool:
        return row[L_SHIPDATE] > after

    sort_key = lambda row: (row[L_ORDERKEY], row[1])  # noqa: E731 (orderkey, linenumber)

    if method == "tetris":
        table = require_instance(table, UBTable, "Q3 access method 'tetris'")
        operator = TetrisOperator(
            table,
            {"l_shipdate": (after + dt.timedelta(days=1), None)},
            "l_orderkey",
            predicate=passes,
        )
        return operator, operator
    if method == "fts-sort":
        table = require_instance(table, HeapTable, "Q3 access method 'fts-sort'")
        sort = ExternalMergeSort(
            FullTableScan(table, predicate=passes),
            key=sort_key,
            disk=db.disk,
            memory_pages=sort_memory_pages(table.page_count),
            page_capacity=table.page_capacity,
        )
        return sort, sort
    if method == "iot-orderkey":
        table = require_instance(table, IOTTable, "Q3 access method 'iot-orderkey'")
        return IOTScan(table, predicate=passes), None
    if method == "iot-shipdate":
        table = require_instance(table, IOTTable, "Q3 access method 'iot-shipdate'")
        scan = IOTScan(table, leading_lo=after + dt.timedelta(days=1))
        sort = ExternalMergeSort(
            scan,
            key=sort_key,
            disk=db.disk,
            memory_pages=sort_memory_pages(table.page_count),
            page_capacity=table.page_capacity,
        )
        return sort, sort
    raise ValueError(f"unknown Q3 access method {method!r}")


def q3_full_plan(
    db: Database,
    customer: HeapTable | UBTable,
    order: HeapTable | UBTable,
    lineitem_plan: Operator,
    params: Q3Params | None = None,
    *,
    use_tetris: bool = False,
) -> Operator:
    """The complete Q3 tree above a sorted LINEITEM stream.

    ``use_tetris`` selects between the Tetris operator tree of Figure
    5-3 (restricted sorted reads merged on the join attributes) and the
    standard tree of Figure 5-2 (scans + hash join).
    """
    params = params or Q3Params()

    if use_tetris:
        customer = require_instance(customer, UBTable, "Tetris Q3 plan")
        order = require_instance(order, UBTable, "Tetris Q3 plan")
        customer_stream: Iterable[tuple] = TetrisOperator(
            customer,
            {"c_mktsegment": (params.segment, params.segment)},
            "c_custkey",
            predicate=lambda row: row[C_MKTSEGMENT] == params.segment,
        )
        order_stream: Iterable[tuple] = TetrisOperator(
            order,
            {
                "o_orderdate": (
                    params.orderdate_from,
                    params.orderdate_before - dt.timedelta(days=1),
                )
            },
            "o_custkey",
            predicate=lambda row: params.order_qualifies(row[O_ORDERDATE]),
        )
        customer_order = MergeJoin(
            customer_stream,
            order_stream,
            left_key=lambda row: row[C_CUSTKEY],
            right_key=lambda row: row[O_CUSTKEY],
        )
    else:
        customer = require_instance(customer, HeapTable, "standard Q3 plan")
        order = require_instance(order, HeapTable, "standard Q3 plan")
        customer_stream = FullTableScan(
            customer, predicate=lambda row: row[C_MKTSEGMENT] == params.segment
        )
        order_stream = FullTableScan(
            order,
            predicate=lambda row: params.order_qualifies(row[O_ORDERDATE]),
        )
        customer_order = HashJoin(
            customer_stream,
            order_stream,
            build_key=lambda row: row[C_CUSTKEY],
            probe_key=lambda row: row[O_CUSTKEY],
        )

    customer_width = 2  # joined rows are customer ++ order
    by_orderkey = InMemorySort(
        customer_order, key=lambda row: row[customer_width + O_ORDERKEY]
    )
    joined = MergeJoin(
        by_orderkey,
        lineitem_plan,
        left_key=lambda row: row[customer_width + O_ORDERKEY],
        right_key=lambda row: row[L_ORDERKEY],
    )
    co_width = customer_width + 5
    grouped = SortedGroupBy(
        joined,
        key=lambda row: (
            row[co_width + L_ORDERKEY],
            row[customer_width + O_ORDERDATE],
            row[customer_width + O_SHIPPRIORITY],
        ),
        aggregates=[Sum(lambda row: revenue_numerator(row[co_width:]))],
    )
    return InMemorySort(
        grouped, key=lambda row: (-row[3], row[1].toordinal(), row[0])
    )


# ----------------------------------------------------------------------
# Q4: sorted, restricted access to ORDER (Table 5-2 / Figure 5-9)
# ----------------------------------------------------------------------
def q4_order_access(
    method: str,
    db: Database,
    table: HeapTable | IOTTable | UBTable,
    params: Q4Params | None = None,
) -> tuple[Operator, ExternalMergeSort | TetrisOperator | None]:
    """Restricted ORDER sorted by ORDERKEY, via one access method."""
    params = params or Q4Params()
    lo, hi = params.orderdate_from, params.orderdate_until

    def passes(row: tuple) -> bool:
        return lo <= row[O_ORDERDATE] < hi

    sort_key = lambda row: row[O_ORDERKEY]  # noqa: E731

    if method == "tetris":
        table = require_instance(table, UBTable, "Q4 access method 'tetris'")
        operator = TetrisOperator(
            table,
            {"o_orderdate": (lo, hi - dt.timedelta(days=1))},
            "o_orderkey",
            predicate=passes,
        )
        return operator, operator
    if method == "fts-sort":
        table = require_instance(table, HeapTable, "Q4 access method 'fts-sort'")
        sort = ExternalMergeSort(
            FullTableScan(table, predicate=passes),
            key=sort_key,
            disk=db.disk,
            memory_pages=sort_memory_pages(table.page_count),
            page_capacity=table.page_capacity,
        )
        return sort, sort
    if method == "iot-orderkey":
        table = require_instance(table, IOTTable, "Q4 access method 'iot-orderkey'")
        return IOTScan(table, predicate=passes), None
    if method == "iot-orderdate":
        table = require_instance(table, IOTTable, "Q4 access method 'iot-orderdate'")
        scan = IOTScan(table, leading_lo=lo, leading_hi=hi - dt.timedelta(days=1))
        sort = ExternalMergeSort(
            scan,
            key=sort_key,
            disk=db.disk,
            memory_pages=sort_memory_pages(table.page_count),
            page_capacity=table.page_capacity,
        )
        return sort, sort
    raise ValueError(f"unknown Q4 access method {method!r}")


def q4_full_plan(
    db: Database,
    order_plan: Operator,
    lineitem_ub: UBTable,
    params: Q4Params | None = None,
) -> Operator:
    """Figure 5-8: semijoin ORDER (sorted by key) with late LINEITEMs.

    LINEITEM is processed in ORDERKEY order through the *triangular*
    query space ``COMMITDATE < RECEIPTDATE`` — the non-rectangular
    extension the paper describes but had not implemented.
    """
    params = params or Q4Params()
    triangle: QuerySpace = IntersectionSpace(
        [
            lineitem_ub.build_query_box(None),
            lineitem_ub.comparison_space("l_commitdate", "<", "l_receiptdate"),
        ]
    )
    lineitem_stream = TetrisOperator(
        lineitem_ub,
        triangle,
        "l_orderkey",
        predicate=lambda row: row[L_COMMITDATE] < row[L_RECEIPTDATE],
    )
    semijoined = MergeSemiJoin(
        order_plan,
        lineitem_stream,
        left_key=lambda row: row[O_ORDERKEY],
        right_key=lambda row: row[L_ORDERKEY],
    )
    by_priority = InMemorySort(semijoined, key=lambda row: row[O_ORDERPRIORITY])
    return SortedGroupBy(
        by_priority,
        key=lambda row: (row[O_ORDERPRIORITY],),
        aggregates=[Count()],
    )


# ----------------------------------------------------------------------
# pipelined join plans: pushdown covers and join-aware prefetch
# ----------------------------------------------------------------------
def _q4_triangle(lineitem_ub: UBTable) -> QuerySpace:
    return IntersectionSpace(
        [
            lineitem_ub.build_query_box(None),
            lineitem_ub.comparison_space("l_commitdate", "<", "l_receiptdate"),
        ]
    )


@dataclass
class PushdownJoinPlan:
    """A join plan whose probe side carries a box-cover pushdown.

    ``plan`` is the full operator tree; ``probe`` the pushdown-
    restricted LINEITEM Tetris operator (read ``probe.stats`` after
    consumption for ``pages_skipped_by_pushdown`` / ``regions_read``);
    ``cover`` the join-key interval cover pushed into it; ``build_rows``
    how many rows the evaluated build side qualified.
    """

    plan: Operator
    probe: TetrisOperator
    cover: KeyCover
    build_rows: int


@dataclass
class PipelinedJoinPlan:
    """A join plan whose two inputs are live Tetris sweeps.

    ``plan`` is the full operator tree; ``left``/``right`` the two side
    operators (read their ``.stats`` after consumption); ``prefetch``
    the dual-cursor policy driving both sweeps' read-ahead, or ``None``
    when the database has no scheduler or prefetching was not requested.
    """

    plan: Operator
    left: TetrisOperator
    right: TetrisOperator
    prefetch: "DualCursorPrefetcher | None"


def q3_pushdown_plan(
    db: Database,
    customer: UBTable,
    order: UBTable,
    lineitem_ub: UBTable,
    params: Q3Params | None = None,
    *,
    budget: int = DEFAULT_COVER_BUDGET,
) -> PushdownJoinPlan:
    """Q3's Tetris tree with the ORDERKEY cover pushed into LINEITEM.

    The restricted smaller side — CUSTOMER ⋈ ORDER under the segment
    and date restrictions — is evaluated *now* (at plan-build time);
    its qualifying ORDERKEYs are coalesced into at most ``budget``
    intervals and intersected with LINEITEM's query box, so the Tetris
    sweep over LINEITEM skips every Z-region containing no qualifying
    join key.  The join output is bit-identical to
    :func:`q3_full_plan` with ``use_tetris=True``: the pushdown space
    over-approximates the key set, and the merge join drops non-
    qualifying keys exactly as before.
    """
    params = params or Q3Params()
    customer = require_instance(customer, UBTable, "Q3 pushdown plan")
    order = require_instance(order, UBTable, "Q3 pushdown plan")
    after = params.shipdate_after

    customer_stream = TetrisOperator(
        customer,
        {"c_mktsegment": (params.segment, params.segment)},
        "c_custkey",
        predicate=lambda row: row[C_MKTSEGMENT] == params.segment,
    )
    order_stream = TetrisOperator(
        order,
        {
            "o_orderdate": (
                params.orderdate_from,
                params.orderdate_before - dt.timedelta(days=1),
            )
        },
        "o_custkey",
        predicate=lambda row: params.order_qualifies(row[O_ORDERDATE]),
    )
    customer_width = 2
    customer_order = sorted(
        MergeJoin(
            customer_stream,
            order_stream,
            left_key=lambda row: row[C_CUSTKEY],
            right_key=lambda row: row[O_CUSTKEY],
        ),
        key=lambda row: row[customer_width + O_ORDERKEY],
    )
    keys = [row[customer_width + O_ORDERKEY] for row in customer_order]
    cover_space, cover = pushdown_space(
        lineitem_ub, "l_orderkey", keys, budget=budget
    )
    probe = TetrisOperator(
        lineitem_ub,
        {"l_shipdate": (after + dt.timedelta(days=1), None)},
        "l_orderkey",
        predicate=lambda row: row[L_SHIPDATE] > after,
        pushdown=cover_space,
    )
    joined = MergeJoin(
        customer_order,
        probe,
        left_key=lambda row: row[customer_width + O_ORDERKEY],
        right_key=lambda row: row[L_ORDERKEY],
        disk=db.disk,
    )
    co_width = customer_width + 5
    grouped = SortedGroupBy(
        joined,
        key=lambda row: (
            row[co_width + L_ORDERKEY],
            row[customer_width + O_ORDERDATE],
            row[customer_width + O_SHIPPRIORITY],
        ),
        aggregates=[Sum(lambda row: revenue_numerator(row[co_width:]))],
    )
    plan = InMemorySort(
        grouped, key=lambda row: (-row[3], row[1].toordinal(), row[0])
    )
    return PushdownJoinPlan(
        plan=plan, probe=probe, cover=cover, build_rows=len(customer_order)
    )


def q4_pipelined_plan(
    db: Database,
    order_ub: UBTable,
    lineitem_ub: UBTable,
    params: Q4Params | None = None,
    *,
    prefetch: bool = False,
) -> PipelinedJoinPlan:
    """Figure 5-8 with both sides as live Tetris streams.

    Unlike :func:`q4_full_plan` (which takes a prebuilt ORDER plan),
    both inputs stream here, so with ``prefetch=True`` (and a database
    built with devices/prefetch enabled) a
    :class:`~repro.storage.prefetch.DualCursorPrefetcher` drives
    read-ahead for whichever side the semi-join's cursor demands next —
    the two sweeps overlap instead of serializing.
    """
    params = params or Q4Params()
    lo, hi = params.orderdate_from, params.orderdate_until
    order_stream = TetrisOperator(
        order_ub,
        {"o_orderdate": (lo, hi - dt.timedelta(days=1))},
        "o_orderkey",
        predicate=lambda row: lo <= row[O_ORDERDATE] < hi,
    )
    lineitem_stream = TetrisOperator(
        lineitem_ub,
        _q4_triangle(lineitem_ub),
        "l_orderkey",
        predicate=lambda row: row[L_COMMITDATE] < row[L_RECEIPTDATE],
    )
    dual = (
        DualCursorPrefetcher.for_operators(order_stream, lineitem_stream)
        if prefetch
        else None
    )
    semijoined = MergeSemiJoin(
        order_stream,
        lineitem_stream,
        left_key=lambda row: row[O_ORDERKEY],
        right_key=lambda row: row[L_ORDERKEY],
        disk=db.disk,
        prefetch=dual,
    )
    by_priority = InMemorySort(semijoined, key=lambda row: row[O_ORDERPRIORITY])
    plan = SortedGroupBy(
        by_priority,
        key=lambda row: (row[O_ORDERPRIORITY],),
        aggregates=[Count()],
    )
    return PipelinedJoinPlan(
        plan=plan, left=order_stream, right=lineitem_stream, prefetch=dual
    )


def q4_pushdown_plan(
    db: Database,
    order_ub: UBTable,
    lineitem_ub: UBTable,
    params: Q4Params | None = None,
    *,
    budget: int = DEFAULT_COVER_BUDGET,
) -> PushdownJoinPlan:
    """Q4 with the restricted ORDER side's key cover pushed into LINEITEM.

    The date-restricted ORDER scan (the small side, ≈ 3.5 %) is
    evaluated first; its ORDERKEYs become the interval cover that lets
    the LINEITEM sweep skip Z-regions holding no qualifying order.
    Result is bit-identical to :func:`q4_full_plan` over the Tetris
    ORDER access: the semi-join discards any over-approximated keys.
    """
    params = params or Q4Params()
    lo, hi = params.orderdate_from, params.orderdate_until
    order_rows = list(
        TetrisOperator(
            order_ub,
            {"o_orderdate": (lo, hi - dt.timedelta(days=1))},
            "o_orderkey",
            predicate=lambda row: lo <= row[O_ORDERDATE] < hi,
        )
    )
    keys = [row[O_ORDERKEY] for row in order_rows]
    cover_space, cover = pushdown_space(
        lineitem_ub, "l_orderkey", keys, budget=budget
    )
    probe = TetrisOperator(
        lineitem_ub,
        _q4_triangle(lineitem_ub),
        "l_orderkey",
        predicate=lambda row: row[L_COMMITDATE] < row[L_RECEIPTDATE],
        pushdown=cover_space,
    )
    semijoined = MergeSemiJoin(
        order_rows,
        probe,
        left_key=lambda row: row[O_ORDERKEY],
        right_key=lambda row: row[L_ORDERKEY],
        disk=db.disk,
    )
    by_priority = InMemorySort(semijoined, key=lambda row: row[O_ORDERPRIORITY])
    plan = SortedGroupBy(
        by_priority,
        key=lambda row: (row[O_ORDERPRIORITY],),
        aggregates=[Count()],
    )
    return PushdownJoinPlan(
        plan=plan, probe=probe, cover=cover, build_rows=len(order_rows)
    )


# ----------------------------------------------------------------------
# Q6: multi-attribute restriction on LINEITEM (Table 5-3 / Figure 5-12)
# ----------------------------------------------------------------------
def q6_restriction_plan(
    method: str,
    db: Database,
    table: HeapTable | IOTTable | UBTable,
    params: Q6Params | None = None,
) -> Operator:
    """The restricted LINEITEM stream for Q6, via one access method."""
    params = params or Q6Params()

    def passes(row: tuple) -> bool:
        return q6_matches(row, params)

    if method == "tetris":
        table = require_instance(table, UBTable, "Q6 access method 'tetris'")
        return UBRangeScan(
            table,
            {
                "l_shipdate": (
                    params.shipdate_from,
                    params.shipdate_until - dt.timedelta(days=1),
                ),
                "l_discount": (params.discount - 1, params.discount + 1),
                "l_quantity": (None, params.quantity_below - 1),
            },
            predicate=passes,
        )
    if method == "fts":
        table = require_instance(table, HeapTable, "Q6 access method 'fts'")
        return FullTableScan(table, predicate=passes)
    if method.startswith("iot-"):
        table = require_instance(table, IOTTable, f"Q6 access method {method!r}")
        leading = table.key_attrs[0]
        bounds = {
            "l_shipdate": (
                params.shipdate_from,
                params.shipdate_until - dt.timedelta(days=1),
            ),
            "l_discount": (params.discount - 1, params.discount + 1),
            "l_quantity": (None, params.quantity_below - 1),
        }[leading]
        return IOTScan(
            table, leading_lo=bounds[0], leading_hi=bounds[1], predicate=passes
        )
    raise ValueError(f"unknown Q6 access method {method!r}")


def q6_full_plan(
    method: str,
    db: Database,
    table: HeapTable | IOTTable | UBTable,
    params: Q6Params | None = None,
) -> Operator:
    """``SELECT SUM(L_EXTENDEDPRICE · L_DISCOUNT)`` over the restriction."""
    restricted = q6_restriction_plan(method, db, table, params)
    return ScalarAggregate(restricted, [Sum(discounted_numerator)])
