"""Deterministic TPC-D-like data generation.

The paper's measurements run TPC-D at scale factors 0.1–4 (6M LINEITEM
rows at SF 1).  A pure-Python page simulator cannot push that volume
through a benchmark suite, so the generator keeps the *structure* —
row-count ratios (|LINEITEM| ≈ 4·|ORDER| = 40·|CUSTOMER|), attribute
correlations (ship/commit/receipt dates trail the order date), domain
shapes and therefore all selectivities — while scaling absolute row
counts by ``customers_per_sf`` (default 1/100 of TPC-D).  DESIGN.md
documents this substitution.
"""

from __future__ import annotations

import datetime as dt
import random
from dataclasses import dataclass, field

from .schema import (
    ANYDATE_HI,
    MKTSEGMENTS,
    ORDERDATE_HI,
    ORDERDATE_LO,
    ORDERPRIORITIES,
    customer_schema,
    lineitem_schema,
    order_schema,
)

#: TPC-D has 150 000 customers per scale factor; we default to 1/100.
DEFAULT_CUSTOMERS_PER_SF = 1500


@dataclass(frozen=True)
class TPCDConfig:
    """Knobs of the generator; defaults reproduce the paper's ratios."""

    scale_factor: float = 0.25
    customers_per_sf: int = DEFAULT_CUSTOMERS_PER_SF
    orders_per_customer: int = 10
    max_lineitems_per_order: int = 7
    seed: int = 19990323  # ICDE'99, Sydney

    @property
    def customer_count(self) -> int:
        return max(1, round(self.scale_factor * self.customers_per_sf))

    @property
    def order_count(self) -> int:
        return self.customer_count * self.orders_per_customer


@dataclass
class TPCDData:
    """Generated relations plus the matching schemas."""

    config: TPCDConfig
    customers: list[tuple] = field(default_factory=list)
    orders: list[tuple] = field(default_factory=list)
    lineitems: list[tuple] = field(default_factory=list)

    @property
    def customer_schema(self):
        return customer_schema(self.config.customer_count)

    @property
    def order_schema(self):
        return order_schema(self.config.order_count, self.config.customer_count)

    @property
    def lineitem_schema(self):
        return lineitem_schema(self.config.order_count)


def generate(config: TPCDConfig | None = None) -> TPCDData:
    """Generate CUSTOMER, ORDER and LINEITEM deterministically.

    Rows come out in insertion order (by key); loaders that want the
    physically scattered layout of a grown table should shuffle (see
    :func:`shuffled`).
    """
    config = config or TPCDConfig()
    rng = random.Random(config.seed)
    data = TPCDData(config)

    order_window_days = (ORDERDATE_HI - ORDERDATE_LO).days
    latest_any = (ANYDATE_HI - ORDERDATE_LO).days

    for custkey in range(1, config.customer_count + 1):
        segment = MKTSEGMENTS[rng.randrange(len(MKTSEGMENTS))]
        data.customers.append((custkey, segment))

    for orderkey in range(1, config.order_count + 1):
        custkey = rng.randint(1, config.customer_count)
        orderdate = ORDERDATE_LO + dt.timedelta(days=rng.randint(0, order_window_days))
        priority = ORDERPRIORITIES[rng.randrange(len(ORDERPRIORITIES))]
        shippriority = 0
        data.orders.append((orderkey, custkey, orderdate, priority, shippriority))

        base_days = (orderdate - ORDERDATE_LO).days
        for linenumber in range(1, rng.randint(1, config.max_lineitems_per_order) + 1):
            shipdate = orderdate + dt.timedelta(
                days=min(rng.randint(1, 121), latest_any - base_days)
            )
            commitdate = orderdate + dt.timedelta(
                days=min(rng.randint(30, 90), latest_any - base_days)
            )
            receiptdate = shipdate + dt.timedelta(
                days=min(rng.randint(1, 30), latest_any - (shipdate - ORDERDATE_LO).days)
            )
            discount = rng.randint(0, 10)  # percent
            quantity = rng.randint(1, 50)
            unit_price_cents = rng.randint(90_000, 105_000)
            extendedprice = min(quantity * unit_price_cents, 11_000_000)
            data.lineitems.append(
                (
                    orderkey,
                    linenumber,
                    shipdate,
                    commitdate,
                    receiptdate,
                    discount,
                    quantity,
                    extendedprice,
                )
            )
    return data


def shuffled(rows: list[tuple], seed: int = 7) -> list[tuple]:
    """A deterministic shuffle — the insertion order of a table grown
    over time, which is what scatters IOT leaves physically."""
    copy = list(rows)
    random.Random(seed).shuffle(copy)
    return copy
