"""Deterministic TPC-D-like data generation.

The paper's measurements run TPC-D at scale factors 0.1–4 (6M LINEITEM
rows at SF 1).  A pure-Python page simulator cannot push that volume
through a benchmark suite, so the generator keeps the *structure* —
row-count ratios (|LINEITEM| ≈ 4·|ORDER| = 40·|CUSTOMER|), attribute
correlations (ship/commit/receipt dates trail the order date), domain
shapes and therefore all selectivities — while scaling absolute row
counts by ``customers_per_sf`` (default 1/100 of TPC-D).  DESIGN.md
documents this substitution.
"""

from __future__ import annotations

import datetime as dt
import random
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from .schema import (
    ANYDATE_HI,
    MKTSEGMENTS,
    ORDERDATE_HI,
    ORDERDATE_LO,
    ORDERPRIORITIES,
    customer_schema,
    lineitem_schema,
    order_schema,
)

#: TPC-D has 150 000 customers per scale factor; we default to 1/100.
DEFAULT_CUSTOMERS_PER_SF = 1500


@dataclass(frozen=True)
class TPCDConfig:
    """Knobs of the generator; defaults reproduce the paper's ratios.

    ``correlated_dates`` makes O_ORDERDATE monotone in O_ORDERKEY up to
    ±7 days of jitter — the layout of a real order table grown over
    time, where keys are assigned in arrival order.  It is what makes
    join-key interval pushdown effective (a date restriction then maps
    to a *bounded* set of orderkey runs instead of keys sprayed across
    the whole domain).  The default ``False`` keeps every stream
    byte-identical to previous releases.
    """

    scale_factor: float = 0.25
    customers_per_sf: int = DEFAULT_CUSTOMERS_PER_SF
    orders_per_customer: int = 10
    max_lineitems_per_order: int = 7
    seed: int = 19990323  # ICDE'99, Sydney
    correlated_dates: bool = False

    @property
    def customer_count(self) -> int:
        return max(1, round(self.scale_factor * self.customers_per_sf))

    @property
    def order_count(self) -> int:
        return self.customer_count * self.orders_per_customer


@dataclass
class TPCDData:
    """Generated relations plus the matching schemas."""

    config: TPCDConfig
    customers: list[tuple] = field(default_factory=list)
    orders: list[tuple] = field(default_factory=list)
    lineitems: list[tuple] = field(default_factory=list)

    @property
    def customer_schema(self):
        return customer_schema(self.config.customer_count)

    @property
    def order_schema(self):
        return order_schema(self.config.order_count, self.config.customer_count)

    @property
    def lineitem_schema(self):
        return lineitem_schema(self.config.order_count)


def generate(config: TPCDConfig | None = None) -> TPCDData:
    """Generate CUSTOMER, ORDER and LINEITEM deterministically.

    Rows come out in insertion order (by key); loaders that want the
    physically scattered layout of a grown table should shuffle (see
    :func:`shuffled`).
    """
    config = config or TPCDConfig()
    rng = random.Random(config.seed)
    data = TPCDData(config)

    order_window_days = (ORDERDATE_HI - ORDERDATE_LO).days
    latest_any = (ANYDATE_HI - ORDERDATE_LO).days

    for custkey in range(1, config.customer_count + 1):
        segment = MKTSEGMENTS[rng.randrange(len(MKTSEGMENTS))]
        data.customers.append((custkey, segment))

    for orderkey in range(1, config.order_count + 1):
        custkey = rng.randint(1, config.customer_count)
        if config.correlated_dates:
            orderdate = _correlated_orderdate(config, orderkey, rng)
        else:
            orderdate = ORDERDATE_LO + dt.timedelta(
                days=rng.randint(0, order_window_days)
            )
        priority = ORDERPRIORITIES[rng.randrange(len(ORDERPRIORITIES))]
        shippriority = 0
        data.orders.append((orderkey, custkey, orderdate, priority, shippriority))

        base_days = (orderdate - ORDERDATE_LO).days
        for linenumber in range(1, rng.randint(1, config.max_lineitems_per_order) + 1):
            shipdate = orderdate + dt.timedelta(
                days=min(rng.randint(1, 121), latest_any - base_days)
            )
            commitdate = orderdate + dt.timedelta(
                days=min(rng.randint(30, 90), latest_any - base_days)
            )
            receiptdate = shipdate + dt.timedelta(
                days=min(rng.randint(1, 30), latest_any - (shipdate - ORDERDATE_LO).days)
            )
            discount = rng.randint(0, 10)  # percent
            quantity = rng.randint(1, 50)
            unit_price_cents = rng.randint(90_000, 105_000)
            extendedprice = min(quantity * unit_price_cents, 11_000_000)
            data.lineitems.append(
                (
                    orderkey,
                    linenumber,
                    shipdate,
                    commitdate,
                    receiptdate,
                    discount,
                    quantity,
                    extendedprice,
                )
            )
    return data


def shuffled(rows: list[tuple], seed: int = 7) -> list[tuple]:
    """A deterministic shuffle — the insertion order of a table grown
    over time, which is what scatters IOT leaves physically."""
    copy = list(rows)
    random.Random(seed).shuffle(copy)
    return copy


# ----------------------------------------------------------------------
# streaming generation
# ----------------------------------------------------------------------
# The batch API regenerates rows on demand instead of materializing
# relations, so a sharded loader can stream SF >= 1 once per (shard,
# copy) pass in O(batch) memory.  It is a *separate* deterministic
# family from :func:`generate`: that one threads a single RNG through
# every row, so row i's content depends on how many rows preceded it and
# the stream cannot be prefix-stable.  Here every entity draws from its
# own RNG seeded by ``mix(seed, tag, key)``, making row content a pure
# function of (seed, key): the SF 0.01 stream is a literal prefix of the
# SF 1 stream, and any suffix can be regenerated without its past.

_CUSTOMER_TAG = 0x1099
_ORDER_TAG = 0x2099
_LINEITEM_TAG = 0x3099


def _mix(*parts: int) -> int:
    """splitmix64 over the parts — a seeded, stable stream splitter."""
    acc = 0x9E3779B97F4A7C15
    for part in parts:
        acc = (acc + part) & 0xFFFFFFFFFFFFFFFF
        acc ^= acc >> 30
        acc = (acc * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        acc ^= acc >> 27
        acc = (acc * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
        acc ^= acc >> 31
    return acc


def _entity_rng(config: TPCDConfig, tag: int, key: int) -> random.Random:
    return random.Random(_mix(config.seed, tag, key))


def stream_customers(config: TPCDConfig | None = None) -> Iterator[tuple]:
    """CUSTOMER rows one at a time, prefix-stable across scale factors."""
    config = config or TPCDConfig()
    for custkey in range(1, config.customer_count + 1):
        rng = _entity_rng(config, _CUSTOMER_TAG, custkey)
        segment = MKTSEGMENTS[rng.randrange(len(MKTSEGMENTS))]
        yield (custkey, segment)


def _correlated_orderdate(
    config: TPCDConfig, orderkey: int, rng: random.Random
) -> dt.date:
    """Orderdate monotone in orderkey, ±7 days of jitter, clamped.

    The deterministic base walks the full date window as orderkey walks
    the key domain; one jitter draw replaces the uniform draw of the
    default path, so either mode consumes exactly one RNG value for the
    date.  Jitter means the mapping is *nearly* monotone — qualifying
    keys form short runs with ragged edges, which is what the pushdown
    cover's interval budgeting has to absorb.
    """
    order_window_days = (ORDERDATE_HI - ORDERDATE_LO).days
    span = max(1, config.order_count - 1)
    base = ((orderkey - 1) * order_window_days) // span
    jitter = rng.randint(-7, 7)
    return ORDERDATE_LO + dt.timedelta(
        days=max(0, min(order_window_days, base + jitter))
    )


def _order_row(config: TPCDConfig, orderkey: int) -> tuple:
    rng = _entity_rng(config, _ORDER_TAG, orderkey)
    order_window_days = (ORDERDATE_HI - ORDERDATE_LO).days
    # deterministic key coupling instead of a draw over the (scale-
    # dependent) customer domain — the one substitution prefix
    # stability demands; clustering stays TPC-D-shaped (each customer
    # places ``orders_per_customer`` orders)
    custkey = (orderkey - 1) // config.orders_per_customer + 1
    if config.correlated_dates:
        orderdate = _correlated_orderdate(config, orderkey, rng)
    else:
        orderdate = ORDERDATE_LO + dt.timedelta(
            days=rng.randint(0, order_window_days)
        )
    priority = ORDERPRIORITIES[rng.randrange(len(ORDERPRIORITIES))]
    return (orderkey, custkey, orderdate, priority, 0)


def stream_orders(config: TPCDConfig | None = None) -> Iterator[tuple]:
    """ORDER rows one at a time, prefix-stable across scale factors."""
    config = config or TPCDConfig()
    for orderkey in range(1, config.order_count + 1):
        yield _order_row(config, orderkey)


def stream_lineitems(config: TPCDConfig | None = None) -> Iterator[tuple]:
    """LINEITEM rows one at a time, prefix-stable across scale factors.

    Each order's items are a pure function of its orderkey, and orders
    stream in key order, so a shorter scale factor's lineitem stream is
    a prefix of any longer one's.
    """
    config = config or TPCDConfig()
    latest_any = (ANYDATE_HI - ORDERDATE_LO).days
    for orderkey in range(1, config.order_count + 1):
        _, _, orderdate, _, _ = _order_row(config, orderkey)
        base_days = (orderdate - ORDERDATE_LO).days
        rng = _entity_rng(config, _LINEITEM_TAG, orderkey)
        for linenumber in range(1, rng.randint(1, config.max_lineitems_per_order) + 1):
            shipdate = orderdate + dt.timedelta(
                days=min(rng.randint(1, 121), latest_any - base_days)
            )
            commitdate = orderdate + dt.timedelta(
                days=min(rng.randint(30, 90), latest_any - base_days)
            )
            receiptdate = shipdate + dt.timedelta(
                days=min(rng.randint(1, 30), latest_any - (shipdate - ORDERDATE_LO).days)
            )
            discount = rng.randint(0, 10)
            quantity = rng.randint(1, 50)
            unit_price_cents = rng.randint(90_000, 105_000)
            extendedprice = min(quantity * unit_price_cents, 11_000_000)
            yield (
                orderkey,
                linenumber,
                shipdate,
                commitdate,
                receiptdate,
                discount,
                quantity,
                extendedprice,
            )


def in_batches(
    rows: Iterable[tuple], batch_size: int = 1024
) -> Iterator[list[tuple]]:
    """Group a row stream into lists of ``batch_size`` (last one short).

    The loader-facing shape: each batch is materialized, handed over,
    and dropped, so peak memory is one batch regardless of scale.
    """
    if batch_size < 1:
        raise ValueError("batch size must be >= 1")
    batch: list[tuple] = []
    for row in rows:
        batch.append(row)
        if len(batch) >= batch_size:
            yield batch
            batch = []
    if batch:
        yield batch
