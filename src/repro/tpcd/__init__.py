"""TPC-D substrate: generator, logical queries Q3/Q4/Q6, physical plans."""

from .datagen import (
    DEFAULT_CUSTOMERS_PER_SF,
    TPCDConfig,
    TPCDData,
    generate,
    in_batches,
    shuffled,
    stream_customers,
    stream_lineitems,
    stream_orders,
)
from .queries import (
    Q3Params,
    Q4Params,
    Q6Params,
    q3_lineitem_selectivity,
    q4_order_selectivity,
    q6_selectivity,
    reference_q3,
    reference_q4,
    reference_q6,
)

__all__ = [
    "DEFAULT_CUSTOMERS_PER_SF",
    "Q3Params",
    "Q4Params",
    "Q6Params",
    "TPCDConfig",
    "TPCDData",
    "generate",
    "in_batches",
    "q3_lineitem_selectivity",
    "q4_order_selectivity",
    "q6_selectivity",
    "reference_q3",
    "reference_q4",
    "reference_q6",
    "shuffled",
    "stream_customers",
    "stream_lineitems",
    "stream_orders",
]
