"""Z-regions: the unit of the UB-Tree's space partitioning.

A Z-region ``[α : β]`` is the part of the universe covered by an interval
on the Z-curve (Section 3.3).  Each Z-region maps onto exactly one disk
page.  Regions are recovered from the separator keys of the underlying
B+-tree, so this class is a value object; the tree remains the source of
truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .query_space import QueryBox, QuerySpace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .curves import Curve


@dataclass(frozen=True)
class ZRegion:
    """An address interval ``[first, last]`` stored on page ``page_id``."""

    first: int
    last: int
    page_id: int

    def __post_init__(self) -> None:
        if self.first > self.last:
            raise ValueError(f"inverted Z-region [{self.first}:{self.last}]")

    def contains(self, z_address: int) -> bool:
        return self.first <= z_address <= self.last

    @property
    def address_count(self) -> int:
        return self.last - self.first + 1

    def intersects(self, curve: "Curve", space: QuerySpace) -> bool:
        """Exact-or-conservative test whether the region meets ``space``.

        The Z-interval is decomposed into aligned boxes (each an axis-
        aligned hyper-rectangle); the region intersects iff any box does.
        For plain :class:`QueryBox` spaces the test is exact.
        """
        return any(
            space.intersects_box(lo, hi)
            for lo, hi in curve.interval_boxes(self.first, self.last)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ZRegion[{self.first}:{self.last}]@page{self.page_id}"
