"""The Tetris algorithm (Section 3): sorted reading without external sort.

Given a UB-Tree-organized relation, a query space ``Q`` and a sort
attribute ``A_j``, the algorithm delivers the qualifying tuples in sort
order of ``A_j`` while

* reading only the Z-region pages that overlap ``Q``,
* reading each such page **exactly once** (one random access each), and
* caching only the tuples of the currently open *slice* — the sub-linear
  Tetris cache of Section 4.4.

Two interchangeable strategies are provided:

``eager`` (default)
    Enumerate the overlapping regions (index-only), key each by
    ``min T_j over (region ∩ Q)`` — a static quantity because Z-regions
    are disjoint — and process a min-heap.

``sweep``
    The paper's event-point formulation (Figure 3-7), kept as the
    literal reference implementation.  The retrieved space ``Φ`` is
    maintained as a set of merged Z-intervals; the next event point
    ``min { T_j(x) | x ∈ Q, x ∉ Φ }`` is advanced with the generic
    BIGMIN primitive, skipping already-retrieved Z-intervals by
    decomposing their complement into aligned boxes.

Because the region partitioning is disjoint, the event point always lies
in the unread region with the smallest static key, so both strategies
provably retrieve pages in the same order and emit the same stream; the
test suite asserts this equivalence property.  The two differ only in
CPU: the sweep recomputes event points against ``Φ`` and its cost grows
with the number of region/slice crossings, which is why the eager
formulation is the default (real UB-Tree implementations organize the
sweep per slice for the same reason).
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, Iterator, Sequence

# module import (not ``from ..kernels import get_backend``): kernels and
# core import each other, so the attribute must resolve at call time
from .. import invariants, kernels
from ..storage.prefetch import LookaheadCursor, SweepPrefetcher
from .curves import Curve, FlippedCurve
from .intervals import IntervalSet
from .query_space import QueryBox, QuerySpace, box_is_empty
from .region import ZRegion
from .ubtree import UBTree

SortedTuple = tuple[tuple[int, ...], Any]

#: a region scheduled for reading plus the emission barrier that becomes
#: valid once it has been read: (first, last, page_id, next_key_or_None)
_ScheduledRegion = tuple[int, int, int, "int | None"]

_MISSING = object()  # sentinel distinguishing "not cached" from "cached None"


@dataclass
class TetrisStats:
    """Instrumentation of one Tetris run (Tables 5-1 and 5-2 metrics)."""

    regions_examined: int = 0  #: index descents performed
    regions_read: int = 0  #: data pages actually fetched (random accesses)
    regions_skipped: int = 0  #: pruned by non-rectangular geometry
    #: pruned *only* because of a pushed-down join-key cover — pages the
    #: local restriction would have read but no join match can live on
    pages_skipped_by_pushdown: int = 0
    tuples_output: int = 0
    slices: int = 0  #: flush batches — completed processing ranges
    max_cache_tuples: int = 0  #: peak size of the Tetris cache
    first_output_clock: float | None = None  #: simulated time of first tuple
    start_clock: float = 0.0
    end_clock: float = 0.0

    @property
    def elapsed(self) -> float:
        return self.end_clock - self.start_clock

    @property
    def time_to_first(self) -> float | None:
        if self.first_output_clock is None:
            return None
        return self.first_output_clock - self.start_clock

    def cache_pages(self, page_capacity: int) -> int:
        """Peak cache expressed in pages (how the paper reports it)."""
        return -(-self.max_cache_tuples // page_capacity)


#: historical location — the reflection wrapper now lives in ``curves``
#: so the batch kernels can unwrap it without importing this module
_FlippedCurve = FlippedCurve

#: historical alias — the Tetris cache now lives in the backend-native
#: :class:`repro.kernels.SortRunBuffer`; a pure-backend entry is still a
#: ``[tetris_key, arrival_order]`` pair (the point and payload live in
#: the scan's arrival registry)
_CacheEntry = list  # [int, int]


class TetrisScan:
    """Iterator over ``(point, payload)`` pairs in ``A_j`` sort order.

    Consume it like any iterator; ``stats`` fills in as the sweep
    progresses and is final once iteration ends.

    Parameters
    ----------
    ubtree:
        The multidimensionally organized relation.
    space:
        Restrictions — a :class:`QueryBox` or any composite
        :class:`QuerySpace` (e.g. including the triangular
        ``COMMITDATE < RECEIPTDATE`` half-space of Q4).
    sort_dim:
        Index of the sort attribute ``A_j`` — or a sequence of indexes
        for a composite (multi-column) sort order, lexicographic in the
        listed attributes.
    descending:
        Emit in descending order of the sort attribute(s).
    strategy:
        ``"eager"`` (static region keys + heap, the default) or
        ``"sweep"`` (event points, the paper's literal loop).
    pushdown:
        An optional extra restriction pushed down from the *other* side
        of a join — typically the
        :class:`~repro.core.query_space.IntervalUnionSpace` built by
        :func:`repro.planner.pushdown.pushdown_space` over the already
        evaluated side's qualifying join keys.  It is conjoined with
        ``space`` for tuple filtering, and regions that pass the local
        restriction but miss the pushdown are skipped without I/O,
        counted separately in ``stats.pages_skipped_by_pushdown``.
    """

    def __init__(
        self,
        ubtree: UBTree,
        space: QuerySpace,
        sort_dim: "int | Sequence[int]",
        *,
        descending: bool = False,
        strategy: str = "eager",
        pushdown: "QuerySpace | None" = None,
    ) -> None:
        if strategy not in ("sweep", "eager"):
            raise ValueError(f"unknown strategy {strategy!r}")
        sort_dims = (sort_dim,) if isinstance(sort_dim, int) else tuple(sort_dim)
        if not sort_dims:
            raise ValueError("at least one sort dimension required")
        if len(set(sort_dims)) != len(sort_dims):
            raise ValueError("duplicate sort dimensions")
        for dim in sort_dims:
            if not 0 <= dim < ubtree.space.dims:
                raise ValueError(f"sort dimension {dim} out of range")
        if pushdown is not None and pushdown.dims != ubtree.space.dims:
            raise ValueError(
                f"pushdown space has {pushdown.dims} dims, "
                f"table has {ubtree.space.dims}"
            )
        self.ubtree = ubtree
        self.space = space
        self.pushdown = pushdown
        #: what tuples are actually filtered against: the local
        #: restriction conjoined with any pushed-down join-key cover
        self.effective_space = (
            space if pushdown is None else space.intersect(pushdown)
        )
        self.sort_dims = sort_dims
        self.sort_dim = sort_dims[0]
        self.descending = descending
        self.strategy = strategy
        self.stats = TetrisStats()
        #: set by a join-side coordinator (DualCursorPrefetcher): either
        #: the coordinator-owned SweepPrefetcher this sweep should drive
        #: its per-region top-ups through (but never close), or ``True``
        #: to suppress read-ahead entirely.  Either way the scan skips
        #: creating a prefetcher of its own, so the two policies never
        #: fight over the window.
        self.external_prefetch: "SweepPrefetcher | bool" = False

        base = ubtree.space.tetris(sort_dims)
        if descending:
            self.tetris_curve: Curve | FlippedCurve = FlippedCurve(
                base, frozenset(sort_dims)
            )
        else:
            self.tetris_curve = base

        box = space.bounding_box()
        if box is None:
            box = ubtree.space.universe_box()
        self._box = box
        self._page_reads: list[int] = []  # page access order, for tests
        #: lazily created lookahead cursor over the scheduled regions —
        #: shared between iteration and :meth:`upcoming_regions`, so a
        #: projection never disturbs the retrieval order
        self._cursor: "LookaheadCursor[_ScheduledRegion] | None" = None
        # sweep-strategy memos: next event beyond a covered interval, and
        # the box decomposition of an interval's complement (see
        # _skip_interval for the monotonicity argument)
        self._skip_cache: dict[tuple[int, int], int | None] = {}
        self._complement_boxes: dict[
            tuple[int, int], list[tuple[tuple[int, ...], tuple[int, ...]]]
        ] = {}

    @property
    def page_access_order(self) -> list[int]:
        """Page ids in retrieval order (used by equivalence tests)."""
        return self._page_reads

    def _ensure_cursor(self) -> "LookaheadCursor[_ScheduledRegion]":
        if self._cursor is None:
            source = (
                self._eager_regions()
                if self.strategy == "eager"
                else self._sweep_regions()
            )
            self._cursor = LookaheadCursor(source)
        return self._cursor

    def upcoming_regions(self, count: int) -> list[ZRegion]:
        """The projected next ``count`` Z-regions in retrieval order.

        Index-only (no data-page I/O): the schedule is computed from
        separator keys and BIGMIN alone, which is what makes sweep-ahead
        prefetching possible.  Valid before and during iteration; the
        projection shrinks as the sweep consumes regions and is empty
        once the scan is exhausted.
        """
        if box_is_empty(self._box):
            return []
        return [
            ZRegion(first, last, page_id)
            for first, last, page_id, _ in self._ensure_cursor().peek(count)
        ]

    def __iter__(self) -> Iterator[SortedTuple]:
        if box_is_empty(self._box):
            disk = self.ubtree.tree.buffer.disk
            self.stats.start_clock = disk.clock
            self.stats.end_clock = disk.clock
            return iter(())
        return self._run(self._ensure_cursor())

    # ------------------------------------------------------------------
    # shared driver: read regions in Tetris order, cache, flush slices
    # ------------------------------------------------------------------
    def _run(
        self, regions: "LookaheadCursor[_ScheduledRegion]"
    ) -> Iterator[SortedTuple]:
        disk = self.ubtree.tree.buffer.disk
        buffer = self.ubtree.tree.buffer
        curve = self.tetris_curve
        space = self.effective_space
        stats = self.stats
        kernel = kernels.get_backend()
        stats.start_clock = disk.clock
        # the Tetris cache as DPG-style run formation: each page
        # contributes one already-sorted run in the backend's native
        # representation, and the buffer consolidates them with
        # hierarchical merges only when a slice actually completes —
        # pages that merely widen the open slice cost O(page) work, and
        # the NumPy buffer never round-trips entries through Python.
        run_buffer = kernel.make_run_buffer()
        #: (point, payload) of every qualifying tuple, by arrival order
        arrivals: list[SortedTuple] = []
        # with REPRO_CHECKS=1: validate the emitted stream (membership +
        # monotonicity) and re-run every page kernel on the other backend
        stream_checker = (
            invariants.StreamChecker(self.sort_dims, self.descending, space)
            if invariants.enabled()
            else None
        )
        # sweep-ahead prefetching: with a scheduler armed on the pool,
        # keep a bounded window of async reads in flight for the regions
        # the cursor projects next, so transfers overlap across device
        # queues instead of serializing behind the sweep.  A join-side
        # coordinator may hand the sweep a shared window to drive (and
        # retain ownership of), or suppress read-ahead with ``True``.
        external = self.external_prefetch
        if external:
            prefetcher = external if isinstance(external, SweepPrefetcher) else None
            owns_prefetcher = False
        else:
            prefetcher = SweepPrefetcher.for_pool(
                buffer, category=self.ubtree.category
            )
            owns_prefetcher = True

        try:
            for first, last, page_id, barrier in regions:
                if prefetcher is not None:
                    prefetcher.top_up(
                        entry[2] for entry in regions.peek(prefetcher.depth)
                    )
                page = buffer.get(page_id, category=self.ubtree.category)
                if prefetcher is not None:
                    prefetcher.mark_consumed(page_id)
                stats.regions_read += 1
                self._page_reads.append(page_id)

                # the whole page in one kernel call: filter the points
                # against the query space, key the survivors on the Tetris
                # curve, and sort the batch — arrival order breaks key ties
                # exactly like the per-tuple heap pushes used to
                base = len(arrivals)
                count, selected, run = kernel.scan_page_run(curve, space, page, base)
                if stream_checker is not None:
                    reference = kernel.scan_page(curve, space, page, base)
                    invariants.check(
                        reference[0] == count and list(reference[1]) == list(selected),
                        f"scan_page_run disagrees with scan_page on page "
                        f"{page_id}: {count}/{selected!r} vs "
                        f"{reference[0]}/{reference[1]!r}",
                    )
                    invariants.spot_check_scan_page(
                        kernel, curve, space, page, base, reference
                    )
                if count:
                    records = page.records
                    arrivals.extend(records[index][1] for index in selected)
                    run_buffer.push(run)
                if len(run_buffer) > stats.max_cache_tuples:
                    stats.max_cache_tuples = len(run_buffer)

                # everything below the next event point can never be beaten by
                # a tuple from an unread region: the slice is complete.  The
                # sorted-run heads witness whether anything flushes at all.
                if not run_buffer.has_key_below(barrier):
                    continue
                for position in run_buffer.cut(barrier):
                    if stats.first_output_clock is None:
                        stats.first_output_clock = disk.clock
                    stats.tuples_output += 1
                    stats.end_clock = disk.clock
                    if stream_checker is not None:
                        stream_checker.observe(arrivals[position][0])
                    yield arrivals[position]
                stats.slices += 1

            # no regions at all, or a conservative final barrier
            for position in run_buffer.cut(None):
                if stats.first_output_clock is None:
                    stats.first_output_clock = disk.clock
                stats.tuples_output += 1
                if stream_checker is not None:
                    stream_checker.observe(arrivals[position][0])
                yield arrivals[position]
            stats.end_clock = disk.clock
        finally:
            # leftover submissions (early termination, or a conservative
            # projection) are cancelled and accounted as wasted; the
            # pool's previous eviction policy comes back either way.  A
            # coordinator-owned window outlives the sweep — the join
            # closes it once *all* sides are drained.
            if prefetcher is not None and owns_prefetcher:
                prefetcher.close()

    # ------------------------------------------------------------------
    # eager strategy: static keys, min-heap
    # ------------------------------------------------------------------
    def _eager_regions(self) -> Iterator[_ScheduledRegion]:
        z_curve = self.ubtree.space.z
        pushdown = self.pushdown
        candidates = []
        for region in self.ubtree.regions_overlapping(self.space, prune=False):
            self.stats.regions_examined += 1
            if not isinstance(self.space, QueryBox) and not region.intersects(
                z_curve, self.space
            ):
                self.stats.regions_skipped += 1
                continue
            # the local restriction wants this page; the pushed-down
            # join-key cover may still rule it out — that, and only
            # that, is a pushdown skip (the tests are exact, so every
            # skipped page truly holds no joinable tuple)
            if pushdown is not None and not region.intersects(z_curve, pushdown):
                self.stats.pages_skipped_by_pushdown += 1
                continue
            candidates.append(region)
        # static region keys — ``min T_j over (region ∩ bounding box)``,
        # static because Z-regions are disjoint — batched over all
        # candidates in one kernel call
        lo, hi = self._box
        keys = kernels.get_backend().region_min_keys(
            z_curve,
            self.tetris_curve,
            [(region.first, region.last) for region in candidates],
            lo,
            hi,
        )
        heap: list[tuple[int, int, int, int]] = []
        for region, key in zip(candidates, keys):
            if key is None:
                self.stats.regions_skipped += 1
                continue
            heap.append((key, region.first, region.last, region.page_id))
        heapq.heapify(heap)
        while heap:
            _, first, last, page_id = heapq.heappop(heap)
            yield first, last, page_id, heap[0][0] if heap else None

    # ------------------------------------------------------------------
    # sweep strategy: the paper's event-point loop
    # ------------------------------------------------------------------
    def _sweep_regions(self) -> Iterator[_ScheduledRegion]:
        lo, hi = self._box
        curve = self.tetris_curve
        z_space = self.ubtree.space
        phi = IntervalSet()

        event = curve.next_in_box(0, lo, hi)
        while event is not None:
            point = curve.decode(event)
            z_address = z_space.z_address(point)
            covered = phi.containing(z_address)
            if covered is None:
                region, _ = self.ubtree.region_for(z_address, charge=False)
                self.stats.regions_examined += 1
                phi.add(region.first, region.last)
                covered = (region.first, region.last)
                base_ok = isinstance(self.space, QueryBox) or region.intersects(
                    z_space.z, self.space
                )
                if base_ok and (
                    self.pushdown is None
                    or region.intersects(z_space.z, self.pushdown)
                ):
                    next_event = self._skip_interval(event, covered)
                    yield region.first, region.last, region.page_id, next_event
                    event = next_event
                    continue
                if base_ok:
                    self.stats.pages_skipped_by_pushdown += 1
                else:
                    self.stats.regions_skipped += 1
            event = self._skip_interval(event, covered)

    def _skip_interval(self, event: int, interval: tuple[int, int]) -> int | None:
        """Smallest Tetris address ``> event`` in the box but outside
        the covered Z-interval.

        The complement of the interval decomposes into aligned boxes;
        BIGMIN over each (intersected with the query bounding box) yields
        candidates, and the minimum wins.  O(total_bits²) bit operations,
        no I/O — the paper's "inexpensive bit operations".

        The result may still lie inside *another* already-retrieved
        interval; the sweep loop then skips again.  As an emission
        barrier it is therefore a lower bound on the true next event
        point, which only delays flushing, never corrupts order.

        Two memos keep the whole sweep near-linear in the region count:

        * the complement decomposition of an interval is cached, and
        * so is the computed next event.  Events only increase, so a
          cached answer ``c`` computed at some earlier event ``t0 <= t``
          with ``c > t`` is still the minimum beyond ``t`` — nothing of
          the complement lies in ``(t0, t]``.  When ``Φ`` merges the
          interval into a larger one, its key changes and the stale
          entries are simply never consulted again.
        """
        cached = self._skip_cache.get(interval, _MISSING)
        if cached is not _MISSING and (cached is None or cached > event):
            return cached

        curve = self.tetris_curve
        decomposition = self._complement_boxes.get(interval)
        if decomposition is None:
            decomposition = self._decompose_complement(interval)
            self._complement_boxes[interval] = decomposition
        ceilings, entries, suffix_min_floor = decomposition

        # boxes whose entire Tetris range lies below the event can never
        # supply a candidate: start at the first box with ceiling >= event
        start = bisect_left(ceilings, event)
        best: int | None = None
        for position in range(start, len(entries)):
            floor, clamped_lo, clamped_hi = entries[position]
            if best is not None and best <= suffix_min_floor[position]:
                break
            if best is not None and best <= floor:
                continue
            candidate = curve.next_in_box(event, clamped_lo, clamped_hi)
            if candidate is not None and (best is None or candidate < best):
                best = candidate
        self._skip_cache[interval] = best
        return best

    def _decompose_complement(self, interval: tuple[int, int]):
        """Aligned boxes of the interval's complement, clamped to the
        query bounding box, sorted by their *maximal* Tetris address.

        Returns ``(ceilings, entries, suffix_min_floor)`` where
        ``entries[i] = (floor_i, lo_i, hi_i)`` and ``suffix_min_floor[i]``
        is the smallest floor among ``entries[i:]`` — the early-exit
        bound for the candidate scan.
        """
        lo, hi = self._box
        curve = self.tetris_curve
        z_curve = self.ubtree.space.z
        first, last = interval
        pieces: list[tuple[int, int]] = []
        if first > 0:
            pieces.append((0, first - 1))
        if last < z_curve.address_max:
            pieces.append((last + 1, z_curve.address_max))
        raw: list[tuple[int, int, tuple[int, ...], tuple[int, ...]]] = []
        for piece_first, piece_last in pieces:
            for box_lo, box_hi in z_curve.interval_boxes(piece_first, piece_last):
                clamped_lo = tuple(max(a, b) for a, b in zip(box_lo, lo))
                clamped_hi = tuple(min(a, b) for a, b in zip(box_hi, hi))
                if any(a > b for a, b in zip(clamped_lo, clamped_hi)):
                    continue
                if isinstance(curve, FlippedCurve):
                    min_corner = curve.box_min_corner(clamped_lo, clamped_hi)
                    max_corner = tuple(
                        clamped_lo[d] if d in self.sort_dims else clamped_hi[d]
                        for d in range(curve.dims)
                    )
                else:
                    min_corner = clamped_lo
                    max_corner = clamped_hi
                raw.append(
                    (
                        curve.encode_unchecked(max_corner),
                        curve.encode_unchecked(min_corner),
                        clamped_lo,
                        clamped_hi,
                    )
                )
        raw.sort(key=lambda entry: entry[0])
        ceilings = [entry[0] for entry in raw]
        entries = [(floor, lo_c, hi_c) for _, floor, lo_c, hi_c in raw]
        suffix_min_floor: list[int] = [0] * len(entries)
        running = None
        for position in range(len(entries) - 1, -1, -1):
            floor = entries[position][0]
            running = floor if running is None else min(running, floor)
            suffix_min_floor[position] = running
        return ceilings, entries, suffix_min_floor


def tetris_sorted(
    ubtree: UBTree,
    space: QuerySpace,
    sort_dim: "int | Sequence[int]",
    *,
    descending: bool = False,
    strategy: str = "eager",
    pushdown: "QuerySpace | None" = None,
) -> TetrisScan:
    """Convenience constructor for a :class:`TetrisScan`.

    ``sort_dim`` is the index of the sort attribute ``A_j`` — or a
    sequence of indexes for a composite (multi-column) sort order,
    lexicographic in the listed attributes with Z-order of the remaining
    ones as tiebreak (see :meth:`~repro.core.zorder.ZSpace.tetris`).
    """
    return TetrisScan(
        ubtree,
        space,
        sort_dim,
        descending=descending,
        strategy=strategy,
        pushdown=pushdown,
    )
