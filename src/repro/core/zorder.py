"""Z-addresses and Tetris addresses in the paper's vocabulary.

:class:`ZSpace` wraps a multidimensional universe ``Ω = Ω_1 × … × Ω_d``
(with ``s_i`` bits per attribute) and exposes the operations of
Sections 3.3 and 3.4:

* ``z_address(x)`` — the ordinal of the tuple on the Z-curve,
* ``extract(α, j)`` / ``reduce(α, j)`` — the decomposition of a Z-address
  into one attribute value and the (d-1)-dimensional rest,
* ``tetris_address(x, j)`` — ``T_j(x) = extract(Z(x), j) ∘ reduce(Z(x), j)``,
* conversions between the two orders.

All of it is implemented on top of :class:`~repro.core.curves.Curve`;
``T_j`` is simply the curve whose bit schedule puts attribute ``j`` first.
"""

from __future__ import annotations

from typing import Sequence

from .curves import Curve


class ZSpace:
    """A d-dimensional universe addressed by the Z-curve and Tetris orders."""

    def __init__(self, bit_lengths: Sequence[int]) -> None:
        self.bit_lengths = tuple(bit_lengths)
        self.dims = len(self.bit_lengths)
        if self.dims < 1:
            raise ValueError("a ZSpace needs at least one dimension")
        if any(s < 1 for s in self.bit_lengths):
            raise ValueError("every dimension needs at least one bit")
        self.z = Curve.z_curve(self.bit_lengths)
        self.total_bits = self.z.total_bits
        self.address_max = self.z.address_max
        self.coord_max = self.z.coord_max
        self._tetris: dict[tuple[int, ...], Curve] = {}
        self._reduced: dict[int, Curve] = {}

    # ------------------------------------------------------------------
    # curves
    # ------------------------------------------------------------------
    def tetris(self, sort_dims: "int | Sequence[int]") -> Curve:
        """The curve realizing the Tetris order for the sort attribute(s).

        A single dimension gives the paper's ``T_j``; a sequence gives the
        composite order — lexicographic in the listed attributes with
        Z-order of the remaining ones as tiebreak (multi-column ORDER BY).
        """
        key = (sort_dims,) if isinstance(sort_dims, int) else tuple(sort_dims)
        if key not in self._tetris:
            self._tetris[key] = Curve.tetris_curve(self.bit_lengths, key)
        return self._tetris[key]

    def reduced(self, drop_dim: int) -> Curve:
        """The (d-1)-dimensional Z-curve with ``drop_dim`` removed."""
        if self.dims < 2:
            raise ValueError("cannot reduce a one-dimensional space")
        if drop_dim not in self._reduced:
            lengths = [s for dim, s in enumerate(self.bit_lengths) if dim != drop_dim]
            self._reduced[drop_dim] = Curve.z_curve(lengths)
        return self._reduced[drop_dim]

    # ------------------------------------------------------------------
    # addresses
    # ------------------------------------------------------------------
    def z_address(self, point: Sequence[int]) -> int:
        """``Z(x)``: the ordinal of ``point`` on the Z-curve."""
        return self.z.encode(point)

    def point_of(self, z_address: int) -> tuple[int, ...]:
        """``Z^{-1}(α)``."""
        return self.z.decode(z_address)

    def extract(self, z_address: int, dim: int) -> int:
        """``extract(α, j)``: attribute ``j``'s value packed in a Z-address."""
        return self.z.decode(z_address)[dim]

    def reduce(self, z_address: int, dim: int) -> int:
        """``reduce(α, j)``: the (d-1)-dimensional Z-address of the rest."""
        point = self.z.decode(z_address)
        rest = [v for d, v in enumerate(point) if d != dim]
        return self.reduced(dim).encode(rest)

    def tetris_address(self, point: Sequence[int], sort_dim: int) -> int:
        """``T_j(x)``: the Tetris ordinal of ``point`` for sort attribute ``j``."""
        return self.tetris(sort_dim).encode(point)

    def z_to_tetris(self, z_address: int, sort_dim: int) -> int:
        """Re-address a point from Z order into Tetris order."""
        return self.tetris(sort_dim).encode(self.z.decode(z_address))

    def tetris_to_z(self, tetris_address: int, sort_dim: int) -> int:
        """``Z(T_j^{-1}(t))``: back from Tetris order into Z order."""
        return self.z.encode(self.tetris(sort_dim).decode(tetris_address))

    # ------------------------------------------------------------------
    # paper-model helpers
    # ------------------------------------------------------------------
    def hyperplane_contains(self, z_address: int, sort_dim: int, value: int) -> bool:
        """Membership in the hyper-plane ``H_j(v) = {Z(x) | x_j = v}``."""
        return self.extract(z_address, sort_dim) == value

    def universe_box(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """The full base space ``[λ_1, ν_1] × … × [λ_d, ν_d]``."""
        lo = tuple(0 for _ in range(self.dims))
        return lo, self.coord_max

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ZSpace(bits={self.bit_lengths})"
