"""Query spaces: the restriction side of the Tetris operator.

Section 3 of the paper defines a *query space* as "some subspace of a
relation defined by restrictions" and notes that it is *mostly* a query
box (an iso-oriented hyper-rectangle) — but the formal model, and the
Q4 discussion in Section 5.2, explicitly allow non-rectangular spaces
such as the triangular region ``COMMITDATE < RECEIPTDATE``.  The paper
leaves that extension unimplemented ("has not been implemented yet");
this module implements it.

A :class:`QuerySpace` must provide three things:

* a bounding :meth:`bounding_box` that drives BIGMIN-based enumeration,
* an exact per-tuple membership test :meth:`contains_point`, and
* a box-intersection test :meth:`intersects_box` used to prune whole
  Z-regions without I/O.  The test may be conservative (report an
  intersection that is actually empty — the page is then read and its
  tuples filtered) but must never miss a real intersection.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Callable, Sequence

Box = tuple[tuple[int, ...], tuple[int, ...]]


def box_is_empty(box: Box) -> bool:
    """True when any attribute range of the box is inverted."""
    lo, hi = box
    return any(l > h for l, h in zip(lo, hi))


class QuerySpace:
    """Base class for restriction subspaces of the universe."""

    dims: int

    def bounding_box(self) -> Box | None:
        """Smallest enclosing box, or ``None`` when the space is unbounded.

        An *empty* space is reported as a box with an inverted range
        (check with :func:`box_is_empty`), never as ``None``.
        """
        raise NotImplementedError

    def contains_point(self, point: Sequence[int]) -> bool:
        """Exact membership test, applied to every candidate tuple."""
        raise NotImplementedError

    def intersects_box(self, lo: Sequence[int], hi: Sequence[int]) -> bool:
        """Exact-or-conservative intersection test against a box."""
        raise NotImplementedError

    def intersect(self, other: "QuerySpace") -> "QuerySpace":
        """Conjunction of two query spaces."""
        return IntersectionSpace([self, other])


class QueryBox(QuerySpace):
    """The common case: ``Q = [[y, z]]``, one closed range per attribute."""

    def __init__(self, lo: Sequence[int], hi: Sequence[int]) -> None:
        if len(lo) != len(hi):
            raise ValueError("lo and hi must have the same dimensionality")
        self.lo = tuple(lo)
        self.hi = tuple(hi)
        self.dims = len(self.lo)

    @classmethod
    def full(cls, coord_max: Sequence[int]) -> "QueryBox":
        """The unrestricted base space ``Ω``."""
        return cls(tuple(0 for _ in coord_max), tuple(coord_max))

    @classmethod
    def with_range(
        cls, coord_max: Sequence[int], dim: int, lo: int, hi: int
    ) -> "QueryBox":
        """A *cluster* in the paper's sense: one attribute restricted."""
        los = [0] * len(coord_max)
        his = list(coord_max)
        los[dim] = lo
        his[dim] = hi
        return cls(los, his)

    @property
    def is_empty(self) -> bool:
        return any(l > h for l, h in zip(self.lo, self.hi))

    def bounding_box(self) -> Box | None:
        return self.lo, self.hi

    def contains_point(self, point: Sequence[int]) -> bool:
        return all(l <= x <= h for x, l, h in zip(point, self.lo, self.hi))

    def intersects_box(self, lo: Sequence[int], hi: Sequence[int]) -> bool:
        return all(
            box_lo <= self_hi and self_lo <= box_hi
            for box_lo, box_hi, self_lo, self_hi in zip(lo, hi, self.lo, self.hi)
        )

    def clamp(self, other: "QueryBox") -> "QueryBox":
        """Intersection of two boxes (may be empty)."""
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(min(a, b) for a, b in zip(self.hi, other.hi))
        return QueryBox(lo, hi)

    def restricted(self, dim: int, lo: int, hi: int) -> "QueryBox":
        """Copy with one attribute range tightened (sweep-plane slices)."""
        los = list(self.lo)
        his = list(self.hi)
        los[dim] = max(los[dim], lo)
        his[dim] = min(his[dim], hi)
        return QueryBox(los, his)

    def volume(self) -> int:
        if self.is_empty:
            return 0
        result = 1
        for l, h in zip(self.lo, self.hi):
            result *= h - l + 1
        return result

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, QueryBox) and self.lo == other.lo and self.hi == other.hi
        )

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ranges = ", ".join(f"[{l}, {h}]" for l, h in zip(self.lo, self.hi))
        return f"QueryBox({ranges})"


_COMPARATORS: dict[str, Callable[[int, int], bool]] = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class ComparisonSpace(QuerySpace):
    """A half-space comparing two attributes, e.g. ``COMMITDATE < RECEIPTDATE``.

    This is the triangular search space of TPC-D Q4 (Section 5.2), which
    the paper names as the natural non-rectangular extension of the Tetris
    algorithm.  Box intersection is exact: a box meets ``x_a < x_b`` iff
    its smallest ``a`` beats its largest ``b``.
    """

    def __init__(self, dims: int, left_dim: int, op: str, right_dim: int) -> None:
        if op not in _COMPARATORS:
            raise ValueError(f"unsupported comparison {op!r}")
        for dim in (left_dim, right_dim):
            if not 0 <= dim < dims:
                raise ValueError(f"dimension {dim} out of range for {dims} dims")
        if left_dim == right_dim:
            raise ValueError("comparison needs two distinct attributes")
        self.dims = dims
        self.left_dim = left_dim
        self.op = op
        self.right_dim = right_dim
        self._cmp = _COMPARATORS[op]

    def bounding_box(self) -> Box | None:
        # The half-space alone does not bound any attribute; callers
        # intersect it with a box (usually the universe).
        return None

    def contains_point(self, point: Sequence[int]) -> bool:
        return self._cmp(point[self.left_dim], point[self.right_dim])

    def intersects_box(self, lo: Sequence[int], hi: Sequence[int]) -> bool:
        # The most favourable corner decides: min of the left attribute
        # against max of the right one (or vice versa for > / >=).
        return self._cmp(
            lo[self.left_dim] if self.op in ("<", "<=") else hi[self.left_dim],
            hi[self.right_dim] if self.op in ("<", "<=") else lo[self.right_dim],
        )


class IntervalUnionSpace(QuerySpace):
    """A union of disjoint encoded value intervals along one attribute.

    This is the geometric carrier of join-restriction *pushdown*: the
    planner condenses the qualifying join keys of one join input into a
    bounded union of key intervals — a box cover in the sense of "Box
    Covers and Domain Orderings for Beyond Worst-Case Join Processing" —
    and intersects it with the other input's query space, so the Tetris
    sweep skips whole Z-regions that cannot produce join matches.

    Every test is exact, never merely conservative: the space is a
    union of full-width slabs along one dimension, so a box intersects
    it iff the box's range on that dimension meets some interval, and
    membership is a bisection over the interval starts.  The bounding
    box clamps the dimension to the cover's convex hull (an empty cover
    reports an inverted — empty — box).

    Construction is confined to :mod:`repro.planner.pushdown` (enforced
    by reprolint rule R016); the sweep and the kernels only *test*
    against instances handed to them.
    """

    def __init__(
        self,
        coord_max: Sequence[int],
        dim: int,
        intervals: Sequence[tuple[int, int]],
    ) -> None:
        self.coord_max = tuple(int(value) for value in coord_max)
        self.dims = len(self.coord_max)
        if not 0 <= dim < self.dims:
            raise ValueError(f"dimension {dim} out of range for {self.dims} dims")
        self.dim = dim
        cleaned: list[tuple[int, int]] = []
        previous_hi: int | None = None
        for lo, hi in intervals:
            lo, hi = int(lo), int(hi)
            if lo > hi:
                raise ValueError(f"inverted interval [{lo}, {hi}]")
            if not 0 <= lo <= hi <= self.coord_max[dim]:
                raise ValueError(
                    f"interval [{lo}, {hi}] outside the attribute domain "
                    f"[0, {self.coord_max[dim]}]"
                )
            if previous_hi is not None and lo <= previous_hi:
                raise ValueError("intervals must be sorted and disjoint")
            cleaned.append((lo, hi))
            previous_hi = hi
        self.intervals = tuple(cleaned)
        self.starts = tuple(lo for lo, _ in cleaned)
        self.ends = tuple(hi for _, hi in cleaned)

    @property
    def is_empty(self) -> bool:
        return not self.intervals

    def bounding_box(self) -> Box | None:
        los = [0] * self.dims
        his = list(self.coord_max)
        if not self.intervals:
            los[self.dim], his[self.dim] = 1, 0  # inverted: empty space
        else:
            los[self.dim] = self.starts[0]
            his[self.dim] = self.ends[-1]
        return tuple(los), tuple(his)

    def contains_point(self, point: Sequence[int]) -> bool:
        value = point[self.dim]
        index = bisect_right(self.starts, value) - 1
        return index >= 0 and value <= self.ends[index]

    def intersects_box(self, lo: Sequence[int], hi: Sequence[int]) -> bool:
        # exact: the first interval ending at or after the box's low end
        # either starts within the box's range or nothing does
        index = bisect_left(self.ends, lo[self.dim])
        return index < len(self.starts) and self.starts[index] <= hi[self.dim]

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, IntervalUnionSpace)
            and self.coord_max == other.coord_max
            and self.dim == other.dim
            and self.intervals == other.intervals
        )

    def __hash__(self) -> int:
        return hash((self.coord_max, self.dim, self.intervals))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ranges = ", ".join(f"[{lo}, {hi}]" for lo, hi in self.intervals)
        return f"IntervalUnionSpace(dim={self.dim}, {ranges})"


class PredicateSpace(QuerySpace):
    """An opaque predicate; box pruning is conservatively disabled.

    Useful to push arbitrary residual predicates into the sweep without
    claiming any geometric knowledge about them.
    """

    def __init__(self, dims: int, predicate: Callable[[Sequence[int]], bool]) -> None:
        self.dims = dims
        self.predicate = predicate

    def bounding_box(self) -> Box | None:
        return None

    def contains_point(self, point: Sequence[int]) -> bool:
        return self.predicate(point)

    def intersects_box(self, lo: Sequence[int], hi: Sequence[int]) -> bool:
        return True


class IntersectionSpace(QuerySpace):
    """Conjunction of query spaces (box ∧ half-space ∧ …)."""

    def __init__(self, parts: Sequence[QuerySpace]) -> None:
        if not parts:
            raise ValueError("intersection of zero spaces is the universe; use QueryBox.full")
        flattened: list[QuerySpace] = []
        for part in parts:
            if isinstance(part, IntersectionSpace):
                flattened.extend(part.parts)
            else:
                flattened.append(part)
        self.parts = tuple(flattened)
        self.dims = self.parts[0].dims
        if any(p.dims != self.dims for p in self.parts):
            raise ValueError("all parts must share the same dimensionality")

    def bounding_box(self) -> Box | None:
        lo: list[int] | None = None
        hi: list[int] | None = None
        for part in self.parts:
            box = part.bounding_box()
            if box is None:
                continue  # unbounded part contributes no constraint
            part_lo, part_hi = box
            if lo is None or hi is None:
                lo, hi = list(part_lo), list(part_hi)
            else:
                lo = [max(a, b) for a, b in zip(lo, part_lo)]
                hi = [min(a, b) for a, b in zip(hi, part_hi)]
        if lo is None or hi is None:
            return None
        return tuple(lo), tuple(hi)

    def contains_point(self, point: Sequence[int]) -> bool:
        return all(part.contains_point(point) for part in self.parts)

    def intersects_box(self, lo: Sequence[int], hi: Sequence[int]) -> bool:
        return all(part.intersects_box(lo, hi) for part in self.parts)
