"""The paper's contribution: Z-order spaces, UB-Trees and the Tetris sweep.

Public surface:

* :class:`ZSpace` — a multidimensional universe with Z and Tetris orders.
* :class:`Curve` — generic monotone bit-interleaving curves with BIGMIN.
* :class:`UBTree` — the multidimensional organization of a relation.
* :class:`TetrisScan` / :func:`tetris_sorted` — sorted reading with
  restrictions and no external sort.
* :class:`QueryBox` and friends — restriction geometry, including the
  non-rectangular extension of Section 5.2.
"""

from .curves import Curve, FlippedCurve, tetris_schedule, z_schedule
from .intervals import IntervalSet
from .query_space import (
    ComparisonSpace,
    IntersectionSpace,
    PredicateSpace,
    QueryBox,
    QuerySpace,
    box_is_empty,
)
from .region import ZRegion
from .tetris import TetrisScan, TetrisStats, tetris_sorted
from .ubtree import UBTree
from .zorder import ZSpace

__all__ = [
    "ComparisonSpace",
    "Curve",
    "FlippedCurve",
    "IntersectionSpace",
    "IntervalSet",
    "PredicateSpace",
    "QueryBox",
    "QuerySpace",
    "TetrisScan",
    "TetrisStats",
    "UBTree",
    "ZRegion",
    "ZSpace",
    "box_is_empty",
    "tetris_schedule",
    "tetris_sorted",
    "z_schedule",
]
