"""A set of disjoint integer intervals: the retrieved space ``Φ``.

Section 3.4 builds the retrieved space iteratively "by adding the next
Z-region to the already retrieved space".  :class:`IntervalSet` keeps the
union as a sorted list of disjoint, non-adjacent ``[lo, hi]`` intervals —
adjacent regions coalesce, so lookups stay logarithmic even after the
whole relation has been swept.
"""

from __future__ import annotations

from bisect import bisect_right


class IntervalSet:
    """Sorted disjoint closed intervals over the integers."""

    def __init__(self) -> None:
        self._lows: list[int] = []
        self._highs: list[int] = []

    def __len__(self) -> int:
        return len(self._lows)

    def __bool__(self) -> bool:
        return bool(self._lows)

    def add(self, lo: int, hi: int) -> None:
        """Insert ``[lo, hi]``, merging with overlapping/adjacent intervals."""
        if lo > hi:
            raise ValueError(f"inverted interval [{lo}, {hi}]")
        # first interval whose low could merge (low <= hi + 1)
        left = bisect_right(self._lows, lo - 1)
        # step back if the previous interval reaches lo - 1
        if left > 0 and self._highs[left - 1] >= lo - 1:
            left -= 1
        right = left
        while right < len(self._lows) and self._lows[right] <= hi + 1:
            right += 1
        if left < right:
            lo = min(lo, self._lows[left])
            hi = max(hi, self._highs[right - 1])
        self._lows[left:right] = [lo]
        self._highs[left:right] = [hi]

    def containing(self, value: int) -> tuple[int, int] | None:
        """The interval containing ``value``, or ``None``."""
        idx = bisect_right(self._lows, value) - 1
        if idx >= 0 and self._highs[idx] >= value:
            return self._lows[idx], self._highs[idx]
        return None

    def __contains__(self, value: int) -> bool:
        return self.containing(value) is not None

    def intervals(self) -> list[tuple[int, int]]:
        """All intervals in ascending order (mainly for tests)."""
        return list(zip(self._lows, self._highs))

    def covered(self) -> int:
        """Total number of integers covered."""
        return sum(h - l + 1 for l, h in zip(self._lows, self._highs))
