"""Bit-interleaving curves over multidimensional integer spaces.

The UB-Tree addresses a ``d``-dimensional point by interleaving the bits
of its coordinates (the Z-address / Lebesgue curve, Section 3.3 of the
paper).  The Tetris order for sort attribute ``j`` is the *same set of
bits in a different order*: attribute ``j``'s bits first, followed by the
``(d-1)``-dimensional Z-address of the remaining attributes
(``T_j(x) = extract(Z(x), j) ∘ reduce(Z(x), j)``, Section 3.4).

Both are instances of one concept implemented here: a :class:`Curve` is
defined by a **bit schedule** — an ordered assignment of every output bit
position to one ``(dimension, bit)`` pair, most significant first.  Every
such curve is monotone in each coordinate, which yields two facts this
library leans on:

* the minimum / maximum address inside an axis-aligned box is attained at
  the box's low / high corner, and
* the classic Tropf–Herzog *BIGMIN* algorithm (``next address >= a whose
  point lies in a box``) works unchanged for any schedule.

Supported per-dimension bit lengths may differ (the paper's footnote 1
notes their implementation does the same).
"""

from __future__ import annotations

from typing import Iterator, Sequence

BitSchedule = tuple[tuple[int, int], ...]
"""Ordered ``(dimension, bit_from_msb)`` pairs, most significant output bit first."""


def z_schedule(bit_lengths: Sequence[int]) -> BitSchedule:
    """Round-robin interleaving: the Z / Lebesgue curve schedule.

    At interleave level ``r`` every dimension that still has bits left
    contributes its ``r``-th most significant bit, dimension order
    ``0, 1, ..., d-1``.  For equal bit lengths this is exactly the
    paper's ``Z(x)`` formula.
    """
    schedule: list[tuple[int, int]] = []
    for level in range(max(bit_lengths, default=0)):
        for dim, length in enumerate(bit_lengths):
            if level < length:
                schedule.append((dim, level))
    return tuple(schedule)


def tetris_schedule(
    bit_lengths: Sequence[int], sort_dims: "int | Sequence[int]"
) -> BitSchedule:
    """The Tetris order ``T_j``: sort dimension(s) first, Z of the rest.

    Concatenating all of attribute ``j``'s bits before the interleaved
    remainder makes the address order identical to the total order on
    attribute ``j`` (with Z-order of the other attributes as tiebreak).

    Passing several dimensions produces the *composite* Tetris order —
    lexicographic in ``(A_{j1}, A_{j2}, …)`` — by hoisting each listed
    attribute's bits in turn.  This covers multi-column ``ORDER BY``
    clauses over index attributes (e.g. Q3's grouping key prefix).
    """
    if isinstance(sort_dims, int):
        sort_dims = (sort_dims,)
    sort_dims = tuple(sort_dims)
    if not sort_dims:
        raise ValueError("at least one sort dimension required")
    if len(set(sort_dims)) != len(sort_dims):
        raise ValueError("duplicate sort dimensions")
    for dim in sort_dims:
        if not 0 <= dim < len(bit_lengths):
            raise ValueError(f"sort dimension {dim} out of range")
    head = tuple(
        (dim, bit) for dim in sort_dims for bit in range(bit_lengths[dim])
    )
    leading = set(sort_dims)
    tail: list[tuple[int, int]] = []
    for level in range(max(bit_lengths, default=0)):
        for dim, length in enumerate(bit_lengths):
            if dim not in leading and level < length:
                tail.append((dim, level))
    return head + tuple(tail)


class _EncodeTables:
    """Byte-chunked lookup tables turning coordinates into addresses fast."""

    def __init__(self, bit_lengths: Sequence[int], positions: list[list[int]]) -> None:
        # positions[dim][bit_from_msb] = output bit weight exponent
        self.tables: list[list[list[int]]] = []
        for dim, length in enumerate(bit_lengths):
            chunk_count = (length + 7) // 8
            dim_tables: list[list[int]] = []
            for chunk in range(chunk_count):
                table = [0] * 256
                for value in range(256):
                    acc = 0
                    for bit_in_chunk in range(8):
                        if not value >> bit_in_chunk & 1:
                            continue
                        bit_from_lsb = chunk * 8 + bit_in_chunk
                        if bit_from_lsb >= length:
                            continue
                        bit_from_msb = length - 1 - bit_from_lsb
                        acc |= 1 << positions[dim][bit_from_msb]
                    table[value] = acc
                dim_tables.append(table)
            self.tables.append(dim_tables)

    def encode_dim(self, dim: int, value: int) -> int:
        acc = 0
        for table in self.tables[dim]:
            acc |= table[value & 0xFF]
            value >>= 8
        return acc


class _DecodeTables:
    """Byte-chunked lookup tables turning addresses back into coordinates."""

    def __init__(self, total_bits: int, owner: list[tuple[int, int]]) -> None:
        # owner[output_bit_from_lsb] = (dim, coordinate bit weight exponent)
        self.dims = 1 + max((dim for dim, _ in owner), default=0)
        self.chunks: list[list[list[int]]] = []
        chunk_count = (total_bits + 7) // 8
        for chunk in range(chunk_count):
            table = [[0] * self.dims for _ in range(256)]
            for value in range(256):
                for bit_in_chunk in range(8):
                    if not value >> bit_in_chunk & 1:
                        continue
                    out_bit = chunk * 8 + bit_in_chunk
                    if out_bit >= total_bits:
                        continue
                    dim, weight = owner[out_bit]
                    table[value][dim] |= 1 << weight
            self.chunks.append(table)

    def decode(self, address: int) -> list[int]:
        coords = [0] * self.dims
        for table in self.chunks:
            row = table[address & 0xFF]
            for dim in range(self.dims):
                coords[dim] |= row[dim]
            address >>= 8
        return coords


class Curve:
    """A monotone bit-interleaving curve with range-search primitives."""

    def __init__(self, bit_lengths: Sequence[int], schedule: BitSchedule) -> None:
        self.bit_lengths = tuple(bit_lengths)
        self.dims = len(self.bit_lengths)
        self.schedule = schedule
        self.total_bits = sum(self.bit_lengths)
        if self.dims == 0:
            raise ValueError("curve needs at least one dimension")
        if len(schedule) != self.total_bits:
            raise ValueError("schedule must assign every coordinate bit exactly once")
        seen = set(schedule)
        if len(seen) != len(schedule):
            raise ValueError("schedule assigns a coordinate bit twice")
        for dim, bit in schedule:
            if not 0 <= dim < self.dims or not 0 <= bit < self.bit_lengths[dim]:
                raise ValueError(f"schedule entry ({dim}, {bit}) out of range")

        #: maximum coordinate value per dimension
        self.coord_max = tuple((1 << s) - 1 for s in self.bit_lengths)
        #: maximum address value
        self.address_max = (1 << self.total_bits) - 1

        # positions[dim][bit_from_msb] = output weight exponent (from lsb)
        positions: list[list[int]] = [[0] * s for s in self.bit_lengths]
        # owner[output_bit_from_lsb] = (dim, coordinate weight exponent)
        owner: list[tuple[int, int]] = [(0, 0)] * self.total_bits
        for out_from_msb, (dim, bit_from_msb) in enumerate(schedule):
            weight = self.total_bits - 1 - out_from_msb
            positions[dim][bit_from_msb] = weight
            owner[weight] = (dim, self.bit_lengths[dim] - 1 - bit_from_msb)
        self._positions = positions
        self._encode_tables = _EncodeTables(self.bit_lengths, positions)
        self._decode_tables = _DecodeTables(self.total_bits, owner)
        # suffix_masks[k][dim]: coordinate bits freed by the k least
        # significant schedule positions — the hi corner of an aligned
        # 2^k block is its lo corner OR'ed with these masks
        masks = [[0] * self.dims]
        for dim, weight in owner:  # owner is indexed lsb-first
            row = list(masks[-1])
            row[dim] |= 1 << weight
            masks.append(row)
        self._suffix_masks = masks

    # ------------------------------------------------------------------
    # classmethods for the two schedules used by the paper
    # ------------------------------------------------------------------
    @classmethod
    def z_curve(cls, bit_lengths: Sequence[int]) -> "Curve":
        return cls(bit_lengths, z_schedule(bit_lengths))

    @classmethod
    def tetris_curve(
        cls, bit_lengths: Sequence[int], sort_dims: "int | Sequence[int]"
    ) -> "Curve":
        return cls(bit_lengths, tetris_schedule(bit_lengths, sort_dims))

    # ------------------------------------------------------------------
    # address <-> point
    # ------------------------------------------------------------------
    def encode(self, point: Sequence[int]) -> int:
        """Address of ``point`` on this curve."""
        if len(point) != self.dims:
            raise ValueError(f"expected {self.dims} coordinates, got {len(point)}")
        for dim, value in enumerate(point):
            if not 0 <= value <= self.coord_max[dim]:
                raise ValueError(
                    f"coordinate {value} of dimension {dim} exceeds "
                    f"{self.bit_lengths[dim]} bits"
                )
        return self.encode_unchecked(point)

    def encode_unchecked(self, point: Sequence[int]) -> int:
        """Address of ``point``, skipping coordinate validation.

        For internal hot paths (bulk load, region keying, batch kernels)
        whose inputs come from storage or from box clamping and are
        therefore valid by construction.  Out-of-range coordinates yield
        garbage addresses; validation belongs at API boundaries
        (:meth:`encode`).
        """
        address = 0
        encode_dim = self._encode_tables.encode_dim
        for dim, value in enumerate(point):
            address |= encode_dim(dim, value)
        return address

    def decode(self, address: int) -> tuple[int, ...]:
        """Point whose address is ``address``."""
        if not 0 <= address <= self.address_max:
            raise ValueError(f"address {address} out of range")
        return tuple(self._decode_tables.decode(address))

    # ------------------------------------------------------------------
    # box helpers (monotonicity: corners bound the box's address range)
    # ------------------------------------------------------------------
    def box_min_address(self, lo: Sequence[int]) -> int:
        return self.encode(lo)

    def box_max_address(self, hi: Sequence[int]) -> int:
        return self.encode(hi)

    @staticmethod
    def point_in_box(point: Sequence[int], lo: Sequence[int], hi: Sequence[int]) -> bool:
        return all(l <= x <= h for x, l, h in zip(point, lo, hi))

    # ------------------------------------------------------------------
    # BIGMIN / LITMAX (Tropf & Herzog), generalized to any schedule
    # ------------------------------------------------------------------
    def next_in_box(
        self, address: int, lo: Sequence[int], hi: Sequence[int]
    ) -> int | None:
        """Smallest address ``>= address`` whose point lies in ``[lo, hi]``.

        Returns ``None`` when no point of the box has an address that
        large.  This is the *getNextZ* / BIGMIN primitive behind both the
        UB-Tree range query and the Tetris event-point computation.
        """
        if address > self.address_max:
            return None
        address = max(address, 0)
        min_work = list(lo)
        max_work = list(hi)
        for dim in range(self.dims):
            if min_work[dim] > max_work[dim]:
                raise ValueError("empty box: lo exceeds hi")
        bigmin: int | None = None
        lengths = self.bit_lengths
        for out_from_msb, (dim, bit_from_msb) in enumerate(self.schedule):
            weight = 1 << (lengths[dim] - 1 - bit_from_msb)
            abit = address >> (self.total_bits - 1 - out_from_msb) & 1
            minbit = 1 if min_work[dim] & weight else 0
            maxbit = 1 if max_work[dim] & weight else 0
            if abit == 0:
                if minbit == 0 and maxbit == 0:
                    continue
                if minbit == 0 and maxbit == 1:
                    # candidate: enter the 1-subtree at its minimal point
                    saved = min_work[dim]
                    min_work[dim] = _load_min(saved, weight)
                    bigmin = self.encode(min_work)
                    min_work[dim] = saved
                    # follow address into the 0-subtree
                    max_work[dim] = _load_max(max_work[dim], weight)
                    continue
                # minbit == 1: the whole remaining box is above address
                return self.encode(min_work)
            # abit == 1
            if maxbit == 0:
                # the whole remaining box is below address
                return bigmin
            if minbit == 0:
                min_work[dim] = _load_min(min_work[dim], weight)
            # minbit == maxbit == 1: follow address
        return address  # address itself decodes to a point inside the box

    def prev_in_box(
        self, address: int, lo: Sequence[int], hi: Sequence[int]
    ) -> int | None:
        """Largest address ``<= address`` whose point lies in ``[lo, hi]`` (LITMAX)."""
        if address < 0:
            return None
        address = min(address, self.address_max)
        min_work = list(lo)
        max_work = list(hi)
        for dim in range(self.dims):
            if min_work[dim] > max_work[dim]:
                raise ValueError("empty box: lo exceeds hi")
        litmax: int | None = None
        lengths = self.bit_lengths
        for out_from_msb, (dim, bit_from_msb) in enumerate(self.schedule):
            weight = 1 << (lengths[dim] - 1 - bit_from_msb)
            abit = address >> (self.total_bits - 1 - out_from_msb) & 1
            minbit = 1 if min_work[dim] & weight else 0
            maxbit = 1 if max_work[dim] & weight else 0
            if abit == 1:
                if minbit == 1 and maxbit == 1:
                    continue
                if minbit == 0 and maxbit == 1:
                    # candidate: enter the 0-subtree at its maximal point
                    saved = max_work[dim]
                    max_work[dim] = _load_max(saved, weight)
                    litmax = self.encode(max_work)
                    max_work[dim] = saved
                    # follow address into the 1-subtree
                    min_work[dim] = _load_min(min_work[dim], weight)
                    continue
                # maxbit == 0: the whole remaining box is below address
                return self.encode(max_work)
            # abit == 0
            if minbit == 1:
                # the whole remaining box is above address
                return litmax
            if maxbit == 1:
                max_work[dim] = _load_max(max_work[dim], weight)
        return address

    # ------------------------------------------------------------------
    # interval decomposition
    # ------------------------------------------------------------------
    def interval_blocks(self, first: int, last: int) -> Iterator[tuple[int, int]]:
        """Maximal aligned blocks tiling ``[first, last]`` as ``(position, k)``.

        Block ``(position, k)`` covers addresses ``position`` through
        ``position + 2^k - 1`` with ``position ≡ 0 (mod 2^k)``.  An
        arbitrary address interval decomposes into at most
        ``2 * total_bits`` such blocks.  Pure bit arithmetic — no address
        decoding — so batch kernels can enumerate the blocks cheaply and
        decode all origins in one vectorized pass.
        """
        if first > last:
            return
        first = max(first, 0)
        last = min(last, self.address_max)
        position = first
        while position <= last:
            # largest aligned block starting at `position` that fits in the
            # interval: bounded by the alignment of `position` and by `last`
            size = position & -position if position else 1 << self.total_bits
            while size > 1 and position + size - 1 > last:
                size >>= 1
            yield position, size.bit_length() - 1
            position += size

    def interval_boxes(
        self, first: int, last: int
    ) -> Iterator[tuple[tuple[int, ...], tuple[int, ...]]]:
        """Decompose the address interval ``[first, last]`` into aligned boxes.

        Any maximal aligned block of addresses (``a .. a + 2^k - 1`` with
        ``a ≡ 0 mod 2^k``) fixes the top schedule bits and frees the bottom
        ``k``, so it is an axis-aligned hyper-rectangle.  A Z-region —
        an arbitrary Z-interval — therefore decomposes into at most
        ``2 * total_bits`` boxes.  Used for region/query-space intersection
        tests and for skipping retrieved regions in Tetris order.
        """
        for position, k in self.interval_blocks(first, last):
            lo = self.decode(position)
            masks = self._suffix_masks[k]
            hi = tuple(value | mask for value, mask in zip(lo, masks))
            yield lo, hi

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Curve(bits={self.bit_lengths}, total={self.total_bits})"


class FlippedCurve:
    """A curve seen through a per-dimension coordinate reflection.

    Flipping the sort dimension (``x_j ↦ coord_max_j - x_j``) turns a
    descending Tetris sweep into an ascending one over the same pages:
    reflections map boxes to boxes and preserve monotonicity, so BIGMIN
    keeps working.
    """

    def __init__(self, curve: Curve, flip_dims: frozenset[int]) -> None:
        self._curve = curve
        self._flip = flip_dims
        self.total_bits = curve.total_bits
        self.address_max = curve.address_max
        self.dims = curve.dims
        self.coord_max = curve.coord_max

    @property
    def base_curve(self) -> Curve:
        """The underlying un-reflected curve (used by batch kernels)."""
        return self._curve

    @property
    def flip_dims(self) -> frozenset[int]:
        """Dimensions whose coordinates are reflected."""
        return self._flip

    def _reflect(self, point: Sequence[int]) -> tuple[int, ...]:
        return tuple(
            self.coord_max[dim] - value if dim in self._flip else value
            for dim, value in enumerate(point)
        )

    def encode(self, point: Sequence[int]) -> int:
        return self._curve.encode(self._reflect(point))

    def encode_unchecked(self, point: Sequence[int]) -> int:
        return self._curve.encode_unchecked(self._reflect(point))

    def decode(self, address: int) -> tuple[int, ...]:
        return self._reflect(self._curve.decode(address))

    def box_min_corner(
        self, lo: Sequence[int], hi: Sequence[int]
    ) -> tuple[int, ...]:
        """The corner of ``[lo, hi]`` with the smallest flipped address."""
        return tuple(
            hi[dim] if dim in self._flip else lo[dim] for dim in range(self.dims)
        )

    def next_in_box(
        self, address: int, lo: Sequence[int], hi: Sequence[int]
    ) -> int | None:
        # reflecting the box swaps lo and hi only in the flipped dimensions
        reflected_lo = self._reflect(lo)
        reflected_hi = self._reflect(hi)
        box_lo = tuple(min(a, b) for a, b in zip(reflected_lo, reflected_hi))
        box_hi = tuple(max(a, b) for a, b in zip(reflected_lo, reflected_hi))
        return self._curve.next_in_box(address, box_lo, box_hi)


def _load_min(value: int, weight: int) -> int:
    """Set the ``weight`` bit, clear all less significant bits."""
    return (value | weight) & ~(weight - 1)


def _load_max(value: int, weight: int) -> int:
    """Clear the ``weight`` bit, set all less significant bits."""
    return (value & ~weight) | (weight - 1)
