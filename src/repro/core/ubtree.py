"""The UB-Tree: a B+-tree over Z-addresses whose leaves are Z-regions.

Section 3.3: "The UB-Tree partitions the multidimensional space into
Z-regions, each of which is mapped onto one disk page."  We follow the
paper's own prototype strategy — the UB-Tree is emulated on a B*-Tree:
tuples are keyed by their Z-address, every leaf page is one Z-region, and
the region boundaries ``[α : β]`` are the separator keys surrounding the
leaf.  Insertion splits a full region at the median Z-address (the
paper's ``γ`` with half the tuples on either side); point queries are one
tree descent; the range query walks the regions overlapping a query box
via the BIGMIN ("getNextZ") primitive, touching each qualifying page
exactly once.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from .. import invariants, kernels
from ..btree.bptree import BPlusTree
from ..storage.buffer import BufferPool
from ..storage.page import Page
from ..storage.prefetch import LookaheadCursor, SweepPrefetcher
from ..storage.wal import active_wal
from .query_space import QueryBox, QuerySpace, box_is_empty
from .region import ZRegion
from .zorder import ZSpace


class UBTree:
    """A multidimensionally clustered relation.

    Parameters
    ----------
    buffer:
        Buffer pool of the simulated disk.
    space:
        The indexed universe (dimensions and bits per attribute).
    page_capacity:
        Tuples per Z-region page.
    category:
        I/O statistics bucket for data page accesses.
    """

    def __init__(
        self,
        buffer: BufferPool,
        space: ZSpace,
        page_capacity: int,
        fanout: int = 128,
        category: str = "data",
    ) -> None:
        self.space = space
        self.category = category
        self.page_capacity = page_capacity
        self.tree = BPlusTree(
            buffer, leaf_capacity=page_capacity, fanout=fanout, category=category
        )

    # ------------------------------------------------------------------
    # maintenance operations (Section 3.3: logarithmic insert/point/delete)
    # ------------------------------------------------------------------
    def insert(self, point: Sequence[int], payload: Any = None) -> None:
        """Insert a tuple located at ``point`` carrying ``payload``."""
        z_address = self.space.z_address(point)
        if invariants.enabled():
            invariants.check(
                self.space.z.decode(z_address) == tuple(point),
                f"Z-address {z_address} does not decode back to {point}; "
                "curve encode/decode are no longer inverses",
            )
        self.tree.insert(z_address, (tuple(point), payload))

    def load(self, rows: Iterable[tuple[Sequence[int], Any]]) -> None:
        for point, payload in rows:
            self.insert(point, payload)

    def bulk_load(
        self, rows: Iterable[tuple[Sequence[int], Any]], fill: float = 1.0
    ) -> None:
        """Build the Z-region partitioning bottom-up from a full dataset.

        Tuples are sorted by Z-address and packed into region pages at
        the requested fill factor — the initial-load path a production
        UB-Tree would use, yielding fewer, fuller Z-regions than
        insert-driven splitting.  Requires an empty tree.
        """
        materialized = [(tuple(point), payload) for point, payload in rows]
        points = [point for point, _ in materialized]
        kernel = kernels.get_backend()
        # bulk load is an API boundary: validate the whole column at once
        # (a box test against the universe) before the unchecked encode
        dims = self.space.dims
        if any(len(point) != dims for point in points):
            bad = next(p for p in points if len(p) != dims)
            raise ValueError(f"expected {dims} coordinates, got {len(bad)}")
        lo, hi = self.space.universe_box()
        if len(kernel.filter_box_batch(lo, hi, points)) != len(points):
            for point in points:  # re-raise with the scalar error message
                self.space.z.encode(point)
        # one batch encode + one stable key sort for the whole dataset
        # (payloads need not be comparable, so only addresses are keyed)
        addresses = kernel.encode_batch(self.space.z, points)
        pairs = [
            (addresses[index], materialized[index])
            for index in kernel.argsort_keys(addresses)
        ]
        self.tree.bulk_load(pairs, fill=fill)
        # with a WAL armed, torn leaves are a legal on-disk state until
        # recovery has replayed the committed images — validate after
        # recover() (the chaos harness does) rather than inline here
        if invariants.enabled() and active_wal(self.tree.disk) is None:
            invariants.validate_ubtree(self)

    def point_query(self, point: Sequence[int]) -> list[Any]:
        """Payloads of all tuples stored exactly at ``point``."""
        z_address = self.space.z_address(point)
        return [
            payload
            for stored, payload in self.tree.search(z_address)
            if stored == tuple(point)
        ]

    def delete(self, point: Sequence[int], payload: Any = None) -> bool:
        z_address = self.space.z_address(point)
        if payload is None:
            return self.tree.delete(z_address)
        return self.tree.delete(z_address, (tuple(point), payload))

    def __len__(self) -> int:
        return self.tree.record_count

    @property
    def region_count(self) -> int:
        return self.tree.leaf_count

    @property
    def page_count(self) -> int:
        return self.tree.leaf_count

    # ------------------------------------------------------------------
    # region access
    # ------------------------------------------------------------------
    def region_for(
        self, z_address: int, *, charge: bool = True
    ) -> tuple[ZRegion, Page]:
        """The Z-region containing ``z_address`` plus its page.

        One B*-Tree descent; the data page access is priced as a random
        read when ``charge`` is set (the Tetris algorithm's
        ``retrieveRegion``).
        """
        leaf, low, high = self.tree.leaf_for(z_address, charge=charge)
        first = 0 if low is None else low + 1
        last = self.space.address_max if high is None else high
        return ZRegion(first, last, leaf.page_id), leaf

    def regions(self) -> Iterator[ZRegion]:
        """All Z-regions in Z-order (unpriced; used by tests and viz).

        Boundaries come from the separator keys via :meth:`region_for`,
        so they agree exactly with what the sweep algorithms see.
        """
        z_address = 0
        while True:
            region, _ = self.region_for(z_address, charge=False)
            yield region
            if region.last >= self.space.address_max:
                return
            z_address = region.last + 1

    def regions_overlapping(
        self, space: QuerySpace, *, prune: bool = True
    ) -> Iterator[ZRegion]:
        """Z-regions intersecting ``space``'s bounding box, in Z-order.

        Each region costs one unpriced descent (index levels only); data
        pages are *not* read.  With ``prune`` set, regions whose geometry
        provably misses a non-rectangular ``space`` are filtered out.
        """
        box = space.bounding_box()
        if box is None:
            box = self.space.universe_box()
        if box_is_empty(box):
            return
        lo, hi = box
        curve = self.space.z
        z_address: int | None = curve.encode(lo)
        last_address = curve.encode(hi)
        while z_address is not None and z_address <= last_address:
            region, _ = self.region_for(z_address, charge=False)
            if not prune or isinstance(space, QueryBox) or region.intersects(curve, space):
                yield region
            z_address = curve.next_in_box(region.last + 1, lo, hi)

    def upcoming_regions(self, space: QuerySpace, count: int) -> list[ZRegion]:
        """The first ``count`` Z-regions a range query over ``space`` reads.

        Index-only projection (unpriced descents, no data pages) — the
        same next-region list the range query's own sweep-ahead
        prefetcher consumes.
        """
        projected: list[ZRegion] = []
        for region in self.regions_overlapping(space):
            projected.append(region)
            if len(projected) >= count:
                break
        return projected

    # ------------------------------------------------------------------
    # the range query (Section 5.3 / standard UB-Tree algorithm)
    # ------------------------------------------------------------------
    def range_query(self, space: QuerySpace) -> Iterator[tuple[tuple[int, ...], Any]]:
        """All tuples inside ``space``; each overlapping page read once.

        This is the multi-attribute restriction algorithm used for TPC-D
        Q6: jump along the Z-curve with BIGMIN, read every overlapping
        region page once (a random access each), and filter the page's
        tuples against the exact predicate.  Filtering runs through the
        batch kernel layer (one ``filter_space_page`` call per page), so
        the vectorized backend evaluates the predicate over the whole
        page at once instead of tuple at a time.  With an I/O scheduler
        armed on the buffer pool, the projected next regions are
        prefetched ahead of the cursor so their transfers overlap.
        """
        buffer = self.tree.buffer
        kernel = kernels.get_backend()
        regions = LookaheadCursor(self.regions_overlapping(space))
        prefetcher = SweepPrefetcher.for_pool(buffer, category=self.category)
        try:
            for region in regions:
                if prefetcher is not None:
                    prefetcher.top_up(
                        ahead.page_id for ahead in regions.peek(prefetcher.depth)
                    )
                page = buffer.get(region.page_id, category=self.category)
                if prefetcher is not None:
                    prefetcher.mark_consumed(region.page_id)
                records = page.records
                for index in kernel.filter_space_page(space, page):
                    point, payload = records[index][1]
                    yield point, payload
        finally:
            if prefetcher is not None:
                prefetcher.close()

    def range_count(self, space: QuerySpace) -> int:
        """Number of qualifying tuples (convenience for tests)."""
        return sum(1 for _ in self.range_query(space))

    def check_invariants(self) -> None:
        """Structural validation plus region/page bijection.

        Delegates to :func:`repro.invariants.validate_ubtree`; runs
        unconditionally — this is the explicit debug entry point,
        independent of the ``REPRO_CHECKS`` gate.
        """
        invariants.validate_ubtree(self)
