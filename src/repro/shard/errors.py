"""Typed failures of the sharded coordinator.

Both errors extend :class:`~repro.storage.errors.StorageError`, keeping
the engine-wide contract — correct rows or a typed error, never silent
garbage — intact one level up: a caller that already catches
``StorageError`` for single-database degradation handles whole-shard
loss with no new code.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..storage.errors import StorageError, TransientIOError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from .events import ShardDegradationEvent

__all__ = [
    "ShardCopyKilledError",
    "ShardFailedError",
]


class ShardCopyKilledError(TransientIOError):
    """One shard copy's engine died mid-scan (whole-shard fault domain).

    Subclasses :class:`~repro.storage.errors.TransientIOError` because a
    *different* copy of the same shard can still serve the residual
    range — the failure is transient from the coordinator's viewpoint
    even though this copy never comes back.
    """


class ShardFailedError(StorageError):
    """Every copy of one shard is gone and partial results were not allowed.

    Carries the coordinator's degradation trail (mirroring
    :class:`~repro.planner.executor.PlanExhaustedError`) so callers can
    report the full retry/repair/failover ladder that preceded the loss.
    """

    def __init__(
        self,
        message: str,
        shard: int,
        degradations: "tuple[ShardDegradationEvent, ...]",
    ) -> None:
        super().__init__(message)
        self.shard = shard
        self.degradations = degradations
