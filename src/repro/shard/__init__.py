"""Range-sharded Tetris engine with chaos-tested shard failover.

Scale-out layer over the single-node engine: ``k`` range shards along
one index dimension, each a fully independent engine instance with
optional peer copies, scattered restricted sorted scans merged back
into a stream bit-identical to the unsharded scan, and a per-shard
failure ladder (repair → retry → failover → typed loss) that never
returns silently wrong rows.
"""

from .coordinator import (
    CoPartitionedJoin,
    RowSource,
    Shard,
    ShardCopy,
    ShardedDatabase,
    ShardedJoinResult,
    ShardedScanResult,
)
from .errors import ShardCopyKilledError, ShardFailedError
from .events import (
    ShardDegradationEvent,
    register_shard_observer,
    unregister_shard_observer,
)
from .merge import merge_shard_streams

__all__ = [
    "CoPartitionedJoin",
    "RowSource",
    "Shard",
    "ShardCopy",
    "ShardCopyKilledError",
    "ShardDegradationEvent",
    "ShardFailedError",
    "ShardedDatabase",
    "ShardedJoinResult",
    "ShardedScanResult",
    "merge_shard_streams",
    "register_shard_observer",
    "unregister_shard_observer",
]
