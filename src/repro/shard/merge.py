"""K-way order-preserving merge of shard streams.

Each shard's restricted sorted scan yields ``(key, (point, payload))``
pairs where ``key`` is the tuple's address on the *full* tetris curve
(sort-dimension bits most significant, Z-order of the remaining bits
below).  That is exactly the key the run buffer inside
:class:`~repro.core.tetris.TetrisScan` orders by, so each shard stream
is ascending in ``key`` — descending scans included, because the
flipped curve encoding makes their addresses ascend too.

A point lives in exactly one shard (the slab ranges partition the
shard dimension) and duplicate points share a page, hence a shard, so
equal keys never meet across shards: merging the streams by ``key``
with any tie-breaking rule reproduces the unsharded scan bit-for-bit.

The merge itself reuses the kernel two-way primitive
:func:`~repro.kernels.merge_sorted_keys` in a pairwise tree —
``ceil(log2(k))`` passes over the data, the same discipline an
external-sort merge phase would use, except no I/O is charged because
the coordinator merges in memory.
"""

from __future__ import annotations

from .. import kernels
from ..core.tetris import SortedTuple

__all__ = ["merge_shard_streams"]

#: One shard's scan output: full-curve address paired with the tuple.
KeyedStream = list[tuple[int, SortedTuple]]


def _merge_pair(left: KeyedStream, right: KeyedStream) -> KeyedStream:
    if not left:
        return right
    if not right:
        return left
    permutation = kernels.merge_sorted_keys(
        [key for key, _ in left], [key for key, _ in right]
    )
    combined = left + right
    return [combined[index] for index in permutation]


def merge_shard_streams(streams: list[KeyedStream]) -> KeyedStream:
    """Merge per-shard ascending streams into one ascending stream.

    Stable across the pairwise tree: ``merge_sorted_keys`` lets its
    first operand win ties, and pairs are always joined left-to-right,
    so lower shard indexes win — immaterial for correctness (equal keys
    cannot span shards) but it keeps the merge deterministic.
    """
    if not streams:
        return []
    level = list(streams)
    while len(level) > 1:
        merged: list[KeyedStream] = []
        for index in range(0, len(level) - 1, 2):
            merged.append(_merge_pair(level[index], level[index + 1]))
        if len(level) % 2:
            merged.append(level[-1])
        level = merged
    return level[0]
