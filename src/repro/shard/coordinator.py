"""Range-sharded Tetris engine with chaos-grade shard failover.

:class:`ShardedDatabase` splits one logical UB-tree table into ``k``
range shards along a designated index dimension — the interval planning
is the parallel executor's :func:`~repro.planner.parallel.plan_slabs`,
applied to the full attribute domain instead of one query's range — and
gives each shard ``r`` *copies*, every copy a fully independent engine
instance: own :class:`~repro.storage.disk.SimulatedDisk`, own buffer
pool, own optional WAL and fault plan.  A shard is the fault domain;
its copies are loaded from the same row stream in the same order, so
they hold bit-identical pages (same page ids, same contents) — the
property that makes cross-copy page repair exact.

The coordinator's restricted sorted scan scatters the query to every
overlapping shard, collects each shard's stream keyed by the *full*
tetris-curve address, and k-way-merges the streams
(:mod:`repro.shard.merge`).  Because a tuple lives in exactly one shard
and duplicate points share a page, the merged stream is bit-identical
to the unsharded scan for any sort attribute.

Robustness is a ladder, climbed per shard and logged one
:class:`~repro.shard.events.ShardDegradationEvent` per rung:

1. **repair** — quarantined pages are healed bit-exactly from a healthy
   peer copy (the shard-level analogue of replica repair);
2. **retry** — transient and corrupt read faults are retried on the
   same copy after an exponential backoff charged to its clock;
3. **failover** — the copy is quarantined and the scan resumes on the
   next healthy copy from the exact residual range (no re-emission,
   no loss: the resume point is the last emitted curve address);
4. **abandon / fail** — with no copy left, the shard's contribution is
   dropped and its range recorded as failed (``allow_partial=True``) or
   the scan raises a typed :class:`~repro.shard.errors.ShardFailedError`.
   Never silent wrong rows.

With ``wal=True`` every copy is also a **two-phase-commit participant**:
a :class:`~repro.txn.TransactionCoordinator` attaches via
:meth:`ShardedDatabase.attach_coordinator` and drives multi-shard writes
through the participant API (``begin_participant`` …
``recover_participant``), making bulk loads and insert batches atomic
across all ``k × r`` independent WALs.  The participant layer owns the
piece the WAL cannot: it snapshots each table's in-memory tree
descriptors when a batch opens and restores them on any abort path,
because WAL rollback restores page content only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Sequence

from .. import invariants
from ..core.query_space import QueryBox, QuerySpace
from ..core.tetris import SortedTuple
from ..core.zorder import ZSpace
from ..planner.parallel import SweepSlab, aligned_shard_slabs, plan_slabs
from ..relational.operators.join import MergeJoin, MergeSemiJoin
from ..relational.schema import Schema
from ..relational.table import Database, Row, UBTable
from ..telemetry import JoinEvent
from ..storage.disk import DiskParameters
from ..storage.errors import (
    CorruptPageError,
    StorageError,
    TransientIOError,
    ensure_page_integrity,
)
from ..storage.faults import FaultPlan, FaultyDisk
from ..storage.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from ..storage.wal import RecoveryReport, WALRecord, WriteAheadLog
from .errors import ShardCopyKilledError, ShardFailedError
from .events import ShardDegradationEvent, _emit_degradations
from .merge import KeyedStream, merge_shard_streams

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..storage.disk import SimulatedDisk
    from ..txn import TransactionCoordinator, TxnRecoveryReport

#: participant id: (shard index, copy index)
Pid = tuple[int, int]

__all__ = [
    "CoPartitionedJoin",
    "RowSource",
    "Shard",
    "ShardCopy",
    "ShardedDatabase",
    "ShardedJoinResult",
    "ShardedScanResult",
]

#: Rows to load: a re-iterable sequence, or a zero-argument factory that
#: regenerates the stream — the streaming path, O(batch) memory, called
#: once per (shard, copy) loading pass.
RowSource = Callable[[], Iterable[Row]] | Sequence[Row]


class ShardCopy:
    """One independent engine instance holding one shard's rows."""

    def __init__(
        self, shard_index: int, copy_index: int, db: Database, table: UBTable
    ) -> None:
        self.shard_index = shard_index
        self.copy_index = copy_index
        self.db = db
        self.table = table
        #: killed copies never serve again (process death, not data loss)
        self.alive = True
        #: cleared by the coordinator when the ladder gives up on a copy
        self.healthy = True
        self.rows_served = 0
        self._kill_at: int | None = None

    @property
    def available(self) -> bool:
        """Whether the coordinator may route a scan to this copy."""
        return self.alive and self.healthy

    def schedule_kill(self, after_rows: int | None) -> None:
        """Die immediately, or after serving ``after_rows`` more rows."""
        if after_rows is None:
            self.alive = False
        else:
            self._kill_at = self.rows_served + after_rows

    def note_row_served(self) -> None:
        """Account one served row; dies mid-scan when a kill is due."""
        if not self.alive:
            raise ShardCopyKilledError(
                f"shard {self.shard_index} copy {self.copy_index} is dead"
            )
        self.rows_served += 1
        if self._kill_at is not None and self.rows_served >= self._kill_at:
            self.alive = False
            raise ShardCopyKilledError(
                f"shard {self.shard_index} copy {self.copy_index} killed "
                f"after serving {self.rows_served} rows"
            )


class Shard:
    """One range shard: a slab of the shard dimension plus its copies."""

    def __init__(self, index: int, slab: SweepSlab, copies: list[ShardCopy]) -> None:
        self.index = index
        self.slab = slab
        self.copies = copies

    def available_copies(self) -> list[ShardCopy]:
        return [copy for copy in self.copies if copy.available]


@dataclass(frozen=True)
class ShardedScanResult:
    """A merged sorted scan plus its degradation ledger.

    ``failed_ranges`` lists encoded shard-dimension intervals whose rows
    are missing (``allow_partial`` scans only) — a non-empty list is the
    explicit partial-result flag the coordinator's contract promises in
    place of silently wrong rows.
    """

    rows: list[SortedTuple]
    degradations: tuple[ShardDegradationEvent, ...]
    failed_ranges: tuple[tuple[int, int], ...]
    per_shard_rows: tuple[int, ...]
    per_shard_elapsed: tuple[float, ...]
    simulated_elapsed: float

    @property
    def partial(self) -> bool:
        """True when at least one shard's rows are missing."""
        return bool(self.failed_ranges)

    @property
    def degraded(self) -> bool:
        """True when any downgrade rung fired during the scan."""
        return bool(self.degradations)


class ShardedDatabase:
    """Coordinator over ``k`` range shards × ``r`` copies of one table."""

    def __init__(
        self,
        schema: Schema,
        dims: Sequence[str],
        shard_attr: str,
        *,
        shards: int,
        copies: int = 1,
        page_capacity: int = 32,
        buffer_pages: int = 64,
        params: DiskParameters | None = None,
        retry_policy: RetryPolicy | None = None,
        quarantine_threshold: int = 3,
        wal: bool = False,
        fault_plans: dict[tuple[int, int], FaultPlan] | None = None,
        wal_fault_plans: dict[tuple[int, int], FaultPlan] | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError("shard count must be >= 1")
        if copies < 1:
            raise ValueError("every shard needs at least one copy")
        if shard_attr not in dims:
            raise ValueError(
                f"shard attribute {shard_attr!r} is not an index dimension"
            )
        self.schema = schema
        self.dims = tuple(dims)
        self.shard_attr = shard_attr
        self.shard_dim = self.dims.index(shard_attr)
        self.params = params
        self.wal_enabled = wal
        #: the attached 2PC coordinator, if any (see attach_coordinator)
        self.txn: "TransactionCoordinator | None" = None
        #: pid -> table tree-meta snapshot, held while its batch is open
        #: or in-doubt; restored on abort, discarded on commit
        self._participant_meta: dict[Pid, tuple] = {}
        self.retry_policy = (
            retry_policy if retry_policy is not None else DEFAULT_RETRY_POLICY
        )
        self.space: ZSpace = ZSpace(schema.bit_lengths(self.dims))
        slabs = plan_slabs(
            QueryBox.full(self.space.coord_max),
            self.shard_dim,
            self.space.coord_max,
            shards,
        )
        plans = fault_plans or {}
        wal_plans = wal_fault_plans or {}
        if wal_plans and not wal:
            raise ValueError("wal_fault_plans requires wal=True")
        self.shards: list[Shard] = []
        for index, slab in enumerate(slabs):
            shard_copies: list[ShardCopy] = []
            for copy_index in range(copies):
                db = Database(
                    params,
                    buffer_pages,
                    fault_plan=plans.get((index, copy_index)),
                    retry_policy=retry_policy,
                    quarantine_threshold=quarantine_threshold,
                    wal=wal,
                    wal_name=f"shard{index}.copy{copy_index}.wal",
                    wal_fault_plan=wal_plans.get((index, copy_index)),
                )
                table = db.create_ub_table(
                    f"shard{index}", schema, self.dims, page_capacity
                )
                shard_copies.append(ShardCopy(index, copy_index, db, table))
            self.shards.append(Shard(index, slab, shard_copies))
        self.rows_loaded: list[int] = [0] * len(self.shards)
        self._shard_pos = schema.position(shard_attr)
        self._shard_encoder = schema.attribute(shard_attr).encoder

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def load(self, source: RowSource, *, fill: float = 1.0) -> int:
        """Bulk-load every shard copy from ``source``; returns row total.

        A callable ``source`` is re-invoked once per (shard, copy) pass
        and its stream filtered on the fly, so peak memory stays at one
        page batch no matter the scale factor.  A sequence works too —
        it is simply iterated ``k × r`` times.

        With a transaction coordinator attached the load runs as one
        atomic global transaction (all shards commit or none do).
        """
        if self.txn is not None:
            return self.txn.atomic_load(source, fill=fill).rows
        factory = self._row_factory(source)
        total = 0
        for shard in self.shards:
            counts = []
            for copy in shard.copies:
                copy.table.bulk_load(
                    self._rows_for_slab(factory(), shard.slab), fill=fill
                )
                counts.append(len(copy.table))
            if len(set(counts)) > 1:
                raise ValueError(
                    f"shard {shard.index} copies diverged during load: "
                    f"{counts} rows (source is not deterministic)"
                )
            self.rows_loaded[shard.index] = counts[0]
            total += counts[0]
        if invariants.enabled():
            invariants.validate_sharded_database(self)
        return total

    def _row_factory(self, source: RowSource) -> Callable[[], Iterable[Row]]:
        if callable(source):
            return source
        rows: Sequence[Row] = source
        return lambda: rows

    def _rows_for_slab(
        self, rows: Iterable[Row], slab: SweepSlab
    ) -> Iterator[Row]:
        encode = self._shard_encoder.encode
        position = self._shard_pos
        for row in rows:
            if slab.lo <= encode(row[position]) <= slab.hi:
                yield row

    def insert_batch(self, rows: Iterable[Row]) -> int:
        """Insert a batch of rows, routed to their owning shards.

        With a transaction coordinator attached the batch is one atomic
        global transaction; otherwise each copy applies its slab as one
        local WAL batch (or plain inserts without a WAL).  Returns the
        total row count after the batch.
        """
        rows = list(rows)
        if self.txn is not None:
            return self.txn.atomic_insert(rows).rows
        for shard in self.shards:
            for copy in shard.copies:
                shard_rows = list(self._rows_for_slab(rows, shard.slab))
                if not shard_rows:
                    continue
                wal = copy.db.wal
                if wal is None:
                    for row in shard_rows:
                        copy.table.insert(row)
                    continue
                meta = copy.table.meta_snapshot()
                try:
                    with wal.batch("shard.insert_batch"):
                        for row in shard_rows:
                            copy.table.insert(row)
                except BaseException:
                    copy.table.meta_restore(meta)
                    raise
        return self.refresh_row_counts()

    # ------------------------------------------------------------------
    # the 2PC participant layer (driven by repro.txn; R015 bans any
    # other caller of the mutating participant methods)
    # ------------------------------------------------------------------
    def attach_coordinator(self, coordinator: "TransactionCoordinator") -> None:
        """Bind a transaction coordinator; loads/inserts become atomic.

        Requires a WAL on every copy (the participant protocol journals
        prepare records there) and refuses a second coordinator.
        """
        if self.txn is not None:
            raise RuntimeError(
                "a transaction coordinator is already attached"
            )
        for shard in self.shards:
            for copy in shard.copies:
                if copy.db.wal is None:
                    raise RuntimeError(
                        "two-phase commit requires wal=True on every "
                        f"shard copy (shard {shard.index} copy "
                        f"{copy.copy_index} has none)"
                    )
        self.txn = coordinator

    def participant_ids(self) -> tuple[Pid, ...]:
        """Every (shard, copy) pair, in shard-major order."""
        return tuple(
            (shard.index, copy.copy_index)
            for shard in self.shards
            for copy in shard.copies
        )

    def participant_name(self, pid: Pid) -> str:
        return f"shard{pid[0]}.copy{pid[1]}"

    def _participant(self, pid: Pid) -> ShardCopy:
        return self.shards[pid[0]].copies[pid[1]]

    def _participant_wal(self, pid: Pid) -> WriteAheadLog:
        wal = self._participant(pid).db.wal
        if wal is None:  # pragma: no cover - guarded by attach_coordinator
            raise RuntimeError(f"{self.participant_name(pid)} has no WAL")
        return wal

    def begin_participant(self, pid: Pid, gid: str) -> int:
        """Open this participant's WAL batch under the global txn id.

        The table's in-memory tree descriptors are snapshotted first:
        WAL rollback restores page content only, so any abort path
        (in-process or post-crash presumed abort) restores these too.
        """
        copy = self._participant(pid)
        self._participant_meta[pid] = copy.table.meta_snapshot()
        return self._participant_wal(pid).begin(gid)

    def load_participant(
        self, pid: Pid, source: RowSource, *, fill: float = 1.0
    ) -> int:
        """Bulk-load this copy's slab of ``source`` inside its batch."""
        copy = self._participant(pid)
        shard = self.shards[pid[0]]
        factory = self._row_factory(source)
        copy.table.bulk_load(
            self._rows_for_slab(factory(), shard.slab), fill=fill
        )
        return len(copy.table)

    def insert_participant(self, pid: Pid, rows: Iterable[Row]) -> int:
        """Insert this copy's slab of ``rows`` inside its batch."""
        copy = self._participant(pid)
        shard = self.shards[pid[0]]
        inserted = 0
        for row in self._rows_for_slab(rows, shard.slab):
            copy.table.insert(row)
            inserted += 1
        return inserted

    def prepare_participant(self, pid: Pid, gid: str) -> int:
        """Force this participant's prepare record (its commit vote)."""
        return self._participant_wal(pid).prepare(gid)

    def commit_participant(self, pid: Pid, gid: str) -> None:
        """Apply the coordinator's commit verdict to the prepared batch."""
        self._participant_wal(pid).commit_prepared(gid)
        self._participant_meta.pop(pid, None)

    def abort_participant(self, pid: Pid, gid: str) -> None:
        """Roll this participant back, whatever state its batch is in.

        Handles a prepared batch (verdict abort), a still-open batch
        (work-phase failure) and a batch that never began (no-op) — the
        coordinator's abort path cannot know which it will find.  The
        tree-meta snapshot is restored unconditionally; page rollback
        that a crash interrupts here is re-driven by recovery.
        """
        wal = self._participant_wal(pid)
        try:
            if gid in wal.prepared_gids:
                wal.abort_prepared(gid)
            elif wal.in_batch:
                wal.abort()
        finally:
            meta = self._participant_meta.pop(pid, None)
            if meta is not None:
                self._participant(pid).table.meta_restore(meta)

    def recover_participant(
        self, pid: Pid, decide: "Callable[[str], bool] | None" = None
    ) -> RecoveryReport:
        """Run this copy's WAL recovery and settle its in-memory state.

        ``decide`` is the coordinator's decision-log lookup; without it
        (or for any gid it declines) prepared batches presume abort.
        The held tree-meta snapshot is restored unless the decision log
        vouches for a commit — a committed participant's in-memory state
        already reflects the applied work.
        """
        copy = self._participant(pid)
        wal = self._participant_wal(pid)
        committed = decide is not None and any(
            decide(gid) for gid in wal.prepared_gids
        )
        report = copy.db.recover(decide)
        meta = self._participant_meta.pop(pid, None)
        if meta is not None and not committed:
            copy.table.meta_restore(meta)
        return report

    def participant_wal_records(self, pid: Pid) -> tuple[WALRecord, ...]:
        """Read-only view of one participant's log (validators only)."""
        return tuple(self._participant_wal(pid).records)

    def refresh_row_counts(self) -> int:
        """Re-derive ``rows_loaded`` from the live tables; returns total.

        Transactional writes change row counts outside :meth:`load`'s
        bookkeeping; this re-reads every copy, re-checks cross-copy
        convergence and keeps the coordinator's ledger honest.
        """
        total = 0
        for shard in self.shards:
            counts = [len(copy.table) for copy in shard.copies]
            if len(set(counts)) > 1:
                raise ValueError(
                    f"shard {shard.index} copies diverged: {counts} rows"
                )
            self.rows_loaded[shard.index] = counts[0]
            total += counts[0]
        return total

    def recover(self) -> "TxnRecoveryReport | tuple[RecoveryReport, ...]":
        """Crash recovery across every shard log.

        With a coordinator attached, delegates to its decision-log
        replay (commit in-doubt batches whose verdict is durable,
        presume abort otherwise).  Without one, every copy recovers
        standalone — all in-doubt batches presume abort.
        """
        if self.txn is not None:
            return self.txn.recover()
        reports = tuple(
            self.recover_participant(pid) for pid in self.participant_ids()
        )
        self.refresh_row_counts()
        return reports

    # ------------------------------------------------------------------
    # deterministic crash hooks (the crash-schedule explorer's surface)
    # ------------------------------------------------------------------
    def _base_disk(self, pid: Pid) -> "SimulatedDisk":
        disk = self._participant(pid).db.disk
        while hasattr(disk, "inner"):
            disk = disk.inner
        return disk

    def wal_append_count(self, pid: Pid) -> int:
        return self._participant_wal(pid).append_count

    def arm_wal_crash(self, pid: Pid, appends: int) -> None:
        self._participant_wal(pid).crash_after_appends(appends)

    def data_write_count(self, pid: Pid) -> int:
        return self._base_disk(pid).write_count

    def arm_data_crash(self, pid: Pid, writes: int) -> None:
        self._base_disk(pid).crash_after_writes(writes)

    # ------------------------------------------------------------------
    # fault administration
    # ------------------------------------------------------------------
    def arm_faults(self) -> None:
        """Arm every copy built with a data-disk or log-device plan."""
        for shard in self.shards:
            for copy in shard.copies:
                data_faulted = isinstance(copy.db.disk, FaultyDisk)
                log_faulted = copy.db.wal is not None and isinstance(
                    copy.db.wal.device, FaultyDisk
                )
                if data_faulted or log_faulted:
                    copy.db.arm_faults()

    def disarm_faults(self) -> None:
        """Stop all injection; delegation becomes pure again."""
        for shard in self.shards:
            for copy in shard.copies:
                copy.db.disarm_faults()

    def kill_copy(
        self, shard: int, copy: int, *, after_rows: int | None = None
    ) -> None:
        """Kill one copy's engine, now or after it serves more rows."""
        self.shards[shard].copies[copy].schedule_kill(after_rows)

    def health(self) -> tuple[tuple[str, ...], ...]:
        """Per-shard copy states: ``ok``, ``quarantined`` or ``dead``."""
        states: list[tuple[str, ...]] = []
        for shard in self.shards:
            states.append(
                tuple(
                    "dead"
                    if not copy.alive
                    else ("ok" if copy.healthy else "quarantined")
                    for copy in shard.copies
                )
            )
        return tuple(states)

    def clock_total(self) -> float:
        """Summed simulated seconds across every copy's devices.

        Data disks plus WAL log devices; external harnesses price whole
        worlds with this instead of reaching into per-copy engine
        internals (R014).
        """
        total = 0.0
        for shard in self.shards:
            for copy in shard.copies:
                total += copy.db.disk.clock
                if copy.db.wal is not None:
                    total += copy.db.wal.device.clock
        return total

    def fault_totals(self) -> dict[str, int]:
        """Aggregate fault counters summed over every copy's disk.

        External harnesses (the chaos sweep in particular) read these
        instead of reaching into per-copy engine internals, which the
        R014 lint forbids outside this package.
        """
        totals = {
            "injected": 0,
            "retries": 0,
            "quarantined": 0,
            "repaired": 0,
            "lifted": 0,
            "log_injected": 0,
        }
        for shard in self.shards:
            for copy in shard.copies:
                faults = copy.db.disk.stats.faults
                totals["injected"] += faults.total_injected
                totals["retries"] += faults.retries
                totals["quarantined"] += faults.quarantined_pages
                totals["repaired"] += faults.repaired_pages
                totals["lifted"] += faults.quarantine_lifted
                wal = copy.db.wal
                if wal is not None and isinstance(wal.device, FaultyDisk):
                    totals["log_injected"] += (
                        wal.device.stats.faults.total_injected
                    )
        return totals

    @property
    def total_rows(self) -> int:
        return sum(self.rows_loaded)

    def reset_measurement(self) -> None:
        """Drop every copy's caches between experiments."""
        for shard in self.shards:
            for copy in shard.copies:
                copy.db.reset_measurement()

    # ------------------------------------------------------------------
    # the scattered, merged, failure-laddered sorted scan
    # ------------------------------------------------------------------
    def sorted_scan(
        self,
        restrictions: dict[str, tuple[Any, Any]] | None,
        sort_attr: str | Sequence[str],
        *,
        descending: bool = False,
        strategy: str = "eager",
        allow_partial: bool = False,
        max_degradations: int = 16,
    ) -> ShardedScanResult:
        """Restricted sorted scan over all shards, merged in order.

        Bit-identical to the unsharded scan when every shard survives;
        otherwise degrades down the documented ladder, emitting one
        event per rung, and either flags the lost ranges
        (``allow_partial=True``) or raises
        :class:`~repro.shard.errors.ShardFailedError`.
        """
        box = self._reference_table().build_query_box(restrictions)
        events: list[ShardDegradationEvent] = []
        failed_ranges: list[tuple[int, int]] = []
        start_clocks = [
            [copy.db.clock for copy in shard.copies] for shard in self.shards
        ]
        streams: list[KeyedStream] = []
        try:
            for shard in self.shards:
                shard_box = box.restricted(
                    self.shard_dim, shard.slab.lo, shard.slab.hi
                )
                if shard_box.is_empty:
                    streams.append([])
                    continue
                streams.append(
                    self._scan_shard(
                        shard,
                        shard_box,
                        sort_attr,
                        descending,
                        strategy,
                        allow_partial,
                        max_degradations,
                        events,
                        failed_ranges,
                    )
                )
        except ShardFailedError:
            _emit_degradations(tuple(events))
            raise
        merged = merge_shard_streams(streams)
        rows = [pair for _, pair in merged]
        if invariants.enabled():
            invariants.validate_sharded_database(self)
            self._check_stream(rows, box, sort_attr, descending)
        per_shard_elapsed = tuple(
            sum(
                copy.db.clock - before
                for copy, before in zip(shard.copies, start_clocks[index])
            )
            for index, shard in enumerate(self.shards)
        )
        _emit_degradations(tuple(events))
        return ShardedScanResult(
            rows=rows,
            degradations=tuple(events),
            failed_ranges=tuple(failed_ranges),
            per_shard_rows=tuple(len(stream) for stream in streams),
            per_shard_elapsed=per_shard_elapsed,
            simulated_elapsed=max(per_shard_elapsed, default=0.0),
        )

    def _reference_table(self) -> UBTable:
        return self.shards[0].copies[0].table

    def _sort_dims(self, sort_attr: str | Sequence[str]) -> tuple[int, ...]:
        if isinstance(sort_attr, str):
            return (self.dims.index(sort_attr),)
        return tuple(self.dims.index(attr) for attr in sort_attr)

    def _check_stream(
        self,
        rows: list[SortedTuple],
        box: QuerySpace,
        sort_attr: str | Sequence[str],
        descending: bool,
    ) -> None:
        checker = invariants.StreamChecker(
            self._sort_dims(sort_attr), descending, box
        )
        for point, _ in rows:
            checker.observe(point)

    # -- one shard, down the ladder ------------------------------------
    def _scan_shard(
        self,
        shard: Shard,
        shard_box: QueryBox,
        sort_attr: str | Sequence[str],
        descending: bool,
        strategy: str,
        allow_partial: bool,
        max_degradations: int,
        events: list[ShardDegradationEvent],
        failed_ranges: list[tuple[int, int]],
    ) -> KeyedStream:
        emitted: KeyedStream = []
        retry_budgets: dict[int, Iterator[float]] = {}
        rungs = 0
        copy = self._next_copy(shard)
        if copy is not None and copy is not shard.copies[0]:
            # the primary never even got the scan: that is a downgrade
            # too, and it gets its event like every other rung
            primary = shard.copies[0]
            events.append(
                ShardDegradationEvent(
                    shard=shard.index,
                    copy=primary.copy_index,
                    action="failover",
                    error_type=(
                        "ShardCopyKilledError"
                        if not primary.alive
                        else "StorageError"
                    ),
                    error="primary copy unavailable at scan start",
                    fallback_copy=copy.copy_index,
                )
            )
        while True:
            if copy is None:
                return self._lose_shard(
                    shard,
                    shard_box,
                    "no available copy",
                    "StorageError",
                    allow_partial,
                    events,
                    failed_ranges,
                )
            try:
                self._drain_copy(
                    copy, shard_box, sort_attr, descending, strategy, emitted
                )
                return emitted
            except StorageError as exc:
                rungs += 1
                if rungs > max_degradations:
                    copy.healthy = False
                    return self._lose_shard(
                        shard,
                        shard_box,
                        f"degradation budget exhausted ({max_degradations})",
                        type(exc).__name__,
                        allow_partial,
                        events,
                        failed_ranges,
                    )
                copy = self._climb_ladder(
                    shard, copy, exc, retry_budgets, events
                )

    # -- one shard, streamed down the same ladder ----------------------
    def _stream_shard(
        self,
        shard: Shard,
        shard_box: QueryBox,
        sort_attr: str | Sequence[str],
        descending: bool,
        strategy: str,
        allow_partial: bool,
        max_degradations: int,
        events: list[ShardDegradationEvent],
        failed_ranges: list[tuple[int, int]],
        predicate: Callable[[Row], bool] | None = None,
    ) -> Iterator[tuple[int, SortedTuple]]:
        """Stream one shard's tuples, climbing the ladder between pulls.

        The generator sibling of :meth:`_scan_shard`, feeding pipelined
        consumers (co-partitioned join legs): rows are yielded as the
        sweep produces them, and the repair/retry/failover ladder runs
        *inside* the generator, so the consumer never sees a
        :class:`StorageError` — resume after failover continues from the
        exact residual range, with no re-emission.  On an abandoned
        shard (``allow_partial=True``) the stream simply ends early with
        the shard's key range recorded in ``failed_ranges``; rows
        already yielded were consumed, so the caller must treat the
        *whole* range as missing and flag its result partial.  Without
        ``allow_partial`` the terminal rung raises
        :class:`~repro.shard.errors.ShardFailedError` through the
        generator.
        """
        emitted: KeyedStream = []
        retry_budgets: dict[int, Iterator[float]] = {}
        rungs = 0
        copy = self._next_copy(shard)
        if copy is not None and copy is not shard.copies[0]:
            primary = shard.copies[0]
            events.append(
                ShardDegradationEvent(
                    shard=shard.index,
                    copy=primary.copy_index,
                    action="failover",
                    error_type=(
                        "ShardCopyKilledError"
                        if not primary.alive
                        else "StorageError"
                    ),
                    error="primary copy unavailable at scan start",
                    fallback_copy=copy.copy_index,
                )
            )
        while True:
            if copy is None:
                self._lose_shard(
                    shard,
                    shard_box,
                    "no available copy",
                    "StorageError",
                    allow_partial,
                    events,
                    failed_ranges,
                )
                return
            try:
                yield from self._drain_copy_iter(
                    copy,
                    shard_box,
                    sort_attr,
                    descending,
                    strategy,
                    emitted,
                    predicate,
                )
                return
            except StorageError as exc:
                rungs += 1
                if rungs > max_degradations:
                    copy.healthy = False
                    self._lose_shard(
                        shard,
                        shard_box,
                        f"degradation budget exhausted ({max_degradations})",
                        type(exc).__name__,
                        allow_partial,
                        events,
                        failed_ranges,
                    )
                    return
                copy = self._climb_ladder(
                    shard, copy, exc, retry_budgets, events
                )

    def _climb_ladder(
        self,
        shard: Shard,
        copy: ShardCopy,
        exc: StorageError,
        retry_budgets: dict[int, Iterator[float]],
        events: list[ShardDegradationEvent],
    ) -> ShardCopy | None:
        """One rung: repair, retry, or failover.  Returns the next copy
        to drain (``None`` when the shard is lost)."""
        quarantined = (
            copy.db.buffer.quarantined_pages if copy.available else frozenset()
        )
        if quarantined:
            peer = self._peer_copy(shard, copy)
            if peer is not None:
                healed = self._repair_from_peer(copy, peer, quarantined)
                if healed:
                    events.append(
                        ShardDegradationEvent(
                            shard=shard.index,
                            copy=copy.copy_index,
                            action="repaired",
                            error_type=type(exc).__name__,
                            error=str(exc),
                            repaired_pages=tuple(healed),
                        )
                    )
                    return copy
        if copy.available and isinstance(exc, (TransientIOError, CorruptPageError)):
            budget = retry_budgets.setdefault(
                copy.copy_index, iter(self.retry_policy.delays())
            )
            delay = next(budget, None)
            if delay is not None:
                copy.db.disk.advance_clock(delay)
                events.append(
                    ShardDegradationEvent(
                        shard=shard.index,
                        copy=copy.copy_index,
                        action="retry",
                        error_type=type(exc).__name__,
                        error=str(exc),
                    )
                )
                return copy
        copy.healthy = False
        fallback = self._next_copy(shard)
        if fallback is not None:
            events.append(
                ShardDegradationEvent(
                    shard=shard.index,
                    copy=copy.copy_index,
                    action="failover",
                    error_type=type(exc).__name__,
                    error=str(exc),
                    fallback_copy=fallback.copy_index,
                )
            )
        return fallback

    def _lose_shard(
        self,
        shard: Shard,
        shard_box: QueryBox,
        message: str,
        error_type: str,
        allow_partial: bool,
        events: list[ShardDegradationEvent],
        failed_ranges: list[tuple[int, int]],
    ) -> KeyedStream:
        lost = (shard_box.lo[self.shard_dim], shard_box.hi[self.shard_dim])
        if allow_partial:
            events.append(
                ShardDegradationEvent(
                    shard=shard.index,
                    copy=-1,
                    action="abandoned",
                    error_type=error_type,
                    error=message,
                )
            )
            failed_ranges.append(lost)
            return []
        events.append(
            ShardDegradationEvent(
                shard=shard.index,
                copy=-1,
                action="failed",
                error_type=error_type,
                error=message,
            )
        )
        raise ShardFailedError(
            f"shard {shard.index} lost every copy: {message}",
            shard.index,
            tuple(events),
        )

    def _next_copy(self, shard: Shard) -> ShardCopy | None:
        available = shard.available_copies()
        return available[0] if available else None

    def _peer_copy(self, shard: Shard, copy: ShardCopy) -> ShardCopy | None:
        for candidate in shard.available_copies():
            if candidate.copy_index != copy.copy_index:
                return candidate
        return None

    # -- drain one copy from the residual range ------------------------
    def _drain_copy(
        self,
        copy: ShardCopy,
        shard_box: QueryBox,
        sort_attr: str | Sequence[str],
        descending: bool,
        strategy: str,
        emitted: KeyedStream,
    ) -> None:
        for _ in self._drain_copy_iter(
            copy, shard_box, sort_attr, descending, strategy, emitted
        ):
            pass

    def _drain_copy_iter(
        self,
        copy: ShardCopy,
        shard_box: QueryBox,
        sort_attr: str | Sequence[str],
        descending: bool,
        strategy: str,
        emitted: KeyedStream,
        predicate: Callable[[Row], bool] | None = None,
    ) -> Iterator[tuple[int, SortedTuple]]:
        """Append the shard's residual tuples to ``emitted`` via ``copy``.

        Yields each pair right after appending it, so a streaming
        consumer (a co-partitioned join leg) sees rows as the sweep
        produces them; a :class:`StorageError` can only surface *before*
        an append, which keeps ``emitted`` an exact ledger of what the
        consumer received — the resume bookkeeping below needs nothing
        else.  ``predicate`` filters rows before they are emitted (and
        before they enter the resume ledger, so a restart re-applies it
        consistently).

        The residual range is recovered from what is already emitted:
        the stream is totally ordered by full-curve address, so the
        suffix still owed is exactly the keys above the last emitted
        address, minus the rows already delivered *at* that address (a
        duplicate-point tie is served in arrival order on one page, so
        a count suffices).  The primary sort dimension is additionally
        clamped to the resume point — curve addresses put that
        dimension in the most significant bits, so no owed row can sit
        below it — letting the restarted sweep skip the served prefix's
        pages instead of re-reading them.
        """
        if not copy.alive:
            raise ShardCopyKilledError(
                f"shard {copy.shard_index} copy {copy.copy_index} is dead"
            )
        box = shard_box
        last_key: int | None = None
        skip_at_last = 0
        if emitted:
            last_key = emitted[-1][0]
            for key, _ in reversed(emitted):
                if key != last_key:
                    break
                skip_at_last += 1
            primary = self._sort_dims(sort_attr)[0]
            resume_coord = emitted[-1][1][0][primary]
            if descending:
                box = box.restricted(primary, 0, resume_coord)
            else:
                box = box.restricted(
                    primary, resume_coord, self.space.coord_max[primary]
                )
        scan = copy.table.tetris_scan(
            box, sort_attr, descending=descending, strategy=strategy
        )
        encode = scan.tetris_curve.encode
        for point, payload in scan:
            copy.note_row_served()
            if predicate is not None and not predicate(payload):
                continue
            key = encode(point)
            if last_key is not None:
                if key < last_key:
                    continue
                if key == last_key and skip_at_last > 0:
                    skip_at_last -= 1
                    continue
            pair = (key, (point, payload))
            emitted.append(pair)
            yield pair

    # -- bit-exact cross-copy page repair ------------------------------
    def _repair_from_peer(
        self, copy: ShardCopy, peer: ShardCopy, page_ids: frozenset[int]
    ) -> list[int]:
        """Heal ``copy``'s quarantined pages from ``peer``'s intact ones.

        Copies are loaded identically, so page ids and contents line up
        one-to-one; each healed page costs one random read on the peer
        and one random write on the patient, charged to their own
        clocks.  Pages whose peer copy fails its own checksum are left
        quarantined (never propagate damage), and only pages whose
        quarantine actually lifts count as healed.
        """
        healed: list[int] = []
        for page_id in sorted(page_ids):
            try:
                peer_page = peer.db.disk.peek(page_id)
                read_cost = peer.db.disk.params.random_cost(1)
                peer.db.disk.advance_clock(read_cost)
                peer.db.disk.stats.faults.repair_reads += 1
                ensure_page_integrity(
                    peer_page,
                    context=f"peer copy {peer.copy_index} during shard repair",
                )
                page = copy.db.disk.peek(page_id)
            except StorageError:
                continue
            page.records = list(peer_page.records)
            page.version += 1
            page.seal_checksum()
            write_cost = copy.db.disk.params.random_cost(1)
            copy.db.disk.advance_clock(write_cost)
            copy.db.disk.stats.faults.repair_delay += write_cost
            if copy.db.buffer.lift_quarantine(page_id):
                copy.db.disk.stats.faults.repaired_pages += 1
                healed.append(page_id)
        return healed


# ----------------------------------------------------------------------
# co-partitioned sharded merge joins
# ----------------------------------------------------------------------
class _LegClock:
    """Summed simulated clock over one join leg's engine instances.

    A leg drains copies of *two* shards (one per join side), each an
    independent engine with its own disk; the leg's
    :class:`~repro.telemetry.JoinEvent` clocks are read off this sum, so
    ``first_tuple_clock - start_clock`` is the simulated service time
    spent before the leg's first output row.
    """

    def __init__(self, copies: Sequence[ShardCopy]) -> None:
        self._copies = tuple(copies)

    @property
    def clock(self) -> float:
        return sum(copy.db.clock for copy in self._copies)


@dataclass(frozen=True)
class ShardedJoinResult:
    """A co-partitioned join's concatenated output plus its ledgers.

    ``rows`` are combined output rows in serial join order (see
    :class:`CoPartitionedJoin` for the order-preservation argument).  A
    failed shard pair contributes **no** rows — its encoded join-key
    range appears in ``failed_ranges`` instead (``allow_partial`` runs
    only), so output is never silently truncated mid-shard.
    ``join_events`` holds one :class:`~repro.telemetry.JoinEvent` per
    *surviving* leg; failed legs are covered by ``degradations``.
    ``simulated_elapsed`` models the legs running in parallel: the max
    over per-leg summed service time.
    """

    rows: list[Row]
    degradations: tuple[ShardDegradationEvent, ...]
    failed_ranges: tuple[tuple[int, int], ...]
    per_shard_rows: tuple[int, ...]
    per_shard_elapsed: tuple[float, ...]
    simulated_elapsed: float
    join_events: tuple[JoinEvent, ...]

    @property
    def partial(self) -> bool:
        """True when at least one shard pair's output is missing."""
        return bool(self.failed_ranges)

    @property
    def degraded(self) -> bool:
        return bool(self.degradations)


class CoPartitionedJoin:
    """Pipelined merge join across two co-partitioned sharded relations.

    Both sides must be range-sharded on their join attribute over
    identical encoded key intervals (validated through
    :func:`~repro.planner.parallel.aligned_shard_slabs`).  Then every
    equal-join-key group lives in exactly one shard *pair*, and each
    pair can run its own pipelined :class:`MergeJoin` /
    :class:`MergeSemiJoin` leg — both inputs streamed in join-key order
    straight off their shards' Tetris sweeps, down the full
    repair/retry/failover ladder, with no cross-shard coordination.

    **Order preservation.**  Each side's shard stream ascends in the
    full tetris-curve address (join-key bits most significant), and the
    slabs partition the encoded join-key domain in ascending ranges, so
    concatenating per-shard streams reproduces the serial sorted stream
    bit-for-bit.  A merge join consumes its inputs group-by-group and a
    key group never spans a slab boundary, hence concatenating the leg
    outputs in shard order *is* the k-way ordered merge of the legs and
    equals the serial join of the serial streams, row for row.
    """

    def __init__(
        self,
        left: ShardedDatabase,
        right: ShardedDatabase,
        *,
        kind: str = "inner",
        combine: Callable[[Row, Row], Row] | None = None,
    ) -> None:
        if kind not in ("inner", "semi"):
            raise ValueError(f"unknown join kind {kind!r} (inner | semi)")
        left_max = left.space.coord_max[left.shard_dim]
        right_max = right.space.coord_max[right.shard_dim]
        if left_max != right_max:
            raise ValueError(
                f"join-key domains differ: {left.shard_attr!r} encodes to "
                f"[0, {left_max}] but {right.shard_attr!r} to [0, {right_max}]"
            )
        self.slabs = aligned_shard_slabs(
            [shard.slab for shard in left.shards],
            [shard.slab for shard in right.shards],
        )
        self.left = left
        self.right = right
        self.kind = kind
        self.combine = combine
        self._left_pos = left.schema.position(left.shard_attr)
        self._right_pos = right.schema.position(right.shard_attr)

    def run(
        self,
        left_restrictions: dict[str, tuple[Any, Any]] | None = None,
        right_restrictions: dict[str, tuple[Any, Any]] | None = None,
        *,
        left_predicate: Callable[[Row], bool] | None = None,
        right_predicate: Callable[[Row], bool] | None = None,
        strategy: str = "eager",
        allow_partial: bool = False,
        max_degradations: int = 16,
    ) -> ShardedJoinResult:
        """Run every shard pair's join leg; concatenate in shard order.

        Each leg is fully pipelined: both side streams climb the shard
        failure ladder internally, so the merge operator itself never
        sees a :class:`StorageError`.  A shard pair that loses a side
        raises :class:`~repro.shard.errors.ShardFailedError` (default)
        or — with ``allow_partial`` — contributes nothing and records
        its join-key range in ``failed_ranges``.
        """
        left_box = self.left._reference_table().build_query_box(
            left_restrictions
        )
        right_box = self.right._reference_table().build_query_box(
            right_restrictions
        )
        left_pos, right_pos = self._left_pos, self._right_pos
        events: list[ShardDegradationEvent] = []
        failed_ranges: list[tuple[int, int]] = []
        join_events: list[JoinEvent] = []
        rows: list[Row] = []
        per_shard_rows: list[int] = []
        per_shard_elapsed: list[float] = []
        try:
            for index, slab in enumerate(self.slabs):
                left_shard = self.left.shards[index]
                right_shard = self.right.shards[index]
                slab_left = left_box.restricted(
                    self.left.shard_dim, slab.lo, slab.hi
                )
                slab_right = right_box.restricted(
                    self.right.shard_dim, slab.lo, slab.hi
                )
                if slab_left.is_empty or slab_right.is_empty:
                    # an inner or semi join emits nothing without both sides
                    per_shard_rows.append(0)
                    per_shard_elapsed.append(0.0)
                    continue
                copies = tuple(left_shard.copies) + tuple(right_shard.copies)
                leg_clock = _LegClock(copies)
                clock_before = leg_clock.clock
                failed_before = len(failed_ranges)
                left_rows = (
                    pair[1][1]
                    for pair in self.left._stream_shard(
                        left_shard,
                        slab_left,
                        self.left.shard_attr,
                        False,
                        strategy,
                        allow_partial,
                        max_degradations,
                        events,
                        failed_ranges,
                        left_predicate,
                    )
                )
                right_rows = (
                    pair[1][1]
                    for pair in self.right._stream_shard(
                        right_shard,
                        slab_right,
                        self.right.shard_attr,
                        False,
                        strategy,
                        allow_partial,
                        max_degradations,
                        events,
                        failed_ranges,
                        right_predicate,
                    )
                )
                leg: MergeJoin | MergeSemiJoin
                if self.kind == "inner":
                    leg = MergeJoin(
                        left_rows,
                        right_rows,
                        left_key=lambda row: row[left_pos],
                        right_key=lambda row: row[right_pos],
                        combine=self.combine,
                        disk=leg_clock,  # duck-typed: only .clock is read
                        shard=index,
                    )
                else:
                    leg = MergeSemiJoin(
                        left_rows,
                        right_rows,
                        left_key=lambda row: row[left_pos],
                        right_key=lambda row: row[right_pos],
                        disk=leg_clock,
                        shard=index,
                    )
                leg_rows = list(leg)
                per_shard_elapsed.append(leg_clock.clock - clock_before)
                if len(failed_ranges) > failed_before:
                    # a side was abandoned mid-leg: drop the leg's output
                    # wholesale — the flagged range covers the whole shard
                    per_shard_rows.append(0)
                    continue
                rows.extend(leg_rows)
                per_shard_rows.append(len(leg_rows))
                if leg.last_event is not None:
                    join_events.append(leg.last_event)
        except ShardFailedError:
            _emit_degradations(tuple(events))
            raise
        _emit_degradations(tuple(events))
        return ShardedJoinResult(
            rows=rows,
            degradations=tuple(events),
            failed_ranges=tuple(failed_ranges),
            per_shard_rows=tuple(per_shard_rows),
            per_shard_elapsed=tuple(per_shard_elapsed),
            simulated_elapsed=max(per_shard_elapsed, default=0.0),
            join_events=tuple(join_events),
        )
