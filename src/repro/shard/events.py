"""Structured degradation telemetry for the sharded coordinator.

Every downgrade the coordinator performs — transient retry, cross-copy
page repair, failover to a replica copy, abandoning a shard, or giving
up entirely — emits exactly one :class:`ShardDegradationEvent`.  The
events share the :class:`~repro.telemetry.TelemetryEvent` base and the
:class:`~repro.telemetry.ObserverRegistry` delivery mechanism with the
planner's ``DegradationEvent`` and the parallel executor's
``ExecutorFallbackEvent``, so one observer hook can watch the whole
engine degrade.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..telemetry import ObserverRegistry, TelemetryEvent

__all__ = [
    "ShardDegradationEvent",
    "register_shard_observer",
    "unregister_shard_observer",
]

#: Downgrade actions, from mildest to terminal.
_ACTIONS = ("retry", "repaired", "failover", "abandoned", "failed")


@dataclass(frozen=True)
class ShardDegradationEvent(TelemetryEvent):
    """One rung of the shard failure ladder.

    ``action`` is one of ``retry`` (transient fault, same copy retried
    after backoff), ``repaired`` (quarantined pages healed bit-exactly
    from a peer copy), ``failover`` (scan resumed on ``fallback_copy``),
    ``abandoned`` (shard dropped from a partial result), or ``failed``
    (shard loss escalated to :class:`~repro.shard.errors.ShardFailedError`).
    """

    shard: int
    copy: int
    action: str
    error_type: str
    error: str
    fallback_copy: int | None = None
    repaired_pages: tuple[int, ...] = field(default=())

    def describe(self) -> str:
        detail = f"{self.error_type}: {self.error}"
        if self.action == "failover" and self.fallback_copy is not None:
            return (
                f"shard {self.shard} copy {self.copy} -> "
                f"copy {self.fallback_copy} ({detail})"
            )
        if self.action == "repaired" and self.repaired_pages:
            pages = ",".join(str(p) for p in self.repaired_pages)
            return (
                f"shard {self.shard} copy {self.copy} repaired "
                f"pages [{pages}] ({detail})"
            )
        return f"shard {self.shard} copy {self.copy} {self.action} ({detail})"


_shard_registry: ObserverRegistry[ShardDegradationEvent] = ObserverRegistry(
    "shard-observers"
)


def register_shard_observer(
    observer: Callable[[ShardDegradationEvent], None],
) -> None:
    """Subscribe ``observer`` to every shard degradation event."""

    _shard_registry.register(observer)


def unregister_shard_observer(
    observer: Callable[[ShardDegradationEvent], None],
) -> None:
    """Remove a previously registered shard observer."""

    _shard_registry.unregister(observer)


def _emit_degradations(events: tuple[ShardDegradationEvent, ...]) -> None:
    """Deliver ``events`` to registered observers (scan settle time)."""

    for event in events:
        _shard_registry.emit(event)
