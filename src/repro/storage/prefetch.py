"""Sweep-ahead prefetching: turn predicted page accesses into overlap.

The Tetris sweep (and the UB-Tree range query, and a heap scan) knows
which pages it will touch next *before* it needs them — the region
schedule is computed from index levels alone.  :class:`SweepPrefetcher`
consumes that projection (``TetrisScan.upcoming_regions``-style
lookahead, generically exposed through :class:`LookaheadCursor`) and
keeps a bounded number of async reads in flight through the buffer
pool's prefetch gate, so transfers overlap across the scheduler's device
queues instead of serializing behind the sweep.

It also installs :class:`SweepEvictionPolicy` on the pool for the
duration of the scan: plain LRU is actively wrong under prefetching —
an unclaimed prefetched page is, by construction, the *least* recently
touched frame once a few demand hits pass it by, so LRU evicts exactly
the pages the sweep is about to need ("ahead of the plane") while dozens
of already-consumed frames ("behind the plane") sit idle.  The sweep
policy prefers any consumed frame and only falls back to LRU when every
frame is still pending.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generic, Iterable, Iterator, TypeVar

from .buffer import BufferPool

__all__ = [
    "DualCursorPrefetcher",
    "LookaheadCursor",
    "SweepEvictionPolicy",
    "SweepPrefetcher",
]

ItemT = TypeVar("ItemT")


class LookaheadCursor(Generic[ItemT]):
    """An iterator with bounded :meth:`peek` lookahead.

    Wraps any iterator and buffers items pulled ahead of consumption, so
    a scan can ask "what are the next ``k`` items?" without disturbing
    its own iteration order.  Safe for the region generators because
    they perform no priced data-page I/O — pulling the schedule forward
    only moves (unpriced) index descents earlier.
    """

    def __init__(self, source: Iterator[ItemT]) -> None:
        self._source = source
        self._buffer: deque[ItemT] = deque()
        self._exhausted = False

    def __iter__(self) -> Iterator[ItemT]:
        return self

    def __next__(self) -> ItemT:
        if self._buffer:
            return self._buffer.popleft()
        if self._exhausted:
            raise StopIteration
        try:
            return next(self._source)
        except StopIteration:
            self._exhausted = True
            raise

    def peek(self, count: int) -> list[ItemT]:
        """The next ``count`` items (fewer near the end), not consumed."""
        while len(self._buffer) < count and not self._exhausted:
            try:
                self._buffer.append(next(self._source))
            except StopIteration:
                self._exhausted = True
        return list(self._buffer)[:count] if count > 0 else []


class SweepEvictionPolicy:
    """Evict-behind-the-plane: spare the pages the sweep still needs.

    A frame is *ahead of the plane* exactly when it is a pending
    (unclaimed) prefetched page; everything else — index pages, consumed
    region pages — is behind the plane and fair game.  Victims are taken
    in LRU order among the behind-the-plane frames, so without any
    pending prefetches the policy degenerates to plain LRU.
    """

    def choose_victim(self, pool: BufferPool) -> int | None:
        pending = pool.prefetch_pending
        if not pending:
            return None  # plain LRU
        for page_id in pool.iter_frames_lru():
            if page_id not in pending:
                return page_id
        return None  # every frame is ahead of the plane; LRU must decide


class SweepPrefetcher:
    """Keeps a bounded window of async reads in flight for one sweep.

    Create via :meth:`for_pool` (returns ``None`` when the pool has no
    scheduler or prefetching is disabled), feed it the projected next
    page ids with :meth:`top_up`, report consumption with
    :meth:`mark_consumed`, and always :meth:`close` it — leftover
    submissions are cancelled (accounted as wasted) and the pool's
    previous eviction policy is restored.
    """

    def __init__(
        self,
        pool: BufferPool,
        *,
        depth: int | None = None,
        category: str = "data",
        sequential: bool = False,
    ) -> None:
        scheduler = pool.scheduler
        if scheduler is None or scheduler.prefetch_depth <= 0:
            raise ValueError("pool has no scheduler with prefetching enabled")
        self.pool = pool
        # never let the prefetch window swallow the whole pool: the sweep
        # needs frames behind the plane for index pages and open slices
        limit = max(1, pool.capacity // 2)
        self.depth = min(depth or scheduler.prefetch_depth, limit)
        self.category = category
        self.sequential = sequential
        self._outstanding: set[int] = set()
        self._closed = False
        self._previous_policy = pool.eviction_policy
        if pool.eviction_policy is None:
            pool.eviction_policy = SweepEvictionPolicy()

    @classmethod
    def for_pool(
        cls,
        pool: BufferPool,
        *,
        depth: int | None = None,
        category: str = "data",
        sequential: bool = False,
    ) -> "SweepPrefetcher | None":
        """A prefetcher when the pool can prefetch, else ``None``."""
        scheduler = pool.scheduler
        if scheduler is None or scheduler.prefetch_depth <= 0:
            return None
        return cls(pool, depth=depth, category=category, sequential=sequential)

    @property
    def outstanding(self) -> frozenset[int]:
        return frozenset(self._outstanding)

    def top_up(self, upcoming: Iterable[int]) -> int:
        """Submit async reads for projected pages until the window is full.

        ``upcoming`` is the sweep's projection in retrieval order; pages
        already resident, in flight, or refused (quarantine, transient
        fault) are skipped.  Returns the number of reads issued.
        """
        if self._closed:
            return 0
        issued = 0
        pool = self.pool
        for page_id in upcoming:
            if len(self._outstanding) >= self.depth:
                break
            if page_id in self._outstanding:
                continue
            if pool.prefetch(
                page_id,
                sequential=self.sequential,
                category=self.category,
            ):
                self._outstanding.add(page_id)
                issued += 1
        return issued

    def mark_consumed(self, page_id: int) -> None:
        """The sweep plane passed this page; its window slot frees up."""
        self._outstanding.discard(page_id)

    def retain(self, upcoming: Iterable[int]) -> int:
        """Reconcile the window against the sweep's current projection.

        An externally driven sweep (a join leg under
        :class:`DualCursorPrefetcher`) consumes pages through demand
        reads that claim the in-flight submission directly, without
        calling :meth:`mark_consumed`; dropping outstanding pages no
        longer projected frees those window slots.  Nothing is
        cancelled — a submission the sweep has not reached yet is still
        in its projection and therefore kept.  Returns the number of
        slots freed.
        """
        if self._closed:
            return 0
        keep = set(upcoming)
        freed = len(self._outstanding - keep)
        self._outstanding &= keep
        return freed

    def close(self) -> None:
        """Cancel leftover submissions and restore the eviction policy."""
        if self._closed:
            return
        self._closed = True
        for page_id in list(self._outstanding):
            self.pool.cancel_prefetch(page_id)
        self._outstanding.clear()
        if isinstance(self.pool.eviction_policy, SweepEvictionPolicy):
            self.pool.eviction_policy = self._previous_policy


class DualCursorPrefetcher:
    """Join-aware read-ahead across the two inputs of a merge join.

    A pipelined merge join alternates between its sorted inputs, so
    neither side's solo :class:`SweepPrefetcher` sees enough consecutive
    demand to keep the device queues busy — the sweeps stall each other.
    This policy drives one window per side from the *join's* cursor
    instead: :meth:`advise` is called with the side the merge is about
    to pull from and tops *every* side's window — the demanded side
    first, so its transfers win the device-queue slots, while the other
    side's next group stays in flight for when the cursor swings back.
    With pages striped across devices the elapsed time of the join
    approaches ``max`` of the two sweeps instead of their sum.

    Sides are duck-typed: anything exposing ``.ubtree`` (with
    ``.tree.buffer`` and ``.category``), ``.upcoming_regions(count)``,
    and an ``.external_prefetch`` attribute — i.e. ``TetrisScan``.
    Each side's ``external_prefetch`` is set to its *shared* window: the
    sweep drives per-region top-ups through it while it is the one being
    drained (a scan can read many regions between two emitted rows, when
    the join's cursor cannot advise), the join's cursor refreshes the
    idle side, and ownership — closing, cancelling leftovers — stays
    here.
    """

    def __init__(
        self, sides: "list[tuple[Any, SweepPrefetcher]]"
    ) -> None:
        if len(sides) < 2:
            raise ValueError("dual-cursor policy needs at least two sides")
        self._sides = sides
        self._closed = False
        for scan, prefetcher in sides:
            scan.external_prefetch = prefetcher

    @classmethod
    def for_scans(
        cls, *scans: Any, depth: int | None = None
    ) -> "DualCursorPrefetcher | None":
        """A dual policy when every side's pool can prefetch, else ``None``."""
        sides: "list[tuple[Any, SweepPrefetcher]]" = []
        for scan in scans:
            prefetcher = (
                None
                if scan is None
                else SweepPrefetcher.for_pool(
                    scan.ubtree.tree.buffer,
                    depth=depth,
                    category=scan.ubtree.category,
                )
            )
            if prefetcher is None:
                for _, opened in sides:
                    opened.close()
                return None
            sides.append((scan, prefetcher))
        if len(sides) < 2:
            for _, opened in sides:
                opened.close()
            return None
        return cls(sides)

    @classmethod
    def for_operators(
        cls, *operators: Any, depth: int | None = None
    ) -> "DualCursorPrefetcher | None":
        """Adapt operators exposing a ``.scan`` (``TetrisOperator``)."""
        scans = [getattr(operator, "scan", None) for operator in operators]
        if any(scan is None for scan in scans):
            return None
        return cls.for_scans(*scans, depth=depth)

    def backlog(self) -> float:
        """Banked overlap across the distinct schedulers under the sides."""
        seen: "dict[int, float]" = {}
        for scan, prefetcher in self._sides:
            scheduler = prefetcher.pool.scheduler
            if scheduler is not None:
                seen[id(scheduler)] = scheduler.queue_backlog()
        return sum(seen.values())

    def advise(self, index: int) -> None:
        """The merge cursor is about to pull from side ``index``.

        Every side's window is reconciled against its projection
        (demand reads claim submissions without ``mark_consumed``) and
        topped to full depth — the demanded side first, so when windows
        compete for queue slots the side about to be read wins.
        """
        if self._closed:
            return
        order = [index] + [
            side for side in range(len(self._sides)) if side != index
        ]
        for side_index in order:
            scan, prefetcher = self._sides[side_index]
            upcoming = [
                region.page_id
                for region in scan.upcoming_regions(prefetcher.depth)
            ]
            prefetcher.retain(upcoming)
            prefetcher.top_up(upcoming)

    def close(self) -> None:
        """Close both windows and hand the scans their solo policy back."""
        if self._closed:
            return
        self._closed = True
        for scan, prefetcher in self._sides:
            prefetcher.close()
            scan.external_prefetch = False
