"""Sweep-ahead prefetching: turn predicted page accesses into overlap.

The Tetris sweep (and the UB-Tree range query, and a heap scan) knows
which pages it will touch next *before* it needs them — the region
schedule is computed from index levels alone.  :class:`SweepPrefetcher`
consumes that projection (``TetrisScan.upcoming_regions``-style
lookahead, generically exposed through :class:`LookaheadCursor`) and
keeps a bounded number of async reads in flight through the buffer
pool's prefetch gate, so transfers overlap across the scheduler's device
queues instead of serializing behind the sweep.

It also installs :class:`SweepEvictionPolicy` on the pool for the
duration of the scan: plain LRU is actively wrong under prefetching —
an unclaimed prefetched page is, by construction, the *least* recently
touched frame once a few demand hits pass it by, so LRU evicts exactly
the pages the sweep is about to need ("ahead of the plane") while dozens
of already-consumed frames ("behind the plane") sit idle.  The sweep
policy prefers any consumed frame and only falls back to LRU when every
frame is still pending.
"""

from __future__ import annotations

from collections import deque
from typing import Generic, Iterable, Iterator, TypeVar

from .buffer import BufferPool

__all__ = [
    "LookaheadCursor",
    "SweepEvictionPolicy",
    "SweepPrefetcher",
]

ItemT = TypeVar("ItemT")


class LookaheadCursor(Generic[ItemT]):
    """An iterator with bounded :meth:`peek` lookahead.

    Wraps any iterator and buffers items pulled ahead of consumption, so
    a scan can ask "what are the next ``k`` items?" without disturbing
    its own iteration order.  Safe for the region generators because
    they perform no priced data-page I/O — pulling the schedule forward
    only moves (unpriced) index descents earlier.
    """

    def __init__(self, source: Iterator[ItemT]) -> None:
        self._source = source
        self._buffer: deque[ItemT] = deque()
        self._exhausted = False

    def __iter__(self) -> Iterator[ItemT]:
        return self

    def __next__(self) -> ItemT:
        if self._buffer:
            return self._buffer.popleft()
        if self._exhausted:
            raise StopIteration
        try:
            return next(self._source)
        except StopIteration:
            self._exhausted = True
            raise

    def peek(self, count: int) -> list[ItemT]:
        """The next ``count`` items (fewer near the end), not consumed."""
        while len(self._buffer) < count and not self._exhausted:
            try:
                self._buffer.append(next(self._source))
            except StopIteration:
                self._exhausted = True
        return list(self._buffer)[:count] if count > 0 else []


class SweepEvictionPolicy:
    """Evict-behind-the-plane: spare the pages the sweep still needs.

    A frame is *ahead of the plane* exactly when it is a pending
    (unclaimed) prefetched page; everything else — index pages, consumed
    region pages — is behind the plane and fair game.  Victims are taken
    in LRU order among the behind-the-plane frames, so without any
    pending prefetches the policy degenerates to plain LRU.
    """

    def choose_victim(self, pool: BufferPool) -> int | None:
        pending = pool.prefetch_pending
        if not pending:
            return None  # plain LRU
        for page_id in pool.iter_frames_lru():
            if page_id not in pending:
                return page_id
        return None  # every frame is ahead of the plane; LRU must decide


class SweepPrefetcher:
    """Keeps a bounded window of async reads in flight for one sweep.

    Create via :meth:`for_pool` (returns ``None`` when the pool has no
    scheduler or prefetching is disabled), feed it the projected next
    page ids with :meth:`top_up`, report consumption with
    :meth:`mark_consumed`, and always :meth:`close` it — leftover
    submissions are cancelled (accounted as wasted) and the pool's
    previous eviction policy is restored.
    """

    def __init__(
        self,
        pool: BufferPool,
        *,
        depth: int | None = None,
        category: str = "data",
        sequential: bool = False,
    ) -> None:
        scheduler = pool.scheduler
        if scheduler is None or scheduler.prefetch_depth <= 0:
            raise ValueError("pool has no scheduler with prefetching enabled")
        self.pool = pool
        # never let the prefetch window swallow the whole pool: the sweep
        # needs frames behind the plane for index pages and open slices
        limit = max(1, pool.capacity // 2)
        self.depth = min(depth or scheduler.prefetch_depth, limit)
        self.category = category
        self.sequential = sequential
        self._outstanding: set[int] = set()
        self._closed = False
        self._previous_policy = pool.eviction_policy
        if pool.eviction_policy is None:
            pool.eviction_policy = SweepEvictionPolicy()

    @classmethod
    def for_pool(
        cls,
        pool: BufferPool,
        *,
        depth: int | None = None,
        category: str = "data",
        sequential: bool = False,
    ) -> "SweepPrefetcher | None":
        """A prefetcher when the pool can prefetch, else ``None``."""
        scheduler = pool.scheduler
        if scheduler is None or scheduler.prefetch_depth <= 0:
            return None
        return cls(pool, depth=depth, category=category, sequential=sequential)

    @property
    def outstanding(self) -> frozenset[int]:
        return frozenset(self._outstanding)

    def top_up(self, upcoming: Iterable[int]) -> int:
        """Submit async reads for projected pages until the window is full.

        ``upcoming`` is the sweep's projection in retrieval order; pages
        already resident, in flight, or refused (quarantine, transient
        fault) are skipped.  Returns the number of reads issued.
        """
        if self._closed:
            return 0
        issued = 0
        pool = self.pool
        for page_id in upcoming:
            if len(self._outstanding) >= self.depth:
                break
            if page_id in self._outstanding:
                continue
            if pool.prefetch(
                page_id,
                sequential=self.sequential,
                category=self.category,
            ):
                self._outstanding.add(page_id)
                issued += 1
        return issued

    def mark_consumed(self, page_id: int) -> None:
        """The sweep plane passed this page; its window slot frees up."""
        self._outstanding.discard(page_id)

    def close(self) -> None:
        """Cancel leftover submissions and restore the eviction policy."""
        if self._closed:
            return
        self._closed = True
        for page_id in list(self._outstanding):
            self.pool.cancel_prefetch(page_id)
        self._outstanding.clear()
        if isinstance(self.pool.eviction_policy, SweepEvictionPolicy):
            self.pool.eviction_policy = self._previous_policy
