"""Deterministic fault injection for the simulated disk.

A :class:`FaultPlan` decides, purely as a function of ``(seed, page_id,
access_count)``, whether a given page access suffers a fault — a
transient read error, a corrupted-page bit flip, a torn write or a
latency spike.  Because the decision depends on nothing else (no global
RNG state, no wall clock), every chaos run replays *exactly* from its
seed: same faults on the same accesses in the same order.

:class:`FaultyDisk` wraps a :class:`~repro.storage.disk.SimulatedDisk`
and is interface-compatible with it — every data structure in the
engine (buffer pool, heap files, B+-trees, UB-Trees) runs unmodified on
top.  While a wrapper is *disarmed* (the default, and always during data
loading) or its plan is empty, every call is a pure delegation: fault
injection is compiled out of the hot path and benchmarks see no
overhead.

Fault semantics
---------------
``transient``
    The read raises :class:`~repro.storage.errors.TransientIOError`
    before touching the platter; a priced attempt still charges one
    random access of simulated time (the arm moved, the sector never
    answered).  Retried by the engine's retry policy.

``corrupt``
    The read succeeds but the page's content has rotted: one record is
    deterministically replaced with a bit-rot marker.  The true content
    is checksummed *before* the flip, so the engine's integrity check
    (:func:`~repro.storage.errors.ensure_page_integrity`) detects the
    mismatch — silent garbage cannot reach a query result.

``torn``
    The write is acknowledged but only a prefix of the records hits the
    disk; the checksum sealed at write time covers the full content, so
    the next read detects the tear.

``latency``
    The read succeeds but costs ``latency_seconds`` extra simulated
    time.  Harmless to correctness; stresses time-based assertions.
"""

from __future__ import annotations

import weakref
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from .disk import DiskParameters, SimulatedDisk
from .errors import TransientIOError
from .page import Page

__all__ = [
    "CORRUPT",
    "FaultPlan",
    "FaultyDisk",
    "LATENCY",
    "TORN",
    "TRANSIENT",
    "armed_disk_count",
]

#: fault kind tags (plain strings so schedules serialize trivially)
TRANSIENT = "transient"
CORRUPT = "corrupt"
TORN = "torn"
LATENCY = "latency"

_READ_KINDS = (TRANSIENT, CORRUPT, LATENCY)
_WRITE_KINDS = (TORN,)

_MASK64 = (1 << 64) - 1
_READ_SALT = 0x9E3779B97F4A7C15
_WRITE_SALT = 0xC2B2AE3D27D4EB4F
_FLIP_SALT = 0x165667B19E3779F9


def _mix(*parts: int) -> int:
    """SplitMix64-style avalanche over the given integers.

    Deterministic across processes and Python versions (no reliance on
    the salted builtin ``hash``), well distributed even for the small
    consecutive integers that page ids and access counts are.
    """
    state = 0x243F6A8885A308D3
    for part in parts:
        state = (state + (part & _MASK64) + _MASK64 + 1) & _MASK64
        state = (state + 0x9E3779B97F4A7C15) & _MASK64
        z = state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        state = z ^ (z >> 31)
    return state


@dataclass(frozen=True)
class FaultPlan:
    """A replayable schedule of storage faults.

    Rate-based faults fire when the deterministic uniform draw for
    ``(seed, page_id, access_count)`` falls under the configured rates;
    ``scripted_reads`` / ``scripted_writes`` pin exact faults to exact
    accesses (``(page_id, access_count, kind)`` triples) and take
    precedence over the rates — the chaos tests use them to stage
    precise failure scenarios.
    """

    seed: int = 0
    transient_rate: float = 0.0
    corrupt_rate: float = 0.0
    torn_write_rate: float = 0.0
    latency_rate: float = 0.0
    latency_seconds: float = 0.040
    scripted_reads: tuple[tuple[int, int, str], ...] = ()
    scripted_writes: tuple[tuple[int, int, str], ...] = ()

    def __post_init__(self) -> None:
        for name in ("transient_rate", "corrupt_rate", "torn_write_rate", "latency_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.transient_rate + self.corrupt_rate + self.latency_rate > 1.0:
            raise ValueError("read fault rates must sum to at most 1")
        if self.latency_seconds < 0:
            raise ValueError("latency_seconds must be >= 0")
        for triple in self.scripted_reads:
            if triple[2] not in _READ_KINDS:
                raise ValueError(f"unknown scripted read fault kind {triple[2]!r}")
        for triple in self.scripted_writes:
            if triple[2] not in _WRITE_KINDS:
                raise ValueError(f"unknown scripted write fault kind {triple[2]!r}")

    @property
    def is_empty(self) -> bool:
        """True when this plan can never inject a fault."""
        return (
            self.transient_rate == 0.0
            and self.corrupt_rate == 0.0
            and self.torn_write_rate == 0.0
            and self.latency_rate == 0.0
            and not self.scripted_reads
            and not self.scripted_writes
        )

    def _uniform(self, salt: int, page_id: int, access: int) -> float:
        return _mix(self.seed, salt, page_id, access) / 2.0**64

    def read_fault(self, page_id: int, access: int) -> str | None:
        """Fault kind for read number ``access`` of ``page_id``, if any."""
        for scripted_page, scripted_access, kind in self.scripted_reads:
            if scripted_page == page_id and scripted_access == access:
                return kind
        draw = self._uniform(_READ_SALT, page_id, access)
        if draw < self.transient_rate:
            return TRANSIENT
        if draw < self.transient_rate + self.corrupt_rate:
            return CORRUPT
        if draw < self.transient_rate + self.corrupt_rate + self.latency_rate:
            return LATENCY
        return None

    def write_fault(self, page_id: int, access: int) -> str | None:
        """Fault kind for write number ``access`` of ``page_id``, if any."""
        for scripted_page, scripted_access, kind in self.scripted_writes:
            if scripted_page == page_id and scripted_access == access:
                return kind
        if self._uniform(_WRITE_SALT, page_id, access) < self.torn_write_rate:
            return TORN
        return None


#: armed FaultyDisk instances, so the benchmark guard can refuse to time
#: a process with live fault injection (mirrors the REPRO_CHECKS guard)
_ARMED: "weakref.WeakSet[FaultyDisk]" = weakref.WeakSet()


def armed_disk_count() -> int:
    """Number of currently armed :class:`FaultyDisk` instances."""
    return len(_ARMED)


class FaultyDisk(SimulatedDisk):
    """A :class:`SimulatedDisk` wrapper that injects plan-scheduled faults.

    Interface-compatible with the wrapped disk — it *is* a
    ``SimulatedDisk`` to every consumer's type signature, but all
    allocation, clock, statistics and I/O state live in ``inner``
    (``params`` and ``stats`` are the inner disk's own objects, so the
    cost model and accounting are shared, not mirrored).  Faults fire
    only while the wrapper is :meth:`armed <arm>` *and* the plan is
    non-empty; otherwise ``read``/``write`` delegate directly, so an
    idle wrapper is observationally identical to the bare disk (the
    fault-free parity tests assert bit-identical streams, stats and
    page-access order).

    Access counts tick only while armed, so a run's fault schedule is a
    pure function of the work done *after* :meth:`arm` — loading the
    dataset first and arming afterwards replays identically every time.
    """

    def __init__(
        self,
        inner: SimulatedDisk | None = None,
        plan: FaultPlan | None = None,
        *,
        params: DiskParameters | None = None,
    ) -> None:
        # deliberately no super().__init__(): all disk state lives in
        # ``inner``; sharing its params/stats objects keeps inherited
        # clock/snapshot methods correct without mirroring anything
        self.inner = inner if inner is not None else SimulatedDisk(params)
        self.params = self.inner.params
        self.stats = self.inner.stats
        self.plan = plan if plan is not None else FaultPlan()
        self.armed = False
        self._read_counts: dict[int, int] = {}
        self._write_counts: dict[int, int] = {}
        #: replay log: (op, kind, page_id, access) per injected fault
        self.fault_log: list[tuple[str, str, int, int]] = []

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------
    def arm(self) -> None:
        """Start injecting faults (call after the dataset is loaded)."""
        self.armed = True
        _ARMED.add(self)

    def disarm(self) -> None:
        """Stop injecting faults; delegation becomes pure again."""
        self.armed = False
        _ARMED.discard(self)

    @contextmanager
    def injecting(self) -> Iterator["FaultyDisk"]:
        """``with disk.injecting():`` — arm for the duration of a block."""
        self.arm()
        try:
            yield self
        finally:
            self.disarm()

    # ------------------------------------------------------------------
    # delegation (state lives in ``inner``; clock/snapshot are inherited
    # and correct because params/stats are the inner disk's objects)
    # ------------------------------------------------------------------
    @property
    def wal(self):  # type: ignore[override]
        """WAL registration proxies to the wrapped disk (shared stack)."""
        return self.inner.wal

    @wal.setter
    def wal(self, value) -> None:
        self.inner.wal = value

    @property
    def allocated_pages(self) -> int:
        return self.inner.allocated_pages

    def allocate(self, capacity: int) -> Page:
        return self.inner.allocate(capacity)

    def allocate_extent(self, count: int, capacity: int) -> list[Page]:
        return self.inner.allocate_extent(count, capacity)

    def free(self, page_id: int) -> None:
        self.inner.free(page_id)

    def page_exists(self, page_id: int) -> bool:
        return self.inner.page_exists(page_id)

    def peek(self, page_id: int) -> Page:
        """Unaccounted access — never faulted (test/setup use only)."""
        return self.inner.peek(page_id)

    def iter_pages(self) -> Iterator[Page]:
        return self.inner.iter_pages()

    def repair_page(self, page_id: int) -> bool:
        """Repair delegates past the fault layer (repairs are not faulted)."""
        return self.inner.repair_page(page_id)

    # ------------------------------------------------------------------
    # faulted I/O
    # ------------------------------------------------------------------
    def read(
        self,
        page_id: int,
        *,
        sequential: bool = False,
        category: str = "data",
        charge: bool = True,
    ) -> Page:
        if not self.armed or self.plan.is_empty:
            return self.inner.read(
                page_id, sequential=sequential, category=category, charge=charge
            )
        access = self._read_counts.get(page_id, 0)
        self._read_counts[page_id] = access + 1
        kind = self.plan.read_fault(page_id, access)
        if kind == TRANSIENT:
            self.fault_log.append(("read", TRANSIENT, page_id, access))
            self.inner.stats.faults.transient_errors += 1
            if charge:
                # the arm moved and the sector never answered: the failed
                # attempt still costs one random access of simulated time
                self.inner.advance_clock(self.params.t_pi + self.params.t_tau)
            raise TransientIOError(
                f"transient read error on page {page_id} (access #{access})"
            )
        page = self.inner.read(
            page_id, sequential=sequential, category=category, charge=charge
        )
        if kind == LATENCY:
            self.fault_log.append(("read", LATENCY, page_id, access))
            self.inner.stats.faults.latency_spikes += 1
            self.inner.stats.faults.latency_delay += self.plan.latency_seconds
            self.inner.advance_clock(self.plan.latency_seconds)
        elif kind == CORRUPT and page.records:
            self.fault_log.append(("read", CORRUPT, page_id, access))
            self._corrupt(page, access)
            self.inner.stats.faults.corrupt_reads += 1
        return page

    def write(
        self,
        page: Page,
        *,
        sequential: bool = False,
        category: str = "data",
    ) -> None:
        if not self.armed or self.plan.is_empty:
            return self.inner.write(page, sequential=sequential, category=category)
        access = self._write_counts.get(page.page_id, 0)
        self._write_counts[page.page_id] = access + 1
        kind = self.plan.write_fault(page.page_id, access)
        self.inner.write(page, sequential=sequential, category=category)
        if kind == TORN and page.records:
            self.fault_log.append(("write", TORN, page.page_id, access))
            # the checksum sealed here covers the *intended* content;
            # the tear below is what actually "reached the platter"
            page.seal_checksum()
            keep = len(page.records) // 2
            del page.records[keep:]
            page.version += 1
            self.inner.stats.faults.torn_writes += 1

    def _corrupt(self, page: Page, access: int) -> None:
        """Deterministically rot one record of ``page`` (bit-flip model).

        The true content is sealed into the checksum first (if no seal
        exists yet), so the engine's read-side integrity check catches
        the mismatch — this models on-platter rot under a page that was
        written with a valid checksum.
        """
        if page.stored_checksum is None:
            page.seal_checksum()
        index = _mix(self.plan.seed, _FLIP_SALT, page.page_id, access) % len(
            page.records
        )
        page.records[index] = ("__bitrot__", page.page_id, access)
        page.version += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "armed" if self.armed else "disarmed"
        return f"<FaultyDisk {state} seed={self.plan.seed} over {self.inner!r}>"
