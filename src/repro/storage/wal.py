"""A simulated-clock write-ahead log with redo-on-open recovery.

PR 3 made the *read* path fail-safe; this module does the same for the
write path.  A :class:`WriteAheadLog` journals page mutations of one
:class:`~repro.storage.disk.SimulatedDisk` onto a separate log device
(its own ``SimulatedDisk``, so log forces are priced with the same
Section 4.1 cost model and mirrored onto the data disk's clock — the
engine *waits* for the log).  Batched mutations then follow the
classical write-ahead protocol:

* ``begin`` opens a batch (one load, one insert);
* ``log_alloc`` journals every page allocation so rollback can free it;
* ``touch`` journals a page's *before*-image (undo) the first time a
  batch mutates a pre-existing page;
* ``log_image`` journals a page's *after*-image (redo) before the data
  write that makes it durable — write-ahead ordering, so a torn data
  write can always be replayed from the log;
* ``log_free`` defers a free to commit time (rollback must be able to
  resurrect the page);
* ``commit`` / ``abort`` close the batch.

Two-phase participation: ``prepare(gid)`` closes the active batch into
the *in-doubt* state instead — the before-images are held, a ``prepare``
record carrying the global transaction id is forced, and the batch waits
for the coordinator's verdict (``commit_prepared`` / ``abort_prepared``).
:meth:`recover` resolves in-doubt batches through the ``decide``
callback (the coordinator's decision log) and **presumes abort** for any
gid without a durably logged commit decision — safe, because the
coordinator only acknowledges a commit after its decision record is
durable.

:meth:`recover` is redo-on-open: it rolls interrupted batches back from
the logged undo records and allocations, resolves in-doubt prepared
batches, then replays the last committed after-image of every page whose
on-disk content no longer matches — healing torn writes (and any other
record-level rot) to the exact committed state.  Running it twice is a
no-op.  Every pass emits exactly one structured :class:`RecoveryEvent`
through the unified telemetry registry.

The log is *simulated-durable* even on a faulted log device: passing a
``fault_plan`` wraps the device in a
:class:`~repro.storage.faults.FaultyDisk`, and the *verified force*
(:meth:`AppendOnlyLog._force_tail`) detects torn log appends against the
intended content and re-forces until the page is intact — modelling a
real log manager's write-verify-rewrite discipline.  The deterministic
crash hook (:meth:`crash_after_appends`) proves that rollback needs
nothing beyond the log.  ``REPRO_CHECKS=1`` re-validates the log's
structural contract (:func:`repro.invariants.validate_wal`) after every
batch boundary.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from .. import invariants
from ..telemetry import ObserverRegistry, TelemetryEvent
from .disk import DiskParameters, SimulatedDisk
from .errors import LogDeviceError, SimulatedCrashError, TransientIOError
from .faults import CORRUPT, FaultPlan, FaultyDisk
from .page import Page
from .retry import DEFAULT_RETRY_POLICY, RetryPolicy

__all__ = [
    "AppendOnlyLog",
    "RecoveryEvent",
    "RecoveryReport",
    "WALRecord",
    "WriteAheadLog",
    "active_wal",
    "register_recovery_observer",
    "unregister_recovery_observer",
]

#: record kinds, in the order a batch emits them.  ``prepare`` replaces
#: the close for a two-phase participant batch: the transaction is then
#: *in-doubt* until a later ``commit``/``abort`` resolves it.
BEGIN = "begin"
ALLOC = "alloc"
UNDO = "undo"
IMAGE = "image"
FREE = "free"
PREPARE = "prepare"
COMMIT = "commit"
ABORT = "abort"

#: bounded attempts of the verified log force; the fault plan re-draws
#: per write attempt, so repeated tears of one page decay geometrically
_MAX_FORCE_ATTEMPTS = 8


def active_wal(disk: SimulatedDisk) -> "WriteAheadLog | None":
    """The write-ahead log armed on ``disk``'s stack, or ``None``.

    Wrapper disks (:class:`~repro.storage.faults.FaultyDisk`,
    :class:`~repro.storage.replica.ReplicatedDisk`) proxy the ``wal``
    attribute to the base disk, so any layer of the stack answers.
    """
    return getattr(disk, "wal", None)


def _snapshot_payload(payload: Any) -> tuple:
    """A restorable copy of a page's structural payload.

    Knows the engine's two payload shapes — the leaf ``dict`` and the
    inner-node object with ``keys``/``children`` lists — and falls back
    to carrying anything else by reference.
    """
    if payload is None:
        return ("none",)
    if isinstance(payload, dict):
        return ("dict", dict(payload))
    if hasattr(payload, "keys") and hasattr(payload, "children"):
        return ("node", list(payload.keys), list(payload.children))
    return ("opaque", payload)


def _restore_payload(page: Page, snap: tuple) -> None:
    """Put a :func:`_snapshot_payload` copy back onto ``page`` in place.

    Container identity is preserved where possible: other pages hold
    references to the same leaf dict / inner-node object.
    """
    kind = snap[0]
    if kind == "none":
        page.payload = None
    elif kind == "dict":
        if isinstance(page.payload, dict):
            page.payload.clear()
            page.payload.update(snap[1])
        else:
            page.payload = dict(snap[1])
    elif kind == "node":
        node = page.payload
        if node is not None and hasattr(node, "keys"):
            node.keys = list(snap[1])
            node.children = list(snap[2])
    else:
        page.payload = snap[1]


@dataclass(frozen=True)
class WALRecord:
    """One journal entry.  ``records``/``payload``/``checksum`` are only
    populated for page-image kinds (``undo`` carries the before-image
    and the pre-batch checksum, ``image`` the after-image); ``label``
    carries the batch label on ``begin`` and the global transaction id
    on ``prepare``."""

    lsn: int
    txn: int
    kind: str
    page_id: int | None = None
    records: tuple | None = None
    payload: tuple | None = None
    checksum: int | None = None
    label: str | None = None


@dataclass(frozen=True)
class RecoveryReport:
    """What :meth:`WriteAheadLog.recover` did."""

    examined_pages: int
    healed_pages: int
    rolled_back_batches: int
    freed_pages: int
    log_records: int
    log_pages: int
    resolved_commits: int = 0
    resolved_aborts: int = 0
    wal_name: str = "wal"

    def describe(self) -> str:
        resolved = ""
        if self.resolved_commits or self.resolved_aborts:
            resolved = (
                f", in-doubt resolved {self.resolved_commits} commit / "
                f"{self.resolved_aborts} presumed-abort"
            )
        return (
            f"{self.wal_name} recovery: {self.healed_pages}/"
            f"{self.examined_pages} pages healed by redo, "
            f"{self.rolled_back_batches} batch(es) rolled back, "
            f"{self.freed_pages} page(s) freed{resolved}, "
            f"log={self.log_records} records on {self.log_pages} pages"
        )


@dataclass(frozen=True)
class RecoveryEvent(TelemetryEvent):
    """One completed recovery pass, emitted exactly once per pass.

    Recovery used to return its report and bypass the observer
    registry the rest of the engine standardized on; serving-layer
    metrics and the chaos harness now watch redo/rollback/in-doubt
    resolution the same way they watch shard degradations.
    """

    wal_name: str
    report: RecoveryReport

    def describe(self) -> str:
        return self.report.describe()


_recovery_registry: ObserverRegistry[RecoveryEvent] = ObserverRegistry(
    "recovery-observers"
)


def register_recovery_observer(
    observer: Callable[[RecoveryEvent], None],
) -> None:
    """Subscribe ``observer`` to every WAL recovery pass."""

    _recovery_registry.register(observer)


def unregister_recovery_observer(
    observer: Callable[[RecoveryEvent], None],
) -> None:
    """Remove a previously registered recovery observer."""

    _recovery_registry.unregister(observer)


class _Batch:
    """In-flight batch state (the durable truth is in the log records)."""

    __slots__ = ("txn_id", "label", "touched", "allocated", "frees")

    def __init__(self, txn_id: int, label: str) -> None:
        self.txn_id = txn_id
        self.label = label
        #: page_id -> (records, payload snapshot, stored_checksum) before-image
        self.touched: dict[int, tuple[tuple, tuple, int | None]] = {}
        self.allocated: list[int] = []
        self.frees: list[int] = []


class AppendOnlyLog:
    """Shared machinery of the engine's append-only simulated logs.

    Owns the dedicated log device, the in-memory record mirror, dense
    LSN assignment, the deterministic crash hook
    (:meth:`crash_after_appends`) and the *verified force*: every
    appended record is forced to the device, and a torn log page is
    detected against the intended content and re-forced (bounded
    attempts) — so an acknowledged append is durable even on a faulted
    log device.  :class:`WriteAheadLog` (per-disk page journaling) and
    the 2PC coordinator's decision log
    (:class:`repro.txn.log.DecisionLog`) both build on it; each log's
    ``name`` is its identity in crash-schedule enumeration, telemetry
    and recovery reports.
    """

    def __init__(
        self,
        params: DiskParameters | None = None,
        *,
        records_per_page: int = 64,
        name: str = "log",
        fault_plan: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        if records_per_page < 1:
            raise ValueError("records_per_page must be >= 1")
        self.name = name
        self.records_per_page = records_per_page
        self.retry_policy = (
            retry_policy if retry_policy is not None else DEFAULT_RETRY_POLICY
        )
        device: SimulatedDisk = SimulatedDisk(params)
        if fault_plan is not None:
            if fault_plan.corrupt_rate > 0 or any(
                kind == CORRUPT for _, _, kind in fault_plan.scripted_reads
            ):
                raise ValueError(
                    "log devices verify every force at write time, so "
                    "silent on-platter rot cannot be modelled on them — "
                    "use transient, torn or latency faults"
                )
            device = FaultyDisk(device, fault_plan)
        #: the log's own device: same cost model, separate address space
        self.device: SimulatedDisk = device
        #: in-memory mirror of the durable log, in LSN order
        self.records: list[WALRecord] = []
        self._log_pages: list[Page] = []
        self._next_lsn = 0
        self._crash_countdown: int | None = None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def append_count(self) -> int:
        """Append attempts so far (the crash grid's schedule index space)."""
        return self._next_lsn

    @property
    def log_page_count(self) -> int:
        return len(self._log_pages)

    # ------------------------------------------------------------------
    # fault administration (log-device fault plan, if any)
    # ------------------------------------------------------------------
    def arm_log_faults(self) -> None:
        """Start injecting the log device's fault plan, if one exists."""
        if isinstance(self.device, FaultyDisk):
            self.device.arm()

    def disarm_log_faults(self) -> None:
        """Stop log-device injection; forces become pure delegation."""
        if isinstance(self.device, FaultyDisk):
            self.device.disarm()

    # ------------------------------------------------------------------
    # the deterministic crash hook
    # ------------------------------------------------------------------
    def crash_after_appends(self, appends: int) -> None:
        """Raise :class:`SimulatedCrashError` on the ``appends``-th next
        append attempt (that record is *lost*), then disarm — so the
        in-process rollback can still write its ``abort`` record, exactly
        like a recovery pass over the reopened log would."""
        if appends < 1:
            raise ValueError("crash countdown must be >= 1")
        self._crash_countdown = appends

    # ------------------------------------------------------------------
    # the append path (every record is forced to the log device)
    # ------------------------------------------------------------------
    def _append_record(
        self,
        kind: str,
        txn: int,
        *,
        page_id: int | None = None,
        records: tuple | None = None,
        payload: tuple | None = None,
        checksum: int | None = None,
        label: str | None = None,
    ) -> tuple[WALRecord, float]:
        """Append one record and force it; returns (record, force time)."""
        if self._crash_countdown is not None:
            self._crash_countdown -= 1
            if self._crash_countdown <= 0:
                self._crash_countdown = None
                raise SimulatedCrashError(
                    f"simulated crash: {self.name} append #{self._next_lsn} "
                    f"({kind} for txn {txn}) never reached the log"
                )
        record = WALRecord(
            lsn=self._next_lsn,
            txn=txn,
            kind=kind,
            page_id=page_id,
            records=records,
            payload=payload,
            checksum=checksum,
            label=label,
        )
        self._next_lsn += 1
        if not self._log_pages or self._log_pages[-1].is_full:
            self._log_pages.append(self.device.allocate(self.records_per_page))
        tail = self._log_pages[-1]
        tail.add(record)
        before = self.device.stats.time
        self._force_tail(tail)
        delta = self.device.stats.time - before
        # the mirror is the log itself, not page content: no version field
        self.records.append(record)  # reprolint: allow(R003)
        return record, delta

    def _force_tail(self, tail: Page) -> None:
        """Force the tail log page, verifying the content that landed.

        A torn log force truncates the page in place; the verified force
        detects the divergence from the intended record list, restores
        the same record objects (mirror identity is preserved) and
        forces again — write-verify-rewrite, the reason an acknowledged
        append survives a faulted log device.
        """
        intended = list(tail.records)
        for _ in range(_MAX_FORCE_ATTEMPTS):
            self.device.write(tail, sequential=True, category="wal")
            if tail.records == intended:
                return
            tail.records = list(intended)
            tail.version += 1
            tail.stored_checksum = None
            self.device.stats.faults.wal_reforced += 1
        raise LogDeviceError(
            f"{self.name} log page {tail.page_id} failed to force intact "
            f"after {_MAX_FORCE_ATTEMPTS} attempts"
        )

    def _scan_device(self) -> None:
        """One sequential, priced scan of the log device (recovery read).

        Transient read faults on a faulted log device are retried on the
        policy's backoff schedule, charged to the device clock.
        """
        for log_page in self._log_pages:
            delays = self.retry_policy.delays()
            while True:
                try:
                    self.device.read(
                        log_page.page_id, sequential=True, category="wal"
                    )
                except TransientIOError:
                    delay = next(delays, None)
                    if delay is None:
                        raise
                    faults = self.device.stats.faults
                    faults.retries += 1
                    faults.retry_delay += delay
                    self.device.advance_clock(delay)
                    continue
                break


class WriteAheadLog(AppendOnlyLog):
    """Journal of page mutations for one simulated disk.

    Constructing the log *arms* it: it registers itself as ``disk.wal``,
    and WAL-aware engine code (:func:`active_wal`) starts journaling its
    mutations.  ``records_per_page`` sizes the log device's pages — log
    records are small, so many fit one page and sequential forces are
    cheap (mostly ``t_tau``).  ``name`` is the log's identity in
    recovery telemetry and crash-schedule enumeration; ``fault_plan``
    puts the *log device itself* under fault injection (armed together
    with the data disk by :meth:`repro.relational.table.Database
    .arm_faults`).
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        *,
        records_per_page: int = 64,
        name: str = "wal",
        fault_plan: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        if active_wal(disk) is not None:
            raise RuntimeError("disk already has an armed write-ahead log")
        super().__init__(
            disk.params,
            records_per_page=records_per_page,
            name=name,
            fault_plan=fault_plan,
            retry_policy=retry_policy,
        )
        self.disk = disk
        self._next_txn = 0
        self._active: _Batch | None = None
        #: gid -> in-doubt batch, held between ``prepare`` and the verdict
        self._prepared: dict[str, _Batch] = {}
        disk.wal = self

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def in_batch(self) -> bool:
        return self._active is not None

    @property
    def prepared_gids(self) -> tuple[str, ...]:
        """Global transaction ids of batches currently held in-doubt."""
        return tuple(self._prepared)

    def detach(self) -> None:
        """Unregister from the disk; engine code stops journaling."""
        if getattr(self.disk, "wal", None) is self:
            self.disk.wal = None

    # ------------------------------------------------------------------
    # the append path (force time is mirrored onto the data disk clock)
    # ------------------------------------------------------------------
    def _append(
        self,
        kind: str,
        txn: int,
        *,
        page_id: int | None = None,
        records: tuple | None = None,
        payload: tuple | None = None,
        checksum: int | None = None,
        label: str | None = None,
    ) -> WALRecord:
        record, delta = self._append_record(
            kind,
            txn,
            page_id=page_id,
            records=records,
            payload=payload,
            checksum=checksum,
            label=label,
        )
        # the engine waits for the force, so the device time is mirrored
        # onto the data disk's clock
        self.disk.advance_clock(delta)
        faults = self.disk.stats.faults
        faults.wal_appends += 1
        faults.wal_delay += delta
        return record

    # ------------------------------------------------------------------
    # batch lifecycle
    # ------------------------------------------------------------------
    def begin(self, label: str = "batch") -> int:
        """Open a batch; returns its transaction id."""
        if self._active is not None:
            raise RuntimeError(
                f"a WAL batch is already active ({self._active.label!r})"
            )
        if self._prepared:
            gids = ", ".join(sorted(self._prepared))
            raise RuntimeError(
                f"in-doubt prepared batch(es) [{gids}] must be decided "
                "before a new batch begins (prepared state holds its locks)"
            )
        txn_id = self._next_txn
        self._append(BEGIN, txn_id, label=label)
        self._next_txn = txn_id + 1
        self._active = _Batch(txn_id, label)
        return txn_id

    def commit(self) -> None:
        """Close the batch successfully and apply its deferred frees."""
        batch = self._require_batch()
        self._append(COMMIT, batch.txn_id)
        self._active = None
        for page_id in batch.frees:
            self.disk.free(page_id)
        self._validate()

    def abort(self) -> None:
        """Roll the batch back: restore before-images, free allocations."""
        batch = self._require_batch()
        self._active = None
        self._rollback_batch(batch)
        self._append(ABORT, batch.txn_id)
        self.disk.stats.faults.wal_rollbacks += 1
        self._validate()

    # ------------------------------------------------------------------
    # two-phase participation (the coordinator lives in repro.txn)
    # ------------------------------------------------------------------
    def prepare(self, gid: str) -> int:
        """Close the active batch into the *in-doubt* prepared state.

        The batch's before-images are held and its pages stay locked
        (a new ``begin`` is refused) until the coordinator's verdict
        arrives via :meth:`commit_prepared` / :meth:`abort_prepared`, or
        :meth:`recover` resolves it from the decision log.  The forced
        ``prepare`` record carries ``gid`` so a post-crash recovery can
        match the in-doubt batch to the coordinator's decision.
        """
        batch = self._require_batch()
        if gid in self._prepared:
            raise RuntimeError(f"a prepared batch already holds gid {gid!r}")
        self._append(PREPARE, batch.txn_id, label=gid)
        self._active = None
        self._prepared[gid] = batch
        self._validate()
        return batch.txn_id

    def commit_prepared(self, gid: str) -> None:
        """Apply the coordinator's commit verdict to a prepared batch."""
        batch = self._prepared.get(gid)
        if batch is None:
            raise RuntimeError(f"no prepared batch for gid {gid!r}")
        self._append(COMMIT, batch.txn_id)
        del self._prepared[gid]
        for page_id in batch.frees:
            self.disk.free(page_id)
        self._validate()

    def abort_prepared(self, gid: str) -> None:
        """Apply the coordinator's abort verdict: roll the batch back."""
        batch = self._prepared.get(gid)
        if batch is None:
            raise RuntimeError(f"no prepared batch for gid {gid!r}")
        del self._prepared[gid]
        self._rollback_batch(batch)
        self._append(ABORT, batch.txn_id)
        self.disk.stats.faults.wal_rollbacks += 1
        self._validate()

    @contextmanager
    def batch(self, label: str = "batch") -> Iterator[int]:
        """``with wal.batch("load"):`` — begin/commit with abort on error.

        Re-entrant: a nested ``batch`` joins the enclosing one (the
        outermost context owns commit/abort), so a bulk load that calls
        journaled inserts forms a single atomic batch.
        """
        if self._active is not None:
            yield self._active.txn_id
            return
        txn_id = self.begin(label)
        try:
            yield txn_id
        except BaseException:
            self.abort()
            raise
        else:
            self.commit()

    def _require_batch(self) -> _Batch:
        if self._active is None:
            raise RuntimeError("no active WAL batch")
        return self._active

    def _rollback_batch(self, batch: _Batch) -> None:
        """Restore a batch's before-images and free its allocations."""
        allocated = set(batch.allocated)
        for page_id, (records, payload, checksum) in batch.touched.items():
            if page_id in allocated or not self.disk.page_exists(page_id):
                continue
            page = self.disk.peek(page_id)
            page.records = list(records)
            page.version += 1
            _restore_payload(page, payload)
            page.stored_checksum = checksum
        for page_id in batch.allocated:
            self.disk.free(page_id)

    # ------------------------------------------------------------------
    # journaling primitives (engine code calls these inside a batch)
    # ------------------------------------------------------------------
    def log_alloc(self, page: Page) -> None:
        """Journal a page allocation so rollback can free it.

        Outside a batch this is a no-op: unbatched allocations (e.g. an
        empty tree's root, created at table definition time) are not
        covered by the log.
        """
        batch = self._active
        if batch is None:
            return
        batch.allocated.append(page.page_id)
        self._append(ALLOC, batch.txn_id, page_id=page.page_id)

    def touch(self, page: Page) -> None:
        """Journal ``page``'s before-image on its first mutation this batch.

        No-op outside a batch, for pages already touched, and for pages
        this batch allocated (rollback frees those instead).
        """
        batch = self._active
        if batch is None:
            return
        if page.page_id in batch.touched or page.page_id in batch.allocated:
            return
        before = (
            tuple(page.records),
            _snapshot_payload(page.payload),
            page.stored_checksum,
        )
        batch.touched[page.page_id] = before
        self._append(
            UNDO,
            batch.txn_id,
            page_id=page.page_id,
            records=before[0],
            payload=before[1],
            checksum=before[2],
        )

    def log_image(self, page: Page) -> None:
        """Journal ``page``'s after-image (redo record).

        Must be appended *before* the data-disk write it covers — that
        ordering is the write-ahead protocol, and it is what lets a torn
        data write replay from the log.
        """
        batch = self._require_batch()
        self._append(
            IMAGE,
            batch.txn_id,
            page_id=page.page_id,
            records=tuple(page.records),
            payload=_snapshot_payload(page.payload),
        )

    def log_free(self, page_id: int) -> None:
        """Defer a page free to commit time (rollback keeps the page)."""
        batch = self._require_batch()
        batch.frees.append(page_id)
        self._append(FREE, batch.txn_id, page_id=page_id)

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def recover(
        self, decide: Callable[[str], bool] | None = None
    ) -> RecoveryReport:
        """Redo-on-open: roll back open batches, resolve in-doubt
        prepared batches, replay committed images.

        ``decide`` maps a prepared batch's global transaction id to the
        coordinator's logged verdict (``True`` = commit).  Without a
        decision function — or for any gid it does not vouch for — the
        participant *presumes abort*: safe, because the coordinator only
        acknowledges a commit after its decision record is durable, so a
        missing decision means no participant committed.

        Safe to call any number of times; a second pass finds every page
        matching its committed image and heals nothing.  Emits exactly
        one :class:`RecoveryEvent` per pass.
        """
        rolled_back = 0
        freed = 0
        resolved_commits = 0
        resolved_aborts = 0
        if self._active is not None:
            # an open in-process batch is an interrupted one
            freed += len(self._active.allocated)
            self.abort()
            rolled_back += 1
        # one sequential scan of the log device, mirrored onto the clock
        before = self.device.stats.time
        self._scan_device()
        self.disk.advance_clock(self.device.stats.time - before)

        committed = {r.txn for r in self.records if r.kind == COMMIT}
        closed = committed | {r.txn for r in self.records if r.kind == ABORT}
        prepared: dict[int, str] = {
            r.txn: r.label or ""
            for r in self.records
            if r.kind == PREPARE and r.txn not in closed
        }
        open_txns = [
            r.txn
            for r in self.records
            if r.kind == BEGIN and r.txn not in closed and r.txn not in prepared
        ]
        # roll back batches the in-process abort never saw (a log replayed
        # "from disk": the crash hook can lose the begin's batch object)
        for txn in open_txns:
            rolled_back += 1
            freed += self._rollback_from_log(txn)

        # resolve in-doubt prepared batches against the decision log:
        # commit when the coordinator durably decided commit, otherwise
        # presume abort
        for txn, gid in prepared.items():
            if decide is not None and decide(gid):
                frees = [
                    r.page_id
                    for r in self.records
                    if r.txn == txn and r.kind == FREE
                ]
                self._append(COMMIT, txn)
                for page_id in frees:
                    if page_id is not None and self.disk.page_exists(page_id):
                        self.disk.free(page_id)
                committed.add(txn)
                resolved_commits += 1
            else:
                freed += self._rollback_from_log(txn)
                resolved_aborts += 1
            self._prepared.pop(gid, None)

        # last committed after-image per page, in LSN order
        last_image: dict[int, WALRecord] = {}
        for record in self.records:
            if record.kind == IMAGE and record.txn in committed:
                if record.page_id is not None:
                    last_image[record.page_id] = record
        examined = 0
        healed = 0
        for page_id in sorted(last_image):
            if not self.disk.page_exists(page_id):
                continue  # committed-freed later, or dropped by the engine
            examined += 1
            # redo reads the page to compare it against the logged image
            self.disk.read(page_id, sequential=True, category="wal")
            record = last_image[page_id]
            page = self.disk.peek(page_id)
            intact = (
                list(page.records) == list(record.records or ())
                and page.verify_checksum()
            )
            if intact:
                continue
            page.records = list(record.records or ())
            page.version += 1
            if record.payload is not None:
                _restore_payload(page, record.payload)
            page.seal_checksum()
            self.disk.write(page, category="wal")
            healed += 1
            self.disk.stats.faults.wal_redo_pages += 1
        self._validate()
        report = RecoveryReport(
            examined_pages=examined,
            healed_pages=healed,
            rolled_back_batches=rolled_back,
            freed_pages=freed,
            log_records=len(self.records),
            log_pages=len(self._log_pages),
            resolved_commits=resolved_commits,
            resolved_aborts=resolved_aborts,
            wal_name=self.name,
        )
        _recovery_registry.emit(RecoveryEvent(wal_name=self.name, report=report))
        return report

    def _rollback_from_log(self, txn: int) -> int:
        """Roll ``txn`` back from its logged undo/alloc records.

        Returns the number of pages freed.  Idempotent: restoring the
        same before-images twice and freeing already-freed allocations
        are both no-ops.
        """
        freed = 0
        undo = [r for r in self.records if r.txn == txn and r.kind == UNDO]
        allocated = {
            r.page_id for r in self.records if r.txn == txn and r.kind == ALLOC
        }
        for record in reversed(undo):
            page_id = record.page_id
            if (
                page_id is None
                or page_id in allocated
                or not self.disk.page_exists(page_id)
            ):
                continue
            page = self.disk.peek(page_id)
            page.records = list(record.records or ())
            page.version += 1
            if record.payload is not None:
                _restore_payload(page, record.payload)
            page.stored_checksum = record.checksum
        for page_id in sorted(p for p in allocated if p is not None):
            if self.disk.page_exists(page_id):
                self.disk.free(page_id)
                freed += 1
        self._append(ABORT, txn)
        self.disk.stats.faults.wal_rollbacks += 1
        return freed

    def _validate(self) -> None:
        if invariants.enabled():
            invariants.validate_wal(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"in batch {self._active.label!r}" if self._active else "idle"
        return f"<WriteAheadLog {self.name!r} {len(self.records)} records, {state}>"
