"""A simulated-clock write-ahead log with redo-on-open recovery.

PR 3 made the *read* path fail-safe; this module does the same for the
write path.  A :class:`WriteAheadLog` journals page mutations of one
:class:`~repro.storage.disk.SimulatedDisk` onto a separate log device
(its own ``SimulatedDisk``, so log forces are priced with the same
Section 4.1 cost model and mirrored onto the data disk's clock — the
engine *waits* for the log).  Batched mutations then follow the
classical write-ahead protocol:

* ``begin`` opens a batch (one load, one insert);
* ``log_alloc`` journals every page allocation so rollback can free it;
* ``touch`` journals a page's *before*-image (undo) the first time a
  batch mutates a pre-existing page;
* ``log_image`` journals a page's *after*-image (redo) before the data
  write that makes it durable — write-ahead ordering, so a torn data
  write can always be replayed from the log;
* ``log_free`` defers a free to commit time (rollback must be able to
  resurrect the page);
* ``commit`` / ``abort`` close the batch.

:meth:`recover` is redo-on-open: it rolls an interrupted batch back
from the logged undo records and allocations, then replays the last
committed after-image of every page whose on-disk content no longer
matches — healing torn writes (and any other record-level rot) to the
exact committed state.  Running it twice is a no-op.

The log is *simulated-durable*: records survive everything the fault
layer can do to the data disk, and the deterministic crash hook
(:meth:`crash_after_appends`) proves that rollback needs nothing beyond
the log.  ``REPRO_CHECKS=1`` re-validates the log's structural contract
(:func:`repro.invariants.validate_wal`) after every batch boundary.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

from .. import invariants
from .disk import SimulatedDisk
from .errors import SimulatedCrashError
from .page import Page

__all__ = [
    "RecoveryReport",
    "WALRecord",
    "WriteAheadLog",
    "active_wal",
]

#: record kinds, in the order a batch emits them
BEGIN = "begin"
ALLOC = "alloc"
UNDO = "undo"
IMAGE = "image"
FREE = "free"
COMMIT = "commit"
ABORT = "abort"


def active_wal(disk: SimulatedDisk) -> "WriteAheadLog | None":
    """The write-ahead log armed on ``disk``'s stack, or ``None``.

    Wrapper disks (:class:`~repro.storage.faults.FaultyDisk`,
    :class:`~repro.storage.replica.ReplicatedDisk`) proxy the ``wal``
    attribute to the base disk, so any layer of the stack answers.
    """
    return getattr(disk, "wal", None)


def _snapshot_payload(payload: Any) -> tuple:
    """A restorable copy of a page's structural payload.

    Knows the engine's two payload shapes — the leaf ``dict`` and the
    inner-node object with ``keys``/``children`` lists — and falls back
    to carrying anything else by reference.
    """
    if payload is None:
        return ("none",)
    if isinstance(payload, dict):
        return ("dict", dict(payload))
    if hasattr(payload, "keys") and hasattr(payload, "children"):
        return ("node", list(payload.keys), list(payload.children))
    return ("opaque", payload)


def _restore_payload(page: Page, snap: tuple) -> None:
    """Put a :func:`_snapshot_payload` copy back onto ``page`` in place.

    Container identity is preserved where possible: other pages hold
    references to the same leaf dict / inner-node object.
    """
    kind = snap[0]
    if kind == "none":
        page.payload = None
    elif kind == "dict":
        if isinstance(page.payload, dict):
            page.payload.clear()
            page.payload.update(snap[1])
        else:
            page.payload = dict(snap[1])
    elif kind == "node":
        node = page.payload
        if node is not None and hasattr(node, "keys"):
            node.keys = list(snap[1])
            node.children = list(snap[2])
    else:
        page.payload = snap[1]


@dataclass(frozen=True)
class WALRecord:
    """One journal entry.  ``records``/``payload``/``checksum`` are only
    populated for page-image kinds (``undo`` carries the before-image
    and the pre-batch checksum, ``image`` the after-image)."""

    lsn: int
    txn: int
    kind: str
    page_id: int | None = None
    records: tuple | None = None
    payload: tuple | None = None
    checksum: int | None = None
    label: str | None = None


@dataclass(frozen=True)
class RecoveryReport:
    """What :meth:`WriteAheadLog.recover` did."""

    examined_pages: int
    healed_pages: int
    rolled_back_batches: int
    freed_pages: int
    log_records: int
    log_pages: int

    def describe(self) -> str:
        return (
            f"recovery: {self.healed_pages}/{self.examined_pages} pages healed "
            f"by redo, {self.rolled_back_batches} batch(es) rolled back, "
            f"{self.freed_pages} page(s) freed, log={self.log_records} records "
            f"on {self.log_pages} pages"
        )


class _Batch:
    """In-flight batch state (the durable truth is in the log records)."""

    __slots__ = ("txn_id", "label", "touched", "allocated", "frees")

    def __init__(self, txn_id: int, label: str) -> None:
        self.txn_id = txn_id
        self.label = label
        #: page_id -> (records, payload snapshot, stored_checksum) before-image
        self.touched: dict[int, tuple[tuple, tuple, int | None]] = {}
        self.allocated: list[int] = []
        self.frees: list[int] = []


class WriteAheadLog:
    """Journal of page mutations for one simulated disk.

    Constructing the log *arms* it: it registers itself as ``disk.wal``,
    and WAL-aware engine code (:func:`active_wal`) starts journaling its
    mutations.  ``records_per_page`` sizes the log device's pages — log
    records are small, so many fit one page and sequential forces are
    cheap (mostly ``t_tau``).
    """

    def __init__(self, disk: SimulatedDisk, *, records_per_page: int = 64) -> None:
        if records_per_page < 1:
            raise ValueError("records_per_page must be >= 1")
        if active_wal(disk) is not None:
            raise RuntimeError("disk already has an armed write-ahead log")
        self.disk = disk
        self.records_per_page = records_per_page
        #: the log's own device: same cost model, separate address space
        self.device = SimulatedDisk(disk.params)
        #: in-memory mirror of the durable log, in LSN order
        self.records: list[WALRecord] = []
        self._log_pages: list[Page] = []
        self._next_lsn = 0
        self._next_txn = 0
        self._active: _Batch | None = None
        self._crash_countdown: int | None = None
        disk.wal = self

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def in_batch(self) -> bool:
        return self._active is not None

    @property
    def log_page_count(self) -> int:
        return len(self._log_pages)

    def detach(self) -> None:
        """Unregister from the disk; engine code stops journaling."""
        if getattr(self.disk, "wal", None) is self:
            self.disk.wal = None

    # ------------------------------------------------------------------
    # the deterministic crash hook
    # ------------------------------------------------------------------
    def crash_after_appends(self, appends: int) -> None:
        """Raise :class:`SimulatedCrashError` on the ``appends``-th next
        append attempt (that record is *lost*), then disarm — so the
        in-process rollback can still write its ``abort`` record, exactly
        like a recovery pass over the reopened log would."""
        if appends < 1:
            raise ValueError("crash countdown must be >= 1")
        self._crash_countdown = appends

    # ------------------------------------------------------------------
    # the append path (every record is forced to the log device)
    # ------------------------------------------------------------------
    def _append(
        self,
        kind: str,
        txn: int,
        *,
        page_id: int | None = None,
        records: tuple | None = None,
        payload: tuple | None = None,
        checksum: int | None = None,
        label: str | None = None,
    ) -> WALRecord:
        if self._crash_countdown is not None:
            self._crash_countdown -= 1
            if self._crash_countdown <= 0:
                self._crash_countdown = None
                raise SimulatedCrashError(
                    f"simulated crash: WAL append #{self._next_lsn} "
                    f"({kind} for txn {txn}) never reached the log"
                )
        record = WALRecord(
            lsn=self._next_lsn,
            txn=txn,
            kind=kind,
            page_id=page_id,
            records=records,
            payload=payload,
            checksum=checksum,
            label=label,
        )
        self._next_lsn += 1
        if not self._log_pages or self._log_pages[-1].is_full:
            self._log_pages.append(self.device.allocate(self.records_per_page))
        tail = self._log_pages[-1]
        tail.add(record)
        # force the log page; the engine waits for it, so the device time
        # is mirrored onto the data disk's clock
        before = self.device.stats.time
        self.device.write(tail, sequential=True, category="wal")
        delta = self.device.stats.time - before
        self.disk.advance_clock(delta)
        faults = self.disk.stats.faults
        faults.wal_appends += 1
        faults.wal_delay += delta
        # the mirror is the log itself, not page content: no version field
        self.records.append(record)  # reprolint: allow(R003)
        return record

    # ------------------------------------------------------------------
    # batch lifecycle
    # ------------------------------------------------------------------
    def begin(self, label: str = "batch") -> int:
        """Open a batch; returns its transaction id."""
        if self._active is not None:
            raise RuntimeError(
                f"a WAL batch is already active ({self._active.label!r})"
            )
        txn_id = self._next_txn
        self._append(BEGIN, txn_id, label=label)
        self._next_txn = txn_id + 1
        self._active = _Batch(txn_id, label)
        return txn_id

    def commit(self) -> None:
        """Close the batch successfully and apply its deferred frees."""
        batch = self._require_batch()
        self._append(COMMIT, batch.txn_id)
        self._active = None
        for page_id in batch.frees:
            self.disk.free(page_id)
        self._validate()

    def abort(self) -> None:
        """Roll the batch back: restore before-images, free allocations."""
        batch = self._require_batch()
        self._active = None
        allocated = set(batch.allocated)
        for page_id, (records, payload, checksum) in batch.touched.items():
            if page_id in allocated or not self.disk.page_exists(page_id):
                continue
            page = self.disk.peek(page_id)
            page.records = list(records)
            page.version += 1
            _restore_payload(page, payload)
            page.stored_checksum = checksum
        for page_id in batch.allocated:
            self.disk.free(page_id)
        self._append(ABORT, batch.txn_id)
        self.disk.stats.faults.wal_rollbacks += 1
        self._validate()

    @contextmanager
    def batch(self, label: str = "batch") -> Iterator[int]:
        """``with wal.batch("load"):`` — begin/commit with abort on error.

        Re-entrant: a nested ``batch`` joins the enclosing one (the
        outermost context owns commit/abort), so a bulk load that calls
        journaled inserts forms a single atomic batch.
        """
        if self._active is not None:
            yield self._active.txn_id
            return
        txn_id = self.begin(label)
        try:
            yield txn_id
        except BaseException:
            self.abort()
            raise
        else:
            self.commit()

    def _require_batch(self) -> _Batch:
        if self._active is None:
            raise RuntimeError("no active WAL batch")
        return self._active

    # ------------------------------------------------------------------
    # journaling primitives (engine code calls these inside a batch)
    # ------------------------------------------------------------------
    def log_alloc(self, page: Page) -> None:
        """Journal a page allocation so rollback can free it.

        Outside a batch this is a no-op: unbatched allocations (e.g. an
        empty tree's root, created at table definition time) are not
        covered by the log.
        """
        batch = self._active
        if batch is None:
            return
        batch.allocated.append(page.page_id)
        self._append(ALLOC, batch.txn_id, page_id=page.page_id)

    def touch(self, page: Page) -> None:
        """Journal ``page``'s before-image on its first mutation this batch.

        No-op outside a batch, for pages already touched, and for pages
        this batch allocated (rollback frees those instead).
        """
        batch = self._active
        if batch is None:
            return
        if page.page_id in batch.touched or page.page_id in batch.allocated:
            return
        before = (
            tuple(page.records),
            _snapshot_payload(page.payload),
            page.stored_checksum,
        )
        batch.touched[page.page_id] = before
        self._append(
            UNDO,
            batch.txn_id,
            page_id=page.page_id,
            records=before[0],
            payload=before[1],
            checksum=before[2],
        )

    def log_image(self, page: Page) -> None:
        """Journal ``page``'s after-image (redo record).

        Must be appended *before* the data-disk write it covers — that
        ordering is the write-ahead protocol, and it is what lets a torn
        data write replay from the log.
        """
        batch = self._require_batch()
        self._append(
            IMAGE,
            batch.txn_id,
            page_id=page.page_id,
            records=tuple(page.records),
            payload=_snapshot_payload(page.payload),
        )

    def log_free(self, page_id: int) -> None:
        """Defer a page free to commit time (rollback keeps the page)."""
        batch = self._require_batch()
        batch.frees.append(page_id)
        self._append(FREE, batch.txn_id, page_id=page_id)

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def recover(self) -> RecoveryReport:
        """Redo-on-open: roll back open batches, replay committed images.

        Safe to call any number of times; a second pass finds every page
        matching its committed image and heals nothing.
        """
        rolled_back = 0
        freed = 0
        if self._active is not None:
            # an open in-process batch is an interrupted one
            freed += len(self._active.allocated)
            self.abort()
            rolled_back += 1
        # one sequential scan of the log device, mirrored onto the clock
        before = self.device.stats.time
        for log_page in self._log_pages:
            self.device.read(log_page.page_id, sequential=True, category="wal")
        self.disk.advance_clock(self.device.stats.time - before)

        committed = {r.txn for r in self.records if r.kind == COMMIT}
        closed = committed | {r.txn for r in self.records if r.kind == ABORT}
        open_txns = [
            r.txn for r in self.records if r.kind == BEGIN and r.txn not in closed
        ]
        # roll back batches the in-process abort never saw (a log replayed
        # "from disk": the crash hook can lose the begin's batch object)
        for txn in open_txns:
            rolled_back += 1
            undo = [r for r in self.records if r.txn == txn and r.kind == UNDO]
            allocated = {
                r.page_id for r in self.records if r.txn == txn and r.kind == ALLOC
            }
            for record in reversed(undo):
                page_id = record.page_id
                if (
                    page_id is None
                    or page_id in allocated
                    or not self.disk.page_exists(page_id)
                ):
                    continue
                page = self.disk.peek(page_id)
                page.records = list(record.records or ())
                page.version += 1
                if record.payload is not None:
                    _restore_payload(page, record.payload)
                page.stored_checksum = record.checksum
            for page_id in sorted(allocated):
                if page_id is not None and self.disk.page_exists(page_id):
                    self.disk.free(page_id)
                    freed += 1
            self._append(ABORT, txn)
            self.disk.stats.faults.wal_rollbacks += 1

        # last committed after-image per page, in LSN order
        last_image: dict[int, WALRecord] = {}
        for record in self.records:
            if record.kind == IMAGE and record.txn in committed:
                if record.page_id is not None:
                    last_image[record.page_id] = record
        examined = 0
        healed = 0
        for page_id in sorted(last_image):
            if not self.disk.page_exists(page_id):
                continue  # committed-freed later, or dropped by the engine
            examined += 1
            # redo reads the page to compare it against the logged image
            self.disk.read(page_id, sequential=True, category="wal")
            record = last_image[page_id]
            page = self.disk.peek(page_id)
            intact = (
                list(page.records) == list(record.records or ())
                and page.verify_checksum()
            )
            if intact:
                continue
            page.records = list(record.records or ())
            page.version += 1
            if record.payload is not None:
                _restore_payload(page, record.payload)
            page.seal_checksum()
            self.disk.write(page, category="wal")
            healed += 1
            self.disk.stats.faults.wal_redo_pages += 1
        self._validate()
        return RecoveryReport(
            examined_pages=examined,
            healed_pages=healed,
            rolled_back_batches=rolled_back,
            freed_pages=freed,
            log_records=len(self.records),
            log_pages=len(self._log_pages),
        )

    def _validate(self) -> None:
        if invariants.enabled():
            invariants.validate_wal(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"in batch {self._active.label!r}" if self._active else "idle"
        return f"<WriteAheadLog {len(self.records)} records, {state}>"
