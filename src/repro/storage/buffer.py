"""A simple LRU buffer pool on top of the simulated disk.

The pool caches pages so that repeated accesses within one query are free,
mirroring a DBMS buffer cache.  Experiments size it to hold index levels
plus a working set, so that base-table page waves still hit the disk —
which is the regime the paper's cost model describes.

With ``REPRO_CHECKS=1`` every mutation re-validates the pool's
accounting contract (see :mod:`repro.invariants.accounting`): each
lookup is exactly one hit or one miss, each miss issues exactly one disk
fetch, the dirty set stays within the resident frames, and the frame
count never exceeds the capacity.
"""

from __future__ import annotations

from collections import OrderedDict

from .. import invariants
from .disk import SimulatedDisk
from .page import Page


class BufferPool:
    """LRU cache of disk pages with hit/miss accounting."""

    def __init__(self, disk: SimulatedDisk, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("buffer pool needs at least one frame")
        self.disk = disk
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        #: shadow counters cross-checked by the invariant layer: total
        #: lookups served, and disk reads issued by this pool on misses
        self.lookups = 0
        self.disk_fetches = 0
        self._frames: OrderedDict[int, Page] = OrderedDict()
        self._dirty: set[int] = set()

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._frames

    def __len__(self) -> int:
        return len(self._frames)

    def get(
        self,
        page_id: int,
        *,
        sequential: bool = False,
        category: str = "data",
        charge: bool = True,
    ) -> Page:
        """Return the page, reading it from disk on a miss."""
        self.lookups += 1
        if page_id in self._frames:
            self.hits += 1
            self._frames.move_to_end(page_id)
            return self._frames[page_id]
        self.misses += 1
        self.disk_fetches += 1
        page = self.disk.read(
            page_id, sequential=sequential, category=category, charge=charge
        )
        self._admit(page, category)
        if invariants.enabled():
            invariants.validate_buffer_pool(self)
        return page

    def mark_dirty(self, page_id: int) -> None:
        if page_id in self._frames:
            self._dirty.add(page_id)

    def put(self, page: Page, *, dirty: bool = True, category: str = "data") -> None:
        """Install a freshly created page into the pool."""
        self._admit(page, category)
        if dirty:
            self._dirty.add(page.page_id)
        if invariants.enabled():
            invariants.validate_buffer_pool(self)

    def evict(self, page_id: int, *, category: str = "data") -> None:
        """Explicitly drop one page, writing it back if dirty."""
        page = self._frames.pop(page_id, None)
        if page is not None and page_id in self._dirty:
            self._dirty.discard(page_id)
            self.disk.write(page, category=category)
        if invariants.enabled():
            invariants.validate_buffer_pool(self)

    def flush(self, *, category: str = "data") -> None:
        """Write back all dirty pages (end of a load phase)."""
        for page_id in sorted(self._dirty):
            page = self._frames.get(page_id)
            if page is not None:
                self.disk.write(page, sequential=True, category=category)
        self._dirty.clear()

    def drop_all(self) -> None:
        """Empty the pool without write-back (pages live in the sim anyway).

        Used between experiment phases to start measurements from a cold
        cache, the state the paper's formulas assume.
        """
        self._frames.clear()
        self._dirty.clear()

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def _admit(self, page: Page, category: str) -> None:
        self._frames[page.page_id] = page
        self._frames.move_to_end(page.page_id)
        while len(self._frames) > self.capacity:
            victim_id, victim = self._frames.popitem(last=False)
            if victim_id in self._dirty:
                self._dirty.discard(victim_id)
                self.disk.write(victim, category=category)
