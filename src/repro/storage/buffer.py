"""A simple LRU buffer pool on top of the simulated disk.

The pool caches pages so that repeated accesses within one query are free,
mirroring a DBMS buffer cache.  Experiments size it to hold index levels
plus a working set, so that base-table page waves still hit the disk —
which is the regime the paper's cost model describes.

The pool is also the engine's resilience gate: transient read errors are
retried through a :class:`~repro.storage.retry.RetryPolicy` (backoff
charged to the *simulated* clock), every page fetched from disk is
verified against its stored checksum, and a page that keeps failing —
or fails once with corruption — is *quarantined*: further lookups raise
:class:`~repro.storage.errors.QuarantinedPageError` without touching the
disk, and the planner degrades onto a surviving physical instance.

With ``REPRO_CHECKS=1`` every mutation re-validates the pool's
accounting contract (see :mod:`repro.invariants.accounting`): each
lookup is exactly one hit, one miss or one quarantine rejection; disk
fetches equal misses plus retry attempts plus issued prefetches; the
dirty set stays within the resident frames; the frame count never
exceeds the capacity; and no quarantined page is resident.

When an :class:`~repro.storage.scheduler.IOScheduler` is attached, the
pool is also the prefetch gate: :meth:`prefetch` admits a page whose
async read is still in flight, and the first demand lookup *claims* it —
waiting out the remaining transfer time, then running exactly the same
integrity/repair/quarantine ladder a demand fetch runs, so a corrupt
prefetched page degrades identically to a corrupt demand-fetched one.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Callable, Protocol

from .. import invariants
from ..invariants.sanitizer import guarded_by, note_access, tracked_lock
from .disk import SimulatedDisk
from .errors import (
    CorruptPageError,
    QuarantinedPageError,
    TransientIOError,
    ensure_page_integrity,
)
from .page import Page
from .retry import DEFAULT_RETRY_POLICY, RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from .scheduler import IOScheduler


class EvictionPolicy(Protocol):
    """Pluggable victim selection consulted before the LRU fallback."""

    def choose_victim(self, pool: "BufferPool") -> int | None:
        """Page id to evict, or ``None`` to defer to LRU order."""
        ...  # pragma: no cover - protocol


@guarded_by(
    "_lock",
    "_frames",
    "_dirty",
    "_prefetched",
    "_failures",
    "_quarantined",
    "_eviction_observers",
    "hits",
    "misses",
    "lookups",
    "disk_fetches",
    "rejected",
    "retry_attempts",
    "prefetch_issued",
    "prefetch_claimed",
    "prefetch_cancelled",
)
class BufferPool:
    """LRU cache of disk pages with hit/miss accounting and quarantine.

    Frame maps, the dirty/prefetch/quarantine sets, the observer list
    and every shadow counter are guarded by the pool's ``buffer-pool``
    lock: all mutating entry points take it, internal helpers inherit
    it from their callers (reprolint R010 verifies the reachability
    claim through the call graph, and the ``REPRO_CHECKS=1`` sanitizer
    verifies the happens-before claim at runtime).
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        capacity: int = 256,
        *,
        retry_policy: RetryPolicy | None = None,
        quarantine_threshold: int = 3,
        scheduler: "IOScheduler | None" = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("buffer pool needs at least one frame")
        if quarantine_threshold < 1:
            raise ValueError("quarantine threshold must be >= 1")
        #: reentrant declared lock; rank "buffer-pool" in the global order
        self._lock = tracked_lock("buffer-pool")
        self.disk = disk
        self.capacity = capacity
        self.retry_policy = retry_policy or DEFAULT_RETRY_POLICY
        self.quarantine_threshold = quarantine_threshold
        self.scheduler = scheduler
        #: victim-selection hook; ``None`` means plain LRU.  The sweep
        #: prefetcher installs an evict-behind-the-plane policy here for
        #: the duration of a scan.
        self.eviction_policy: EvictionPolicy | None = None
        self.hits = 0
        self.misses = 0
        #: shadow counters cross-checked by the invariant layer: total
        #: lookups served, disk reads issued by this pool (including
        #: failed retry attempts and async prefetches), lookups rejected
        #: by quarantine, individual retry attempts, and the prefetch
        #: lifecycle (issued = claimed + cancelled + still pending)
        self.lookups = 0
        self.disk_fetches = 0
        self.rejected = 0
        self.retry_attempts = 0
        self.prefetch_issued = 0
        self.prefetch_claimed = 0
        self.prefetch_cancelled = 0
        #: callbacks fired with the page id whenever a frame leaves the
        #: pool (eviction, quarantine, drop, cancelled prefetch) —
        #: derived caches keyed on residency (e.g. the shared-memory
        #: column store) retire their state in lockstep
        self._eviction_observers: list[Callable[[int], Any]] = []
        self._frames: OrderedDict[int, Page] = OrderedDict()
        self._dirty: set[int] = set()
        #: resident frames whose async read has not been claimed yet —
        #: the pages *ahead* of the sweep plane
        self._prefetched: set[int] = set()
        #: cumulative I/O failures per page, across lookups
        self._failures: dict[int, int] = {}
        self._quarantined: set[int] = set()

    def _note_write(self, field: str) -> None:
        """Happens-before choke point for one guarded-field mutation."""
        if invariants.enabled():
            note_access(self, field, write=True, sim_time=self.disk.stats.time)

    def add_eviction_observer(self, observer: Callable[[int], Any]) -> None:
        """Call ``observer(page_id)`` whenever a frame leaves the pool."""
        with self._lock:
            self._eviction_observers.append(observer)
            self._note_write("_eviction_observers")

    def remove_eviction_observer(self, observer: Callable[[int], Any]) -> None:
        """Detach a previously added observer (no-op when absent)."""
        with self._lock:
            if observer in self._eviction_observers:
                self._eviction_observers.remove(observer)
            self._note_write("_eviction_observers")

    def _notify_evicted(self, page_id: int) -> None:
        for observer in self._eviction_observers:
            observer(page_id)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._frames

    def __len__(self) -> int:
        return len(self._frames)

    def get(
        self,
        page_id: int,
        *,
        sequential: bool = False,
        category: str = "data",
        charge: bool = True,
    ) -> Page:
        """Return the page, reading it from disk on a miss.

        Transient errors are retried per the pool's policy; corruption
        quarantines the page immediately; a page whose cumulative
        failure count reaches the quarantine threshold is refused
        outright on later lookups (:class:`QuarantinedPageError`).
        """
        with self._lock:
            self.lookups += 1
            if page_id in self._quarantined:
                # a disk stack with replicas may be able to heal the page;
                # if so, lift the quarantine and serve the lookup normally
                if self.disk.repair_page(page_id):
                    self.lift_quarantine(page_id)
                else:
                    self.rejected += 1
                    self._validate()
                    raise QuarantinedPageError(
                        f"page {page_id} is quarantined after "
                        f"{self._failures.get(page_id, 0)} failures"
                    )
            if page_id in self._frames:
                if page_id in self._prefetched:
                    return self._claim_prefetched(page_id)
                self.hits += 1
                self._frames.move_to_end(page_id)
                return self._frames[page_id]
            self.misses += 1
            page = self._fetch(
                page_id, sequential=sequential, category=category, charge=charge
            )
            self._admit(page, category)
            self._validate()
            return page

    # ------------------------------------------------------------------
    # the prefetch gate
    # ------------------------------------------------------------------
    def prefetch(
        self,
        page_id: int,
        *,
        sequential: bool = False,
        category: str = "data",
        charge: bool = True,
    ) -> bool:
        """Issue an async read for a page the sweep will demand soon.

        Returns ``True`` when the page is now resident-and-pending.  A
        no-op (``False``) without a scheduler, for resident or
        quarantined pages, and on a transient fault of the async attempt
        — the later demand read then runs the normal retry path.
        """
        with self._lock:
            scheduler = self.scheduler
            if (
                scheduler is None
                or scheduler.prefetch_depth <= 0
                or page_id in self._frames
                or page_id in self._quarantined
            ):
                return False
            self.disk_fetches += 1
            self.prefetch_issued += 1
            page = scheduler.submit(
                page_id, sequential=sequential, category=category, charge=charge
            )
            if page is None:
                # the async attempt hit a transient fault; account the issue
                # as immediately cancelled so the lifecycle ledger stays
                # balanced (issued = claimed + cancelled + pending)
                self.prefetch_cancelled += 1
                self._validate()
                return False
            self._prefetched.add(page_id)
            self._note_write("_prefetched")
            self._admit(page, category)
            self._validate()
            return True

    def _claim_prefetched(self, page_id: int) -> Page:
        """First demand lookup of a pending prefetched page.

        Waits out the remaining transfer time, then applies the same
        integrity/repair/quarantine ladder as a demand fetch.  A lookup
        that ends in quarantine is counted as ``rejected`` (the disk
        fetch was already accounted when the prefetch was issued).
        """
        self._prefetched.discard(page_id)
        self.prefetch_claimed += 1
        scheduler = self.scheduler
        if scheduler is None:  # pragma: no cover - guarded by prefetch()
            raise RuntimeError("pending prefetched page without a scheduler")
        page = scheduler.claim(page_id)
        self._frames.move_to_end(page_id)
        try:
            ensure_page_integrity(page, context=f"prefetched read of page {page_id}")
        except CorruptPageError:
            if self.disk.repair_page(page_id):
                self.hits += 1
                self._validate()
                return page
            self._quarantine(page_id, immediately=True)
            self.rejected += 1
            self._validate()
            raise
        self.hits += 1
        self._validate()
        return page

    def cancel_prefetch(self, page_id: int) -> bool:
        """Drop a pending prefetched page (mispredicted sweep)."""
        with self._lock:
            if page_id not in self._prefetched:
                return False
            self._cancel_pending(page_id)
            if self._frames.pop(page_id, None) is not None:
                self._notify_evicted(page_id)
            self._validate()
            return True

    def _cancel_pending(self, page_id: int) -> None:
        """Retire a pending prefetch's bookkeeping (frame handled by caller)."""
        self._prefetched.discard(page_id)
        self.prefetch_cancelled += 1
        self._note_write("_prefetched")
        if self.scheduler is not None:
            self.scheduler.cancel(page_id)

    @property
    def prefetch_pending(self) -> frozenset[int]:
        """Resident pages whose async read has not been claimed yet."""
        return frozenset(self._prefetched)

    def iter_frames_lru(self) -> "list[int]":
        """Resident page ids from least- to most-recently used."""
        return list(self._frames)

    def _read_source(
        self, page_id: int, *, sequential: bool, category: str, charge: bool
    ) -> Page:
        """One demand read — through the scheduler's queues when armed."""
        if self.scheduler is not None:
            return self.scheduler.read(
                page_id, sequential=sequential, category=category, charge=charge
            )
        return self.disk.read(
            page_id, sequential=sequential, category=category, charge=charge
        )

    def _fetch(
        self, page_id: int, *, sequential: bool, category: str, charge: bool
    ) -> Page:
        """One miss: read with retries, verify integrity, track failures."""
        delays = self.retry_policy.delays()
        while True:
            self.disk_fetches += 1
            try:
                page = self._read_source(
                    page_id, sequential=sequential, category=category, charge=charge
                )
            except TransientIOError:
                self._note_failure(page_id)
                delay = next(delays, None)
                if delay is None or page_id in self._quarantined:
                    self._validate()
                    raise
                self.retry_attempts += 1
                faults = self.disk.stats.faults
                faults.retries += 1
                faults.retry_delay += delay
                self.disk.advance_clock(delay)
                continue
            try:
                ensure_page_integrity(page, context=f"buffered read of page {page_id}")
            except CorruptPageError:
                if self.disk.repair_page(page_id):
                    # the primary was healed in place and re-sealed; the
                    # fetched object is the healed page
                    return page
                # the bits will not heal: no retry, straight to quarantine
                self._quarantine(page_id, immediately=True)
                self._validate()
                raise
            return page

    def _note_failure(self, page_id: int) -> None:
        count = self._failures.get(page_id, 0) + 1
        self._failures[page_id] = count
        if count >= self.quarantine_threshold:
            self._quarantine(page_id)

    def _quarantine(self, page_id: int, *, immediately: bool = False) -> None:
        if immediately:
            self._failures[page_id] = max(
                self._failures.get(page_id, 0) + 1, self.quarantine_threshold
            )
        if page_id not in self._quarantined:
            self._quarantined.add(page_id)
            self._note_write("_quarantined")
            self.disk.stats.faults.quarantined_pages += 1
        # a quarantined page must not linger in the cache (its content is
        # suspect); drop it without write-back, retiring any still-pending
        # async read of it along the way
        if page_id in self._prefetched:
            self._cancel_pending(page_id)
        if self._frames.pop(page_id, None) is not None:
            self._notify_evicted(page_id)
        self._dirty.discard(page_id)

    # ------------------------------------------------------------------
    # quarantine introspection
    # ------------------------------------------------------------------
    @property
    def quarantined_pages(self) -> frozenset[int]:
        return frozenset(self._quarantined)

    def is_quarantined(self, page_id: int) -> bool:
        return page_id in self._quarantined

    def failure_count(self, page_id: int) -> int:
        return self._failures.get(page_id, 0)

    def lift_quarantine(self, page_id: int) -> bool:
        """Re-admit a quarantined page after its primary has been repaired.

        Clears the failure history too — the accounting invariant
        requires every over-threshold page to be quarantined, so a
        lifted page must start from a clean slate.  Returns ``False``
        when the page was not quarantined.
        """
        with self._lock:
            if page_id not in self._quarantined:
                return False
            self._quarantined.discard(page_id)
            self._note_write("_quarantined")
            self._failures.pop(page_id, None)
            self.disk.stats.faults.quarantine_lifted += 1
            return True

    def repair_quarantined(self) -> list[int]:
        """Try to repair every quarantined page from the disk's replicas.

        Returns the (sorted) page ids whose repair succeeded and whose
        quarantine was lifted; pages with no surviving replica stay
        quarantined.  Called by the plan executor before dropping a
        degraded physical instance.
        """
        with self._lock:
            repaired: list[int] = []
            for page_id in sorted(self._quarantined):
                if self.disk.repair_page(page_id):
                    repaired.append(page_id)
            for page_id in repaired:
                self.lift_quarantine(page_id)
            self._validate()
            return repaired

    def mark_dirty(self, page_id: int) -> None:
        with self._lock:
            if page_id in self._frames:
                self._dirty.add(page_id)
                self._note_write("_dirty")

    def put(self, page: Page, *, dirty: bool = True, category: str = "data") -> None:
        """Install a freshly created page into the pool."""
        with self._lock:
            if page.page_id in self._quarantined:
                raise QuarantinedPageError(
                    f"refusing to cache quarantined page {page.page_id}"
                )
            if page.page_id in self._prefetched:
                # a fresh install supersedes a pending async read of the page
                self._cancel_pending(page.page_id)
            self._admit(page, category)
            if dirty:
                self._dirty.add(page.page_id)
            self._validate()

    def evict(self, page_id: int, *, category: str = "data") -> None:
        """Explicitly drop one page, writing it back if dirty."""
        with self._lock:
            if page_id in self._prefetched:
                self._cancel_pending(page_id)
            page = self._frames.pop(page_id, None)
            if page is not None:
                self._note_write("_frames")
                if page_id in self._dirty:
                    self._dirty.discard(page_id)
                    self.disk.write(page, category=category)
                self._notify_evicted(page_id)
            self._validate()

    def flush(self, *, category: str = "data") -> None:
        """Write back all dirty pages (end of a load phase)."""
        with self._lock:
            for page_id in sorted(self._dirty):
                page = self._frames.get(page_id)
                if page is not None:
                    self.disk.write(page, sequential=True, category=category)
            self._dirty.clear()
            self._note_write("_dirty")

    def drop_all(self) -> None:
        """Empty the pool without write-back (pages live in the sim anyway).

        Used between experiment phases to start measurements from a cold
        cache, the state the paper's formulas assume.  Quarantine state
        and counters survive — a bad page stays bad across phases.
        Pending prefetches are cancelled (and counted wasted): nobody
        will ever claim them once the frames are gone.
        """
        with self._lock:
            for page_id in list(self._prefetched):
                self._cancel_pending(page_id)
            dropped = list(self._frames)
            self._frames.clear()
            self._dirty.clear()
            self._note_write("_frames")
            for page_id in dropped:
                self._notify_evicted(page_id)

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def _validate(self) -> None:
        if invariants.enabled():
            invariants.validate_buffer_pool(self)

    def _admit(self, page: Page, category: str) -> None:
        self._frames[page.page_id] = page
        self._frames.move_to_end(page.page_id)
        self._note_write("_frames")
        while len(self._frames) > self.capacity:
            victim_id = self._choose_victim()
            victim = self._frames.pop(victim_id)
            if victim_id in self._prefetched:
                # evicting an unclaimed prefetch throws the transfer away
                self._cancel_pending(victim_id)
            if victim_id in self._dirty:
                self._dirty.discard(victim_id)
                self.disk.write(victim, category=category)
            self._notify_evicted(victim_id)

    def _choose_victim(self) -> int:
        """The frame to evict: policy first, LRU order as the fallback."""
        policy = self.eviction_policy
        if policy is not None:
            victim = policy.choose_victim(self)
            if victim is not None and victim in self._frames:
                return victim
        return next(iter(self._frames))
