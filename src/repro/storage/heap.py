"""Heap files: the physical layout behind a full table scan.

A heap file appends records into pages allocated in physically contiguous
extents, so a scan reads consecutive addresses and benefits from the
disk's prefetch window — this is what makes the paper's FTS "ten times
faster" per page than an index scan and the baseline to beat.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from .disk import SimulatedDisk
from .page import Page
from .retry import DEFAULT_RETRY_POLICY, RetryPolicy, read_page_resilient
from .wal import active_wal

DEFAULT_EXTENT_PAGES = 64


class HeapFile:
    """An append-only, extent-allocated record file on the simulated disk."""

    def __init__(
        self,
        disk: SimulatedDisk,
        page_capacity: int,
        extent_pages: int = DEFAULT_EXTENT_PAGES,
        *,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        if page_capacity < 1:
            raise ValueError("page capacity must be positive")
        self.disk = disk
        self.page_capacity = page_capacity
        self.extent_pages = extent_pages
        self.retry_policy = retry_policy or DEFAULT_RETRY_POLICY
        self._pages: list[Page] = []
        self._free: list[Page] = []  # allocated but unused pages of last extent
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def page_count(self) -> int:
        return len(self._pages)

    @property
    def page_ids(self) -> list[int]:
        return [page.page_id for page in self._pages]

    def append(self, record: Any) -> int:
        """Append one record; returns the page id it was placed on."""
        if not self._pages or self._pages[-1].is_full:
            self._extend()
        page = self._pages[-1]
        page.add(record)
        self._count += 1
        return page.page_id

    def load(self, records: Iterable[Any], *, charge_writes: bool = False) -> None:
        """Bulk-append records.

        ``charge_writes=True`` prices one sequential write per filled page,
        which experiments use when the load itself is part of the measured
        operation (e.g. writing sort runs).
        """
        for record in records:
            page_id = self.append(record)
            if charge_writes and self.disk.peek(page_id).is_full:
                self.disk.write(self.disk.peek(page_id), sequential=True, category="temp")

    def bulk_load(self, records: Iterable[Any], *, category: str = "data") -> None:
        """Bulk-append under WAL protection when a log is armed.

        Without a log this is exactly :meth:`load`.  With one, the whole
        load is a single WAL batch: every extent allocation and every
        first-touched page is journaled, each filled page's redo image
        precedes its (tearable) sequential write, and on any failure —
        including a simulated crash mid-batch — the in-memory page
        directory is restored and the batch abort returns the disk to
        the pre-load state.
        """
        wal = active_wal(self.disk)
        if wal is None:
            self.load(records)
            return
        pre_pages = len(self._pages)
        pre_count = self._count
        pre_free = list(self._free)
        tail = self._pages[-1] if self._pages and not self._pages[-1].is_full else None
        with wal.batch("heap.bulk_load"):
            try:
                if tail is not None:
                    wal.touch(tail)
                for record in records:
                    if not self._pages or self._pages[-1].is_full:
                        if not self._free:
                            # allocate and journal pairwise: a crash in
                            # the journal append must not leak the page
                            # it was about to record
                            extent = []
                            for _ in range(self.extent_pages):
                                page = self.disk.allocate(self.page_capacity)
                                try:
                                    wal.log_alloc(page)
                                except BaseException:
                                    self.disk.free(page.page_id)
                                    raise
                                extent.append(page)
                            self._free = extent
                        page = self._free.pop(0)
                        wal.touch(page)  # no-op for batch-allocated pages
                        self._pages.append(page)
                    self._pages[-1].add(record)
                    self._count += 1
                first_dirty = pre_pages - (1 if tail is not None else 0)
                for page in self._pages[first_dirty:]:
                    wal.log_image(page)
                    self.disk.write(page, sequential=True, category=category)
            except BaseException:
                # put the in-memory directory back; the batch abort
                # (triggered by this re-raise) restores page content and
                # frees the journaled allocations
                del self._pages[pre_pages:]
                self._count = pre_count
                self._free = pre_free
                raise

    def scan(self, *, category: str = "data") -> Iterator[Any]:
        """Yield all records in physical order with sequential page reads."""
        for page in self.scan_pages(category=category):
            yield from page.records

    def scan_pages(self, *, category: str = "data") -> Iterator[Page]:
        """Yield pages in physical order, priced as a sequential scan.

        Transient read errors are retried through the heap's retry
        policy and every fetched page is checksum-verified, so a scan
        either yields true content or raises a typed
        :class:`~repro.storage.errors.StorageError`.
        """
        for page in self._pages:
            fetched, _ = read_page_resilient(
                self.disk,
                page.page_id,
                policy=self.retry_policy,
                sequential=True,
                category=category,
            )
            yield fetched

    def drop(self) -> None:
        """Free all pages (used for temporary sort runs after merging)."""
        for page in self._pages:
            self.disk.free(page.page_id)
        for page in self._free:
            self.disk.free(page.page_id)
        self._pages.clear()
        self._free.clear()
        self._count = 0

    def _extend(self) -> None:
        if not self._free:
            self._free = self.disk.allocate_extent(self.extent_pages, self.page_capacity)
        self._pages.append(self._free.pop(0))
