"""Heap files: the physical layout behind a full table scan.

A heap file appends records into pages allocated in physically contiguous
extents, so a scan reads consecutive addresses and benefits from the
disk's prefetch window — this is what makes the paper's FTS "ten times
faster" per page than an index scan and the baseline to beat.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Iterator

from .disk import SimulatedDisk
from .errors import CorruptPageError, ensure_page_integrity
from .page import Page
from .retry import DEFAULT_RETRY_POLICY, RetryPolicy, read_page_resilient
from .wal import active_wal

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from .scheduler import IOScheduler

DEFAULT_EXTENT_PAGES = 64


class HeapFile:
    """An append-only, extent-allocated record file on the simulated disk."""

    def __init__(
        self,
        disk: SimulatedDisk,
        page_capacity: int,
        extent_pages: int = DEFAULT_EXTENT_PAGES,
        *,
        retry_policy: RetryPolicy | None = None,
        scheduler: "IOScheduler | None" = None,
    ) -> None:
        if page_capacity < 1:
            raise ValueError("page capacity must be positive")
        self.disk = disk
        self.page_capacity = page_capacity
        self.extent_pages = extent_pages
        self.retry_policy = retry_policy or DEFAULT_RETRY_POLICY
        self.scheduler = scheduler
        self._pages: list[Page] = []
        self._free: list[Page] = []  # allocated but unused pages of last extent
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def page_count(self) -> int:
        return len(self._pages)

    @property
    def page_ids(self) -> list[int]:
        return [page.page_id for page in self._pages]

    def append(self, record: Any) -> int:
        """Append one record; returns the page id it was placed on."""
        if not self._pages or self._pages[-1].is_full:
            self._extend()
        page = self._pages[-1]
        page.add(record)
        self._count += 1
        return page.page_id

    def load(self, records: Iterable[Any], *, charge_writes: bool = False) -> None:
        """Bulk-append records.

        ``charge_writes=True`` prices one sequential write per filled page,
        which experiments use when the load itself is part of the measured
        operation (e.g. writing sort runs).
        """
        for record in records:
            page_id = self.append(record)
            if charge_writes and self.disk.peek(page_id).is_full:
                self.disk.write(self.disk.peek(page_id), sequential=True, category="temp")

    def bulk_load(self, records: Iterable[Any], *, category: str = "data") -> None:
        """Bulk-append under WAL protection when a log is armed.

        Without a log this is exactly :meth:`load`.  With one, the whole
        load is a single WAL batch: every extent allocation and every
        first-touched page is journaled, each filled page's redo image
        precedes its (tearable) sequential write, and on any failure —
        including a simulated crash mid-batch — the in-memory page
        directory is restored and the batch abort returns the disk to
        the pre-load state.
        """
        wal = active_wal(self.disk)
        if wal is None:
            self.load(records)
            return
        pre_pages = len(self._pages)
        pre_count = self._count
        pre_free = list(self._free)
        tail = self._pages[-1] if self._pages and not self._pages[-1].is_full else None
        with wal.batch("heap.bulk_load"):
            try:
                if tail is not None:
                    wal.touch(tail)
                for record in records:
                    if not self._pages or self._pages[-1].is_full:
                        if not self._free:
                            # allocate and journal pairwise: a crash in
                            # the journal append must not leak the page
                            # it was about to record
                            extent = []
                            for _ in range(self.extent_pages):
                                page = self.disk.allocate(self.page_capacity)
                                try:
                                    wal.log_alloc(page)
                                except BaseException:
                                    self.disk.free(page.page_id)
                                    raise
                                extent.append(page)
                            self._free = extent
                        page = self._free.pop(0)
                        wal.touch(page)  # no-op for batch-allocated pages
                        self._pages.append(page)
                    self._pages[-1].add(record)
                    self._count += 1
                first_dirty = pre_pages - (1 if tail is not None else 0)
                for page in self._pages[first_dirty:]:
                    wal.log_image(page)
                    self.disk.write(page, sequential=True, category=category)
            except BaseException:
                # put the in-memory directory back; the batch abort
                # (triggered by this re-raise) restores page content and
                # frees the journaled allocations
                del self._pages[pre_pages:]
                self._count = pre_count
                self._free = pre_free
                raise

    def scan(self, *, category: str = "data") -> Iterator[Any]:
        """Yield all records in physical order with sequential page reads."""
        for page in self.scan_pages(category=category):
            yield from page.records

    def upcoming_page_ids(self, position: int, count: int) -> list[int]:
        """The next ``count`` page ids a scan cursor at ``position`` reads.

        Index-free projection straight off the page directory — a heap
        scan's access pattern is perfectly predictable, which is what a
        sweep-ahead prefetcher feeds on.
        """
        return [page.page_id for page in self._pages[position : position + count]]

    def scan_pages(self, *, category: str = "data") -> Iterator[Page]:
        """Yield pages in physical order, priced as a sequential scan.

        Transient read errors are retried through the heap's retry
        policy and every fetched page is checksum-verified, so a scan
        either yields true content or raises a typed
        :class:`~repro.storage.errors.StorageError`.  With an
        :class:`~repro.storage.scheduler.IOScheduler` attached (and
        prefetching enabled), the scan keeps a window of async reads in
        flight ahead of its cursor so transfers overlap across the
        striped device queues.
        """
        scheduler = self.scheduler
        if scheduler is not None and scheduler.prefetch_depth > 0:
            yield from self._scan_pages_prefetched(scheduler, category)
            return
        source = scheduler if scheduler is not None else self.disk
        for page in self._pages:
            fetched, _ = read_page_resilient(
                source,
                page.page_id,
                policy=self.retry_policy,
                sequential=True,
                category=category,
            )
            yield fetched

    def _scan_pages_prefetched(
        self, scheduler: "IOScheduler", category: str
    ) -> Iterator[Page]:
        """The sweep-ahead variant of :meth:`scan_pages`.

        A corrupt prefetched page degrades exactly like a corrupt
        demand-fetched one: integrity is verified at claim time and the
        replica stack gets one chance to repair the primary in place
        before the error propagates.  A transient fault on the async
        attempt leaves the page to the demand path's normal retry loop.
        """
        outstanding: set[int] = set()
        next_submit = 1
        try:
            for position, page in enumerate(self._pages):
                page_id = page.page_id
                if page_id in outstanding:
                    outstanding.discard(page_id)
                    fetched = scheduler.claim(page_id)
                    try:
                        ensure_page_integrity(
                            fetched, context=f"prefetched read of page {page_id}"
                        )
                    except CorruptPageError:
                        if not self.disk.repair_page(page_id):
                            raise
                else:
                    fetched, _ = read_page_resilient(
                        scheduler,
                        page_id,
                        policy=self.retry_policy,
                        sequential=True,
                        category=category,
                    )
                # top up *after* the cursor's own read so submission
                # order stays strictly sequential (page 0 first) and the
                # disk's prefetch-window amortization is undisturbed
                next_submit = max(next_submit, position + 1)
                while (
                    len(outstanding) < scheduler.prefetch_depth
                    and next_submit < len(self._pages)
                ):
                    ahead = self._pages[next_submit].page_id
                    next_submit += 1
                    submitted = scheduler.submit(
                        ahead, sequential=True, category=category
                    )
                    if submitted is not None:
                        outstanding.add(ahead)
                yield fetched
        finally:
            for page_id in outstanding:
                scheduler.cancel(page_id)

    def drop(self) -> None:
        """Free all pages (used for temporary sort runs after merging)."""
        for page in self._pages:
            self.disk.free(page.page_id)
        for page in self._free:
            self.disk.free(page.page_id)
        self._pages.clear()
        self._free.clear()
        self._count = 0

    def _extend(self) -> None:
        if not self._free:
            self._free = self.disk.allocate_extent(self.extent_pages, self.page_capacity)
        self._pages.append(self._free.pop(0))
