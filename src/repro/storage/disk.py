"""A simulated hard disk with the ICDE'99 paper's cost model.

Section 4.1 of the paper prices I/O with two device constants: the
positioning time ``t_pi`` of a random access and the transfer time
``t_tau`` of one page, with the file system prefetching ``C`` consecutive
pages per positioning operation.  Reading ``k`` consecutive pages thus
costs ``ceil(k / C) * t_pi + k * t_tau``, while ``k`` random page accesses
cost ``k * (t_pi + t_tau)``.

:class:`SimulatedDisk` implements exactly that model and maintains a
simulated clock, so all reproduced experiments report deterministic
"response times" computed from the same formulas the paper uses, rather
than wall-clock noise.  Pages live in memory (this is a simulation), but
every access is routed through :meth:`read` / :meth:`write` so that access
*patterns* are identical to a disk-resident implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from .errors import MissingPageError, SimulatedCrashError
from .page import Page
from .stats import IOStats

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from .wal import WriteAheadLog


@dataclass(frozen=True)
class DiskParameters:
    """Device constants of the simulated disk.

    ``t_pi`` and ``t_tau`` are in seconds; ``prefetch`` is the number of
    consecutive pages fetched per positioning operation (the paper's ``C``).
    """

    t_pi: float = 0.010
    t_tau: float = 0.001
    prefetch: int = 16
    page_bytes: int = 8192

    def scan_cost(self, pages: int) -> float:
        """Cost of reading ``pages`` consecutive pages (paper's ``c_scan``)."""
        if pages <= 0:
            return 0.0
        seeks = -(-pages // self.prefetch)  # ceil division
        return seeks * self.t_pi + pages * self.t_tau

    def random_cost(self, pages: int) -> float:
        """Cost of ``pages`` independent random page accesses."""
        return pages * (self.t_pi + self.t_tau)


#: Parameters used for the analytic figures of Section 4.3.
ICDE99_ANALYSIS = DiskParameters(t_pi=0.010, t_tau=0.001, prefetch=16)

#: Parameters of the SUN Ultra SPARC II testbed of Section 5.
ICDE99_TESTBED = DiskParameters(t_pi=0.008, t_tau=0.0007, prefetch=16)


class SimulatedDisk:
    """Page store with physical addresses, prefetch modelling and a clock.

    Addresses are allocated monotonically; data structures that interleave
    their allocations (e.g. B+-tree splits during bulk load) therefore end
    up physically scattered, while a heap file that reserves extents stays
    consecutive — reproducing why a full table scan enjoys prefetching and
    an index-organized table does not.
    """

    def __init__(self, params: DiskParameters | None = None) -> None:
        self.params = params or ICDE99_ANALYSIS
        self.stats = IOStats()
        #: the write-ahead log journaling this disk's mutations, if one
        #: has been armed (:class:`~repro.storage.wal.WriteAheadLog`
        #: registers itself here; wrapper disks proxy the attribute)
        self.wal: "WriteAheadLog | None" = None
        self._pages: dict[int, Page] = {}
        self._next_address = 0
        # Sequential-read state: physical position of the head and how many
        # pages of the current prefetch window have been consumed.
        self._head_after_read = -2
        self._read_run = 0
        self._head_after_write = -2
        self._write_run = 0
        self._writes_total = 0
        self._write_crash_countdown: int | None = None

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def allocate(self, capacity: int) -> Page:
        """Allocate a single page at the next free physical address."""
        page = Page(self._next_address, capacity)
        self._pages[page.page_id] = page
        self._next_address += 1
        return page

    def allocate_extent(self, count: int, capacity: int) -> list[Page]:
        """Allocate ``count`` physically consecutive pages (a heap extent)."""
        return [self.allocate(capacity) for _ in range(count)]

    def free(self, page_id: int) -> None:
        """Release a page (temporary sort runs are freed after merging)."""
        self._pages.pop(page_id, None)

    @property
    def allocated_pages(self) -> int:
        return len(self._pages)

    def page_exists(self, page_id: int) -> bool:
        return page_id in self._pages

    def iter_pages(self) -> Iterator[Page]:
        """All allocated pages in allocation order (unaccounted; admin use)."""
        return iter(list(self._pages.values()))

    def repair_page(self, page_id: int) -> bool:
        """Restore a damaged page from redundancy, if any exists.

        The base disk has no redundancy and always reports failure;
        :class:`~repro.storage.replica.ReplicatedDisk` overrides this
        with replica-driven repair.  Callers (buffer pool, resilient
        reads) treat ``False`` as "the damage stands".
        """
        return False

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def clock(self) -> float:
        """Simulated elapsed time in seconds."""
        return self.stats.time

    def advance_clock(self, seconds: float) -> None:
        """Advance the clock without I/O (e.g. modelled CPU cost)."""
        self.stats.time += seconds

    def snapshot(self) -> IOStats:
        """Copy of the current statistics, for before/after differencing."""
        return self.stats.copy()

    # ------------------------------------------------------------------
    # the deterministic write-crash hook (crash-schedule exploration)
    # ------------------------------------------------------------------
    @property
    def write_count(self) -> int:
        """Total write attempts this disk has seen (crash-grid indexing)."""
        return self._writes_total

    def crash_after_writes(self, writes: int) -> None:
        """Raise :class:`SimulatedCrashError` on the ``writes``-th next
        write attempt (that write is *lost* from the accounting's point of
        view), then disarm — the data-disk analogue of
        :meth:`~repro.storage.wal.WriteAheadLog.crash_after_appends`, so
        the crash-schedule explorer can place a crash on every device of
        a transaction, not just its logs."""
        if writes < 1:
            raise ValueError("crash countdown must be >= 1")
        self._write_crash_countdown = writes

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def read(
        self,
        page_id: int,
        *,
        sequential: bool = False,
        category: str = "data",
        charge: bool = True,
    ) -> Page:
        """Fetch a page from disk.

        ``sequential=True`` marks the access as part of a scan: if it
        continues the current physical run and the prefetch window is not
        exhausted, no positioning cost is charged.  ``charge=False``
        records the access but prices it at zero — used for index-level
        pages, which the paper assumes to be resident in the DBMS cache.
        """
        try:
            page = self._pages[page_id]
        except KeyError:
            raise MissingPageError(f"no page at address {page_id}") from None

        bucket = self.stats.category(category)
        if not charge:
            bucket.unpriced_reads += 1
            return page

        bucket.pages_read += 1
        cost = self.params.t_tau
        contiguous = sequential and page_id == self._head_after_read + 1
        if contiguous and self._read_run < self.params.prefetch:
            self._read_run += 1
        else:
            cost += self.params.t_pi
            bucket.read_seeks += 1
            self._read_run = 1
        self._head_after_read = page_id
        # Any priced read moves the head, breaking a concurrent write run.
        self._head_after_write = -2
        self.stats.time += cost
        return page

    def write(
        self,
        page: Page,
        *,
        sequential: bool = False,
        category: str = "data",
    ) -> None:
        """Write a page back to disk, priced like a read."""
        if page.page_id not in self._pages:
            raise MissingPageError(f"no page at address {page.page_id}")
        self._writes_total += 1
        if self._write_crash_countdown is not None:
            self._write_crash_countdown -= 1
            if self._write_crash_countdown <= 0:
                self._write_crash_countdown = None
                raise SimulatedCrashError(
                    f"simulated crash: write #{self._writes_total} "
                    f"(page {page.page_id}) never reached the platter"
                )

        bucket = self.stats.category(category)
        bucket.pages_written += 1
        cost = self.params.t_tau
        contiguous = sequential and page.page_id == self._head_after_write + 1
        if contiguous and self._write_run < self.params.prefetch:
            self._write_run += 1
        else:
            cost += self.params.t_pi
            bucket.write_seeks += 1
            self._write_run = 1
        self._head_after_write = page.page_id
        self._head_after_read = -2
        self.stats.time += cost

    def peek(self, page_id: int) -> Page:
        """Access a page without any accounting (test/setup use only)."""
        try:
            return self._pages[page_id]
        except KeyError:
            raise MissingPageError(f"no page at address {page_id}") from None
