"""Disk pages.

A :class:`Page` is the unit of transfer between the simulated disk and the
buffer pool.  Record-bearing pages (heap pages, UB-Tree Z-region pages,
B+-tree leaves) keep their tuples in ``records`` and enforce a capacity in
records per page — the paper assumes roughly 80 LINEITEM tuples per 8 kB
page.  Structural pages (B+-tree inner nodes) store their node object in
``payload`` instead.
"""

from __future__ import annotations

import zlib
from typing import Any, Iterable, Iterator


class PageOverflowError(RuntimeError):
    """Raised when more records are placed on a page than its capacity allows."""


class Page:
    """A fixed-capacity disk page.

    Parameters
    ----------
    page_id:
        The physical address of the page on the simulated disk.
    capacity:
        Maximum number of records the page may hold.  ``payload``-only
        pages may pass ``capacity=0`` and never touch ``records``.
    """

    __slots__ = (
        "page_id",
        "capacity",
        "records",
        "payload",
        "version",
        "stored_checksum",
        "__weakref__",
    )

    def __init__(self, page_id: int, capacity: int) -> None:
        self.page_id = page_id
        self.capacity = capacity
        self.records: list[Any] = []
        self.payload: Any = None
        #: bumped on every record mutation; derived views of the page
        #: (e.g. the NumPy kernel backend's columnar cache) key on it
        self.version = 0
        #: CRC32 of the record content as of the last seal, or ``None``
        #: when the page has never been sealed.  Lazily maintained: the
        #: fault layer seals a page just before damaging it, so the
        #: fault-free path never computes a checksum and integrity
        #: verification costs a single ``is not None`` test.
        self.stored_checksum: int | None = None

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.records)

    @property
    def is_full(self) -> bool:
        return len(self.records) >= self.capacity

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self.records)

    def add(self, record: Any) -> None:
        """Append one record, enforcing the page capacity."""
        if self.is_full:
            raise PageOverflowError(
                f"page {self.page_id} is full ({self.capacity} records)"
            )
        self.records.append(record)
        self.version += 1

    def extend(self, records: Iterable[Any]) -> None:
        for record in records:
            self.add(record)

    def clear(self) -> None:
        self.records.clear()
        self.version += 1

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------
    def compute_checksum(self) -> int:
        """CRC32 over the current record content.

        ``repr`` of the records list is a stable, content-complete
        serialization for the plain-Python tuples the engine stores, and
        this is a simulation — the point is detecting the fault layer's
        damage, not surviving adversarial collisions.
        """
        return zlib.crc32(repr(self.records).encode("utf-8"))

    def seal_checksum(self) -> int:
        """Record the current content's checksum on the page."""
        self.stored_checksum = self.compute_checksum()
        return self.stored_checksum

    def verify_checksum(self) -> bool:
        """True if the content matches the sealed checksum (or no seal)."""
        return (
            self.stored_checksum is None
            or self.compute_checksum() == self.stored_checksum
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Page(id={self.page_id}, {len(self.records)}/{self.capacity} records)"
