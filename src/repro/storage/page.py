"""Disk pages.

A :class:`Page` is the unit of transfer between the simulated disk and the
buffer pool.  Record-bearing pages (heap pages, UB-Tree Z-region pages,
B+-tree leaves) keep their tuples in ``records`` and enforce a capacity in
records per page — the paper assumes roughly 80 LINEITEM tuples per 8 kB
page.  Structural pages (B+-tree inner nodes) store their node object in
``payload`` instead.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator


class PageOverflowError(RuntimeError):
    """Raised when more records are placed on a page than its capacity allows."""


class Page:
    """A fixed-capacity disk page.

    Parameters
    ----------
    page_id:
        The physical address of the page on the simulated disk.
    capacity:
        Maximum number of records the page may hold.  ``payload``-only
        pages may pass ``capacity=0`` and never touch ``records``.
    """

    __slots__ = ("page_id", "capacity", "records", "payload", "version", "__weakref__")

    def __init__(self, page_id: int, capacity: int) -> None:
        self.page_id = page_id
        self.capacity = capacity
        self.records: list[Any] = []
        self.payload: Any = None
        #: bumped on every record mutation; derived views of the page
        #: (e.g. the NumPy kernel backend's columnar cache) key on it
        self.version = 0

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.records)

    @property
    def is_full(self) -> bool:
        return len(self.records) >= self.capacity

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self.records)

    def add(self, record: Any) -> None:
        """Append one record, enforcing the page capacity."""
        if self.is_full:
            raise PageOverflowError(
                f"page {self.page_id} is full ({self.capacity} records)"
            )
        self.records.append(record)
        self.version += 1

    def extend(self, records: Iterable[Any]) -> None:
        for record in records:
            self.add(record)

    def clear(self) -> None:
        self.records.clear()
        self.version += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Page(id={self.page_id}, {len(self.records)}/{self.capacity} records)"
