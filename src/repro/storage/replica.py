"""K-way page replication with checksum-triggered repair.

:class:`ReplicatedDisk` wraps a :class:`~repro.storage.disk.SimulatedDisk`
(the same delegation pattern as :class:`~repro.storage.faults.FaultyDisk`)
and mirrors every acknowledged page write onto ``copies`` replica slots —
in-memory snapshots standing in for the redundant devices of a mirrored
volume.  Each copy carries its own CRC32, so a rotten replica is
detectable independently of the primary.

The payoff is :meth:`repair_page`: when a read trips a
:class:`~repro.storage.errors.CorruptPageError` (or the buffer pool wants
to re-admit a quarantined page), the caller asks the disk stack to repair
the primary.  Repair scans the replica slots in order, discards copies
whose own checksum fails, restores the first intact copy onto the primary
page, re-seals the primary's checksum, and reports success.  All repair
I/O is priced on the simulated clock and charged to the
``repair_reads``/``repair_delay`` fault counters — turning "degraded"
chaos outcomes back into "clean" is not free, just cheap.

Stacking order matters: the fault layer wraps *outside* the replica
layer (``FaultyDisk(ReplicatedDisk(SimulatedDisk()))``), so a torn or
corrupted primary never contaminates the replicas — exactly like a
mirror that received the full DMA transfer while the primary's platter
tore.  Payload-only pages (B+-tree inner nodes) are not replicated: the
fault model only damages record content, and their ``records`` list is
empty.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Iterator

from .. import invariants
from .disk import DiskParameters, SimulatedDisk
from .page import Page

__all__ = [
    "ReplicatedDisk",
    "ReplicaCopy",
]


@dataclass(frozen=True)
class ReplicaCopy:
    """One replica slot: a record snapshot plus its own checksum."""

    records: tuple
    checksum: int

    @property
    def intact(self) -> bool:
        return zlib.crc32(repr(list(self.records)).encode("utf-8")) == self.checksum

    @staticmethod
    def of(records: list) -> "ReplicaCopy":
        snapshot = tuple(records)
        return ReplicaCopy(
            records=snapshot,
            checksum=zlib.crc32(repr(list(snapshot)).encode("utf-8")),
        )


class ReplicatedDisk(SimulatedDisk):
    """A :class:`SimulatedDisk` wrapper mirroring writes onto k replicas.

    Interface-compatible with the wrapped disk: ``params`` and ``stats``
    are the inner disk's own objects, so clock and accounting are shared.
    Every acknowledged write of a record-bearing page snapshots its
    content into ``copies`` replica slots and charges ``copies * t_tau``
    of mirror transfer time (replica writes ride the same positioning as
    the primary, as on a RAID-1 pair).
    """

    def __init__(
        self,
        inner: SimulatedDisk | None = None,
        copies: int = 2,
        *,
        params: DiskParameters | None = None,
    ) -> None:
        if copies < 1:
            raise ValueError("a ReplicatedDisk needs at least one replica copy")
        # deliberately no super().__init__(): all disk state lives in
        # ``inner``; sharing its params/stats keeps the inherited
        # clock/snapshot methods correct without mirroring anything
        self.inner = inner if inner is not None else SimulatedDisk(params)
        self.params = self.inner.params
        self.stats = self.inner.stats
        self.copies = copies
        self._replicas: dict[int, list[ReplicaCopy]] = {}

    # ------------------------------------------------------------------
    # WAL registration proxies through to the base disk
    # ------------------------------------------------------------------
    @property
    def wal(self):  # type: ignore[override]
        return self.inner.wal

    @wal.setter
    def wal(self, value) -> None:
        self.inner.wal = value

    # ------------------------------------------------------------------
    # delegation
    # ------------------------------------------------------------------
    @property
    def allocated_pages(self) -> int:
        return self.inner.allocated_pages

    def allocate(self, capacity: int) -> Page:
        return self.inner.allocate(capacity)

    def allocate_extent(self, count: int, capacity: int) -> list[Page]:
        return self.inner.allocate_extent(count, capacity)

    def free(self, page_id: int) -> None:
        self._replicas.pop(page_id, None)
        self.inner.free(page_id)

    def page_exists(self, page_id: int) -> bool:
        return self.inner.page_exists(page_id)

    def peek(self, page_id: int) -> Page:
        return self.inner.peek(page_id)

    def iter_pages(self) -> Iterator[Page]:
        return self.inner.iter_pages()

    def read(
        self,
        page_id: int,
        *,
        sequential: bool = False,
        category: str = "data",
        charge: bool = True,
    ) -> Page:
        return self.inner.read(
            page_id, sequential=sequential, category=category, charge=charge
        )

    # ------------------------------------------------------------------
    # the replicated write path
    # ------------------------------------------------------------------
    def write(
        self,
        page: Page,
        *,
        sequential: bool = False,
        category: str = "data",
    ) -> None:
        self.inner.write(page, sequential=sequential, category=category)
        if not page.records:
            return  # payload-only pages carry nothing the fault model damages
        copy = ReplicaCopy.of(page.records)
        self._replicas[page.page_id] = [copy] * self.copies
        mirror_delay = self.copies * self.params.t_tau
        self.inner.advance_clock(mirror_delay)
        faults = self.stats.faults
        faults.replica_writes += self.copies
        faults.replica_delay += mirror_delay

    # ------------------------------------------------------------------
    # capture and repair
    # ------------------------------------------------------------------
    def replicated_page_ids(self) -> frozenset[int]:
        return frozenset(self._replicas)

    def capture_all(self) -> int:
        """Snapshot every record-bearing page into the replica store.

        Used after an unreplicated bulk load (e.g. a world built before
        replication was enabled): one sequential pass reads each page and
        mirrors it, priced as one scan plus ``copies`` mirror transfers
        per page.  Returns the number of pages captured.
        """
        captured = 0
        for page in self.inner.iter_pages():
            if not page.records:
                continue
            self._replicas[page.page_id] = [ReplicaCopy.of(page.records)] * self.copies
            captured += 1
        if captured:
            cost = self.params.scan_cost(captured) * (1 + self.copies)
            self.inner.advance_clock(cost)
            faults = self.stats.faults
            faults.replica_writes += captured * self.copies
            faults.replica_delay += cost
        self._validate()
        return captured

    def repair_page(self, page_id: int) -> bool:
        """Restore a damaged primary from the first intact replica.

        Each inspected replica slot costs one random access (the mirror
        device seeks and transfers); a successful repair costs one more
        to write the healed primary back.  Returns ``False`` when no
        replica exists or every copy has rotted — the damage stands and
        the caller's degradation path proceeds as before.
        """
        if not self.inner.page_exists(page_id):
            return False
        slots = self._replicas.get(page_id)
        if not slots:
            return False
        faults = self.stats.faults
        for copy in slots:
            read_cost = self.params.random_cost(1)
            self.inner.advance_clock(read_cost)
            faults.repair_reads += 1
            faults.repair_delay += read_cost
            if not copy.intact:
                continue
            page = self.inner.peek(page_id)
            page.records = list(copy.records)
            page.version += 1
            page.seal_checksum()
            write_cost = self.params.random_cost(1)
            self.inner.advance_clock(write_cost)
            faults.repair_delay += write_cost
            faults.repaired_pages += 1
            self._validate()
            return True
        return False

    def corrupt_replica(self, page_id: int, slot: int = 0) -> None:
        """Test hook: rot one replica copy (its checksum stops matching)."""
        slots = self._replicas.get(page_id)
        if slots is None or not 0 <= slot < len(slots):
            raise KeyError(f"no replica slot {slot} for page {page_id}")
        old = slots[slot]
        slots[slot] = ReplicaCopy(
            records=(*old.records, ("__replica_rot__", page_id, slot)),
            checksum=old.checksum,
        )

    def _validate(self) -> None:
        if invariants.enabled():
            invariants.validate_replicated_disk(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ReplicatedDisk copies={self.copies} "
            f"pages={len(self._replicas)} over {self.inner!r}>"
        )
