"""Retry with capped exponential backoff, priced on the simulated clock.

A transient read error (see :mod:`repro.storage.faults`) is retried a
bounded number of times; every backoff delay is charged to the simulated
disk clock via :meth:`~repro.storage.disk.SimulatedDisk.advance_clock`,
never to the host wall clock — reprolint rule R001 stays clean and every
chaos run replays with bit-identical "response times".

Reprolint rule R006 requires every retry loop in the engine to route
through a :class:`RetryPolicy` (its ``delays()`` schedule) instead of
hand-rolling attempt counting; :func:`read_page_resilient` is the shared
loop used by the heap scan and the external sort, and
:meth:`repro.storage.buffer.BufferPool.get` inlines the same shape to
couple it with per-page quarantine accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from .errors import CorruptPageError, TransientIOError, ensure_page_integrity

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from .disk import SimulatedDisk
    from .page import Page
    from .scheduler import IOScheduler

__all__ = [
    "DEFAULT_RETRY_POLICY",
    "NO_RETRY",
    "RetryPolicy",
    "read_page_resilient",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for transient storage errors.

    ``max_retries`` extra attempts follow a failed first attempt; the
    ``k``-th retry waits ``min(base_delay * multiplier**k, max_delay)``
    seconds of *simulated* time.
    """

    max_retries: int = 2
    base_delay: float = 0.002
    multiplier: float = 2.0
    max_delay: float = 0.050

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("backoff multiplier must be >= 1")

    def delays(self) -> Iterator[float]:
        """The capped backoff schedule, one delay per permitted retry."""
        delay = self.base_delay
        for _ in range(self.max_retries):
            yield min(delay, self.max_delay)
            delay *= self.multiplier


#: engine-wide default: up to two retries, 2 ms then 4 ms of backoff
DEFAULT_RETRY_POLICY = RetryPolicy()

#: fail fast (used by tests that want the first error to surface)
NO_RETRY = RetryPolicy(max_retries=0)


def read_page_resilient(
    disk: "SimulatedDisk | IOScheduler",
    page_id: int,
    *,
    policy: RetryPolicy,
    sequential: bool = False,
    category: str = "data",
    charge: bool = True,
) -> "tuple[Page, int]":
    """Read one page, retrying transient errors per ``policy``.

    ``disk`` may be the disk stack itself or an
    :class:`~repro.storage.scheduler.IOScheduler` fronting it, in which
    case the demand read flows through the scheduler's device queues
    (claiming an in-flight prefetch of the page if one exists).

    Returns ``(page, retries_used)``.  Backoff delays are charged to the
    simulated clock and recorded in ``disk.stats.faults``; a page that
    carries a checksum is verified before it is returned
    (:class:`~repro.storage.errors.CorruptPageError` on mismatch —
    corruption is never retried, the bits will not heal, but a disk
    stack with replicas gets one chance to repair the primary in place
    before the error propagates).
    """
    delays = policy.delays()
    retries = 0
    while True:
        try:
            page = disk.read(
                page_id, sequential=sequential, category=category, charge=charge
            )
        except TransientIOError:
            delay = next(delays, None)
            if delay is None:
                raise
            faults = disk.stats.faults
            faults.retries += 1
            faults.retry_delay += delay
            disk.advance_clock(delay)
            retries += 1
            continue
        try:
            ensure_page_integrity(page, context=f"read of page {page_id}")
        except CorruptPageError:
            if not disk.repair_page(page_id):
                raise
            # the primary was healed from a replica and re-sealed; the
            # already-fetched page object is the healed one (pages are
            # shared in-memory objects on the simulated disk)
        return page, retries
