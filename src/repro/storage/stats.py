"""I/O accounting for the simulated disk.

The paper's evaluation (Section 4.1) prices every query as a sequence of
random page accesses (``t_pi`` each) and page transfers (``t_tau`` each),
with a prefetch window of ``C`` pages amortizing the positioning cost of
sequential scans.  :class:`IOStats` records the raw access counts so that
experiments can report both counted I/O and simulated elapsed time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace


@dataclass
class CategoryStats:
    """Access counts for one I/O category (``data``, ``index``, ``temp``)."""

    pages_read: int = 0
    pages_written: int = 0
    read_seeks: int = 0
    write_seeks: int = 0
    unpriced_reads: int = 0

    def copy(self) -> "CategoryStats":
        return CategoryStats(
            pages_read=self.pages_read,
            pages_written=self.pages_written,
            read_seeks=self.read_seeks,
            write_seeks=self.write_seeks,
            unpriced_reads=self.unpriced_reads,
        )

    def __sub__(self, other: "CategoryStats") -> "CategoryStats":
        return CategoryStats(
            pages_read=self.pages_read - other.pages_read,
            pages_written=self.pages_written - other.pages_written,
            read_seeks=self.read_seeks - other.read_seeks,
            write_seeks=self.write_seeks - other.write_seeks,
            unpriced_reads=self.unpriced_reads - other.unpriced_reads,
        )


@dataclass
class FaultStats:
    """Counters for injected faults and the engine's resilience responses.

    Populated by :class:`~repro.storage.faults.FaultyDisk` (injection
    side) and by the retry/quarantine/WAL/replica machinery (response
    side); all zero on a fault-free run.  The ``*_delay`` fields are
    simulated seconds already folded into :attr:`IOStats.time`.

    Durability counters:

    * ``wal_appends`` / ``wal_delay`` — write-ahead-log records forced to
      the log device and the simulated time the engine waited for them;
    * ``wal_reforced`` — log forces re-issued after the fault layer tore
      the log page (the verified-force loop detected and repaired it);
    * ``wal_rollbacks`` — aborted WAL batches (explicit or crash-driven);
    * ``wal_redo_pages`` — pages healed by redo during recovery;
    * ``replica_writes`` / ``replica_delay`` — replica copies written by
      the :class:`~repro.storage.replica.ReplicatedDisk` mirror;
    * ``repair_reads`` / ``repaired_pages`` / ``repair_delay`` — replica
      inspections and successful primary-page repairs;
    * ``quarantine_lifted`` — buffer-pool quarantines removed after a
      successful repair.
    """

    transient_errors: int = 0
    corrupt_reads: int = 0
    torn_writes: int = 0
    latency_spikes: int = 0
    latency_delay: float = 0.0
    retries: int = 0
    retry_delay: float = 0.0
    quarantined_pages: int = 0
    wal_appends: int = 0
    wal_delay: float = 0.0
    wal_reforced: int = 0
    wal_rollbacks: int = 0
    wal_redo_pages: int = 0
    replica_writes: int = 0
    replica_delay: float = 0.0
    repair_reads: int = 0
    repaired_pages: int = 0
    repair_delay: float = 0.0
    quarantine_lifted: int = 0

    def copy(self) -> "FaultStats":
        return replace(self)

    def __sub__(self, other: "FaultStats") -> "FaultStats":
        return FaultStats(
            **{
                f.name: getattr(self, f.name) - getattr(other, f.name)
                for f in fields(self)
            }
        )

    @property
    def total_injected(self) -> int:
        """Number of faults the plan actually fired."""
        return (
            self.transient_errors
            + self.corrupt_reads
            + self.torn_writes
            + self.latency_spikes
        )


@dataclass
class PrefetchStats:
    """Counters of the sweep-ahead prefetch / multi-queue scheduler layer.

    Populated by :class:`~repro.storage.scheduler.IOScheduler` (queue
    occupancy and async-read lifecycle) and consumed by the buffer pool's
    accounting invariant; all zero when no scheduler is armed.

    * ``prefetch_issued`` — async reads submitted ahead of demand;
    * ``prefetch_hits`` — demand lookups served by an in-flight or
      completed prefetch (the overlap actually paid off);
    * ``prefetch_wasted`` — prefetched pages cancelled or evicted before
      any demand arrived (mispredicted sweep, or a failed async attempt);
    * ``queue_busy_time`` — simulated seconds of device-queue occupancy,
      summed over all queues (service time, regardless of overlap);
    * ``queue_wait_time`` — simulated seconds demand reads stalled
      waiting for an in-flight transfer to complete.
    """

    prefetch_issued: int = 0
    prefetch_hits: int = 0
    prefetch_wasted: int = 0
    queue_busy_time: float = 0.0
    queue_wait_time: float = 0.0

    def copy(self) -> "PrefetchStats":
        return replace(self)

    def __sub__(self, other: "PrefetchStats") -> "PrefetchStats":
        return PrefetchStats(
            **{
                f.name: getattr(self, f.name) - getattr(other, f.name)
                for f in fields(self)
            }
        )


@dataclass
class IOStats:
    """Aggregate statistics of a :class:`~repro.storage.disk.SimulatedDisk`.

    ``time`` is simulated elapsed time in seconds; all other fields count
    page-granularity events.  Statistics are split per category so that
    experiments can separate base-table I/O from temporary (sort run) I/O,
    mirroring the paper's separate reporting of response time and temporary
    storage.
    """

    time: float = 0.0
    categories: dict[str, CategoryStats] = field(default_factory=dict)
    faults: FaultStats = field(default_factory=FaultStats)
    prefetch: PrefetchStats = field(default_factory=PrefetchStats)

    def category(self, name: str) -> CategoryStats:
        """Return (creating if needed) the statistics bucket for ``name``."""
        if name not in self.categories:
            self.categories[name] = CategoryStats()
        return self.categories[name]

    @property
    def pages_read(self) -> int:
        return sum(c.pages_read for c in self.categories.values())

    @property
    def pages_written(self) -> int:
        return sum(c.pages_written for c in self.categories.values())

    @property
    def read_seeks(self) -> int:
        return sum(c.read_seeks for c in self.categories.values())

    @property
    def write_seeks(self) -> int:
        return sum(c.write_seeks for c in self.categories.values())

    @property
    def seeks(self) -> int:
        return self.read_seeks + self.write_seeks

    def copy(self) -> "IOStats":
        return IOStats(
            time=self.time,
            categories={name: c.copy() for name, c in self.categories.items()},
            faults=self.faults.copy(),
            prefetch=self.prefetch.copy(),
        )

    def __sub__(self, other: "IOStats") -> "IOStats":
        """Difference of two snapshots (``later - earlier``)."""
        names = set(self.categories) | set(other.categories)
        empty = CategoryStats()
        return IOStats(
            time=self.time - other.time,
            categories={
                name: self.categories.get(name, empty) - other.categories.get(name, empty)
                for name in names
            },
            faults=self.faults - other.faults,
            prefetch=self.prefetch - other.prefetch,
        )

    def summary(self) -> str:
        """One-line human-readable summary, handy in benchmark output."""
        parts = [f"time={self.time:.3f}s", f"read={self.pages_read}p/{self.read_seeks}seeks"]
        if self.pages_written:
            parts.append(f"write={self.pages_written}p/{self.write_seeks}seeks")
        if self.faults.total_injected:
            parts.append(
                f"faults={self.faults.total_injected}/{self.faults.retries}retries"
            )
        if self.prefetch.prefetch_issued:
            parts.append(
                f"prefetch={self.prefetch.prefetch_hits}hit/"
                f"{self.prefetch.prefetch_wasted}wasted"
            )
        return " ".join(parts)
