"""Typed storage errors and page-integrity verification.

The engine's storage layer reports failures through one explicit
hierarchy instead of bare ``KeyError``/``RuntimeError``:

``StorageError``
    Root of every storage-layer failure.  The plan executor catches this
    (and only this) to trigger graceful degradation onto a surviving
    physical instance — anything else is a bug and must propagate.

``MissingPageError``
    A page address that is not allocated on the simulated disk.  Also
    subclasses ``KeyError`` so callers that historically caught the bare
    dict error keep working.

``TransientIOError``
    A read attempt that failed but may succeed on retry (injected by
    :class:`~repro.storage.faults.FaultyDisk`).  The buffer pool and the
    heap scan retry these through a
    :class:`~repro.storage.retry.RetryPolicy` with backoff charged to
    the *simulated* clock.

``CorruptPageError``
    A page whose content no longer matches its stored checksum.  Never
    retried — the data is gone; the page is quarantined and the plan
    degrades.

``QuarantinedPageError``
    An access to a page the buffer pool has given up on after repeated
    failures.  Raised without touching the disk.

``SimulatedCrashError``
    A deterministic crash hook fired mid-batch — the write-ahead log's
    :meth:`~repro.storage.wal.AppendOnlyLog.crash_after_appends` or the
    simulated disk's
    :meth:`~repro.storage.disk.SimulatedDisk.crash_after_writes`.
    Used by durability tests and the crash-schedule explorer to prove
    that an interrupted transaction recovers from the logs alone.

``LogDeviceError``
    A log device refused to durably accept a force after the verified
    write-verify-rewrite loop exhausted its bounded attempts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from .page import Page

__all__ = [
    "CorruptPageError",
    "LogDeviceError",
    "MissingPageError",
    "QuarantinedPageError",
    "SimulatedCrashError",
    "StorageError",
    "TransientIOError",
    "ensure_page_integrity",
]


class StorageError(Exception):
    """Root of all typed storage-layer failures."""


class MissingPageError(StorageError, KeyError):
    """No page is allocated at the requested address.

    Subclasses ``KeyError`` for backward compatibility with callers that
    treated the simulated disk as a dictionary.
    """

    def __str__(self) -> str:
        # KeyError.__str__ reprs the argument; keep the plain message
        return Exception.__str__(self)


class TransientIOError(StorageError):
    """A read failed in a way that may succeed when retried."""


class CorruptPageError(StorageError):
    """A page's content does not match its stored checksum."""


class QuarantinedPageError(StorageError):
    """The page exceeded its failure budget and is quarantined."""


class SimulatedCrashError(StorageError):
    """A deterministic crash hook fired (durability testing only)."""


class LogDeviceError(StorageError):
    """A log force could not land intact within its bounded retries."""


def ensure_page_integrity(page: "Page", *, context: str = "read") -> None:
    """Verify ``page`` against its stored checksum, if it carries one.

    Pages only carry a checksum once one has been sealed (the fault
    layer seals before corrupting, and on every faulted write), so the
    fault-free hot path pays exactly one ``is not None`` test here.
    """
    if page.stored_checksum is not None and not page.verify_checksum():
        raise CorruptPageError(
            f"checksum mismatch on page {page.page_id} during {context}: "
            f"stored 0x{page.stored_checksum:08x}, "
            f"computed 0x{page.compute_checksum():08x}"
        )
