"""A simulated multi-queue I/O scheduler: striped devices, overlapped reads.

The Tetris sweep makes future page accesses *predictable*, which is
worthless on a single synchronous device: every read still serializes
behind the previous one.  :class:`IOScheduler` models what a real engine
buys with that predictability — ``devices`` independent disk queues over
which pages are striped (``page_id % devices``), so asynchronous reads
submitted ahead of the sweep overlap with each other and with compute.

The model keeps the paper's Section 4.1 cost formulas untouched: every
access is still priced by the wrapped disk stack (``t_pi``/``t_tau``,
prefetch windows, fault latency, replica mirror delay).  The scheduler
merely redistributes *when* that service time elapses: the priced cost of
a read occupies one device queue starting at ``max(now, queue_free)``,
and the simulated clock only advances when someone actually *waits* for
the transfer — a demand read, or a claim of an in-flight prefetch.  The
elapsed time of a scan therefore becomes ``max`` over per-queue busy
intervals (plus any unoverlapped compute) instead of the sum of all
service times.  With ``devices=1`` and no prefetching the redistribution
is an identity: each synchronous read starts on an idle queue at ``now``
and the clock lands exactly where the bare disk would have put it, which
the scheduler parity tests assert.

Fault/WAL/replica compatibility falls out of delegation: the scheduler
calls ``disk.read`` on the *top* of the wrapper stack, so transient
faults still raise (and charge) exactly as before, corrupt pages are
returned for the caller's integrity check (a prefetched page is verified
at claim time, not at submit time), and latency spikes simply lengthen
the queue occupancy of that one transfer.
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING

from ..invariants.sanitizer import guarded_by, tracked_lock
from .errors import MissingPageError, TransientIOError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from .disk import SimulatedDisk
    from .page import Page
    from .stats import IOStats

__all__ = [
    "IOScheduler",
    "armed_scheduler_count",
]

#: IOScheduler instances with prefetching enabled, so the benchmark guard
#: can refuse to time a process whose page-access interleaving (and
#: simulated clock) is being reshaped by async reads — mirrors the
#: REPRO_CHECKS and armed-FaultyDisk guards
_ARMED: "weakref.WeakSet[IOScheduler]" = weakref.WeakSet()


def armed_scheduler_count() -> int:
    """Number of live schedulers with a non-zero prefetch depth."""
    return len(_ARMED)


@guarded_by("_lock", "_inflight", "_free_at")
class IOScheduler:
    """``devices`` independent queues over one (stacked) simulated disk.

    The in-flight table and per-device drain times are guarded by the
    ``io-scheduler`` lock — ranked *after* ``buffer-pool`` in the global
    lock order, because the pool issues reads and submits prefetches
    while holding its own lock.

    Parameters
    ----------
    disk:
        Top of the disk wrapper stack (fault/replica layers included) —
        all reads delegate to it, so injection and pricing are unchanged.
    devices:
        Number of independent device queues pages are striped across.
    prefetch_depth:
        Advisory bound on outstanding async reads per consumer; ``0``
        disables prefetching (the sweep layers then never submit).
    """

    def __init__(
        self,
        disk: "SimulatedDisk",
        devices: int = 1,
        *,
        prefetch_depth: int = 0,
    ) -> None:
        if devices < 1:
            raise ValueError("scheduler needs at least one device queue")
        if prefetch_depth < 0:
            raise ValueError("prefetch depth must be >= 0")
        self._lock = tracked_lock("io-scheduler")
        self.disk = disk
        self.devices = devices
        self.prefetch_depth = prefetch_depth
        #: absolute simulated time at which each device queue drains
        self._free_at = [0.0] * devices
        #: in-flight async reads: page_id -> (ready_at, fetched page)
        self._inflight: "dict[int, tuple[float, Page]]" = {}
        if prefetch_depth > 0:
            _ARMED.add(self)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def device_of(self, page_id: int) -> int:
        """The device queue a page is striped onto."""
        return page_id % self.devices

    def pending(self, page_id: int) -> float | None:
        """Ready time of an in-flight async read, or ``None``."""
        entry = self._inflight.get(page_id)
        return entry[0] if entry is not None else None

    @property
    def inflight_count(self) -> int:
        return len(self._inflight)

    @property
    def inflight_page_ids(self) -> frozenset[int]:
        return frozenset(self._inflight)

    def queue_free_times(self) -> list[float]:
        """Per-device drain times (absolute simulated seconds)."""
        return list(self._free_at)

    def queue_backlog(self) -> float:
        """Service time still queued ahead of ``now``, summed over devices.

        The overlap a sweep (or a join's dual-cursor policy) has banked:
        transfers already paid for that the clock has not waited out yet.
        Zero on an idle scheduler — and always zero without prefetching,
        since demand reads wait their own transfer out immediately.
        """
        now = self.disk.stats.time
        return sum(max(0.0, free - now) for free in self._free_at)

    # ------------------------------------------------------------------
    # disk-stack delegation — the scheduler is a drop-in page source for
    # the shared retry loop (read through the queues, everything else
    # straight to the wrapped stack)
    # ------------------------------------------------------------------
    @property
    def stats(self) -> "IOStats":
        return self.disk.stats

    def advance_clock(self, seconds: float) -> None:
        self.disk.advance_clock(seconds)

    def repair_page(self, page_id: int) -> bool:
        return self.disk.repair_page(page_id)

    # ------------------------------------------------------------------
    # the queue model
    # ------------------------------------------------------------------
    def _occupy(self, page_id: int, start_floor: float, cost: float) -> float:
        """Occupy the page's queue for ``cost`` seconds; return ready time."""
        queue = page_id % self.devices
        start = max(start_floor, self._free_at[queue])
        ready = start + cost
        self._free_at[queue] = ready
        self.disk.stats.prefetch.queue_busy_time += cost
        return ready

    def _wait_until(self, ready: float) -> None:
        stats = self.disk.stats
        wait = ready - stats.time
        if wait > 0:
            stats.prefetch.queue_wait_time += wait
            self.disk.advance_clock(wait)

    # ------------------------------------------------------------------
    # synchronous (demand) reads
    # ------------------------------------------------------------------
    def read(
        self,
        page_id: int,
        *,
        sequential: bool = False,
        category: str = "data",
        charge: bool = True,
    ) -> "Page":
        """Demand-read a page through its device queue.

        An in-flight async read of the same page is *claimed* instead of
        re-issued: the caller waits (at most) for the remaining transfer
        time and the overlap is recorded as a prefetch hit.  Transient
        faults propagate exactly as from the bare disk — the failed
        attempt's charge stays on the global clock and no queue state
        changes, so retry semantics are unchanged.
        """
        with self._lock:
            entry = self._inflight.pop(page_id, None)
            if entry is not None:
                ready, page = entry
                self._wait_until(ready)
                self.disk.stats.prefetch.prefetch_hits += 1
                return page
            stats = self.disk.stats
            start = stats.time
            page = self.disk.read(
                page_id, sequential=sequential, category=category, charge=charge
            )
            cost = stats.time - start
            if cost <= 0:
                return page  # unpriced (index-cache) read: no queue occupancy
            stats.time = start
            ready = self._occupy(page_id, start, cost)
            self._wait_until(ready)
            return page

    # ------------------------------------------------------------------
    # asynchronous (prefetch) reads
    # ------------------------------------------------------------------
    def submit(
        self,
        page_id: int,
        *,
        sequential: bool = False,
        category: str = "data",
        charge: bool = True,
    ) -> "Page | None":
        """Issue an async read ahead of demand; returns the fetched page.

        The transfer occupies the page's device queue but the caller does
        not wait — the clock is untouched, which is the whole point.  A
        transient fault on the async attempt returns ``None`` (the queue
        still spun for the failed attempt, and the later demand read runs
        the normal retry path); the page content is *not* integrity-
        checked here — corruption must surface at claim time with
        exactly the demand-path semantics.
        """
        with self._lock:
            entry = self._inflight.get(page_id)
            if entry is not None:
                return entry[1]
            stats = self.disk.stats
            start = stats.time
            stats.prefetch.prefetch_issued += 1
            try:
                page = self.disk.read(
                    page_id, sequential=sequential, category=category, charge=charge
                )
            except TransientIOError:
                cost = stats.time - start
                stats.time = start
                if cost > 0:
                    self._occupy(page_id, start, cost)
                stats.prefetch.prefetch_wasted += 1
                return None
            cost = stats.time - start
            stats.time = start
            ready = self._occupy(page_id, start, cost) if cost > 0 else start
            self._inflight[page_id] = (ready, page)
            return page

    def claim(self, page_id: int) -> "Page":
        """Consume an in-flight async read, waiting out its remaining time."""
        with self._lock:
            entry = self._inflight.pop(page_id, None)
            if entry is None:
                raise MissingPageError(
                    f"no in-flight read of page {page_id} to claim"
                )
            ready, page = entry
            self._wait_until(ready)
            self.disk.stats.prefetch.prefetch_hits += 1
            return page

    def cancel(self, page_id: int) -> bool:
        """Drop an in-flight async read whose demand will never come.

        The service time already spent on the queue stands (the device
        really did the work); the page is accounted as a wasted prefetch.
        """
        with self._lock:
            if self._inflight.pop(page_id, None) is None:
                return False
            self.disk.stats.prefetch.prefetch_wasted += 1
            return True

    def cancel_all(self) -> int:
        """Cancel every in-flight read (end of a scan, cache drop)."""
        cancelled = 0
        for page_id in list(self._inflight):
            if self.cancel(page_id):
                cancelled += 1
        return cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<IOScheduler devices={self.devices} "
            f"depth={self.prefetch_depth} inflight={len(self._inflight)}>"
        )
