"""Simulated storage substrate: disk, pages, buffer pool, heap files.

This package replaces the paper's physical testbed (Oracle 8 on a disk
array) with a deterministic simulation that prices I/O using the exact
cost model of Section 4.1 — positioning time ``t_pi``, transfer time
``t_tau`` and a prefetch window of ``C`` pages.
"""

from .buffer import BufferPool
from .disk import ICDE99_ANALYSIS, ICDE99_TESTBED, DiskParameters, SimulatedDisk
from .heap import HeapFile
from .page import Page, PageOverflowError
from .stats import CategoryStats, IOStats

__all__ = [
    "BufferPool",
    "CategoryStats",
    "DiskParameters",
    "HeapFile",
    "ICDE99_ANALYSIS",
    "ICDE99_TESTBED",
    "IOStats",
    "Page",
    "PageOverflowError",
    "SimulatedDisk",
]
