"""Simulated storage substrate: disk, pages, buffer pool, heap files.

This package replaces the paper's physical testbed (Oracle 8 on a disk
array) with a deterministic simulation that prices I/O using the exact
cost model of Section 4.1 — positioning time ``t_pi``, transfer time
``t_tau`` and a prefetch window of ``C`` pages.

The resilience layer lives here too: typed storage errors
(:mod:`~repro.storage.errors`), retry policies priced on the simulated
clock (:mod:`~repro.storage.retry`) and deterministic fault injection
(:mod:`~repro.storage.faults`).  The durability layer completes it:
a simulated-clock write-ahead log with redo recovery
(:mod:`~repro.storage.wal`) and k-way page replication with
checksum-triggered repair (:mod:`~repro.storage.replica`).
"""

from .buffer import BufferPool
from .disk import ICDE99_ANALYSIS, ICDE99_TESTBED, DiskParameters, SimulatedDisk
from .errors import (
    CorruptPageError,
    LogDeviceError,
    MissingPageError,
    QuarantinedPageError,
    SimulatedCrashError,
    StorageError,
    TransientIOError,
    ensure_page_integrity,
)
from .faults import FaultPlan, FaultyDisk, armed_disk_count
from .heap import HeapFile
from .page import Page, PageOverflowError
from .prefetch import LookaheadCursor, SweepEvictionPolicy, SweepPrefetcher
from .replica import ReplicaCopy, ReplicatedDisk
from .retry import DEFAULT_RETRY_POLICY, NO_RETRY, RetryPolicy, read_page_resilient
from .scheduler import IOScheduler, armed_scheduler_count
from .stats import CategoryStats, FaultStats, IOStats, PrefetchStats
from .wal import (
    AppendOnlyLog,
    RecoveryEvent,
    RecoveryReport,
    WALRecord,
    WriteAheadLog,
    active_wal,
    register_recovery_observer,
    unregister_recovery_observer,
)

__all__ = [
    "AppendOnlyLog",
    "BufferPool",
    "CategoryStats",
    "CorruptPageError",
    "DEFAULT_RETRY_POLICY",
    "DiskParameters",
    "FaultPlan",
    "FaultStats",
    "FaultyDisk",
    "HeapFile",
    "ICDE99_ANALYSIS",
    "ICDE99_TESTBED",
    "IOScheduler",
    "IOStats",
    "LogDeviceError",
    "LookaheadCursor",
    "MissingPageError",
    "NO_RETRY",
    "Page",
    "PageOverflowError",
    "PrefetchStats",
    "QuarantinedPageError",
    "RecoveryEvent",
    "RecoveryReport",
    "ReplicaCopy",
    "ReplicatedDisk",
    "RetryPolicy",
    "SimulatedCrashError",
    "SimulatedDisk",
    "StorageError",
    "SweepEvictionPolicy",
    "SweepPrefetcher",
    "TransientIOError",
    "WALRecord",
    "WriteAheadLog",
    "active_wal",
    "armed_disk_count",
    "armed_scheduler_count",
    "ensure_page_integrity",
    "read_page_resilient",
    "register_recovery_observer",
    "unregister_recovery_observer",
]
