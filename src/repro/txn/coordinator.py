"""Two-phase commit over the per-shard write-ahead logs.

A :class:`TransactionCoordinator` attaches to a
:class:`~repro.shard.ShardedDatabase` whose every copy runs a WAL, and
makes multi-shard writes (bulk loads, insert batches) atomic across
those ``k × r`` independent logs:

1. **work** — every participant opens a WAL batch under the global
   transaction id (gid) and applies its slab of the write;
2. **prepare** — every participant forces a ``prepare`` record and
   moves its batch into the in-doubt state (before-images held, new
   batches refused);
3. **decide** — the coordinator forces ``prepare`` then ``decision``
   records onto its own :class:`~repro.txn.log.DecisionLog`.  The
   commit-decision force is *the* commit point of the protocol;
4. **apply** — every participant commits (or rolls back) its prepared
   batch; the coordinator forces an ``ack`` once all have applied.

Any failure before the commit point aborts everywhere — and a crash
before it needs no decision record at all, because participants
**presume abort** for a prepared gid the decision log does not vouch
for.  Any crash after the commit point is driven forward by
:meth:`TransactionCoordinator.recover`, which replays the decision log
and re-commits every in-doubt participant.  The deterministic crash
hooks on every device (coordinator log, shard WALs, shard data disks)
let the crash-schedule explorer (``tools.crashgrid``) prove both halves
at every single append index.

In-memory state follows the same discipline the engine's journaled
mutations use: the participant layer snapshots each table's tree
descriptors when its batch opens and restores them on any abort path,
since the WAL rolls back page content only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from .. import invariants
from ..storage.disk import DiskParameters
from ..storage.errors import SimulatedCrashError, StorageError
from ..storage.faults import FaultPlan
from ..storage.retry import RetryPolicy
from ..storage.wal import RecoveryReport
from .errors import CoordinatorStateError, TxnAbortedError
from .events import TxnEvent, _emit
from .log import DecisionLog

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..shard import RowSource, ShardedDatabase
    from ..relational.table import Row

__all__ = [
    "TransactionCoordinator",
    "TxnRecoveryReport",
    "TxnResult",
]

#: participant id: (shard index, copy index)
Pid = tuple[int, int]


@dataclass(frozen=True)
class TxnResult:
    """Outcome of one committed global transaction."""

    gid: str
    verdict: str
    rows: int  #: total rows in the sharded database after the verdict
    participants: tuple[str, ...]


@dataclass(frozen=True)
class TxnRecoveryReport:
    """What one coordinator-driven recovery pass did, across all logs."""

    participant_reports: tuple[RecoveryReport, ...]
    resolved_commits: int
    resolved_aborts: int
    reacked: tuple[str, ...]
    total_rows: int

    def describe(self) -> str:
        return (
            f"txn recovery: {len(self.participant_reports)} participant "
            f"log(s) replayed, in-doubt resolved {self.resolved_commits} "
            f"commit / {self.resolved_aborts} presumed-abort, "
            f"{len(self.reacked)} decision(s) re-acked, "
            f"{self.total_rows} rows"
        )


class TransactionCoordinator:
    """2PC coordinator for one :class:`~repro.shard.ShardedDatabase`."""

    def __init__(
        self,
        sdb: "ShardedDatabase",
        *,
        params: DiskParameters | None = None,
        records_per_page: int = 64,
        log_fault_plan: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
        log_name: str = "txn-log",
    ) -> None:
        self.sdb = sdb
        self.log = DecisionLog(
            params if params is not None else sdb.params,
            records_per_page=records_per_page,
            name=log_name,
            fault_plan=log_fault_plan,
            retry_policy=retry_policy,
        )
        self._seq = 0
        #: gid of the transaction currently in flight (or crashed);
        #: cleared by commit, completed abort, or :meth:`recover`
        self._active_gid: str | None = None
        sdb.attach_coordinator(self)

    # ------------------------------------------------------------------
    # the public write API
    # ------------------------------------------------------------------
    def atomic_load(self, source: "RowSource", *, fill: float = 1.0) -> TxnResult:
        """Bulk-load every shard copy as one global transaction."""
        return self._two_phase(
            "load",
            lambda pid: self.sdb.load_participant(pid, source, fill=fill),
        )

    def atomic_insert(self, rows: "list[Row]") -> TxnResult:
        """Insert a batch of rows, all shards or none."""
        rows = list(rows)
        return self._two_phase(
            "insert",
            lambda pid: self.sdb.insert_participant(pid, rows),
        )

    # ------------------------------------------------------------------
    # the protocol
    # ------------------------------------------------------------------
    def _two_phase(
        self, label: str, work: "Callable[[Pid], int]"
    ) -> TxnResult:
        if self._active_gid is not None:
            raise CoordinatorStateError(
                f"transaction {self._active_gid!r} is still in flight; "
                "commit/abort it or run recover() first"
            )
        gid = f"{label}#{self._seq}"
        self._seq += 1
        self._active_gid = gid
        pids = self.sdb.participant_ids()
        names = tuple(self.sdb.participant_name(pid) for pid in pids)
        _emit(
            TxnEvent(
                gid=gid, phase="begin", detail=f"{len(pids)} participant(s)"
            )
        )
        begun: list[Pid] = []
        try:
            # phase 1a: work, one open WAL batch per participant
            for pid in pids:
                self.sdb.begin_participant(pid, gid)
                begun.append(pid)
                work(pid)
            # phase 1b: every participant votes by forcing its prepare
            for pid, name in zip(pids, names):
                self.sdb.prepare_participant(pid, gid)
                _emit(TxnEvent(gid=gid, phase="prepared", participant=name))
            # the decision: prepare roster, then the commit point itself
            self.log.log_prepare(gid, names)
            self.log.log_decision(gid, "commit")
        except SimulatedCrashError:
            # the process is dead: no in-process cleanup — recovery owns
            # the outcome (presumed abort; _active_gid stays set so the
            # next transaction is refused until recover() runs)
            raise
        except StorageError as exc:
            reason = f"{type(exc).__name__}: {exc}"
            self._abort(gid, begun, names, reason)
            raise TxnAbortedError(gid, reason) from exc
        except Exception as exc:
            # non-storage failures (bad input, divergent source) abort
            # the transaction but keep their own type for the caller
            self._abort(gid, begun, names, f"{type(exc).__name__}: {exc}")
            raise
        _emit(TxnEvent(gid=gid, phase="decided", verdict="commit"))
        # phase 2: the decision is durable — errors from here on must
        # propagate un-aborted; recovery drives the commit forward
        for pid, name in zip(pids, names):
            self.sdb.commit_participant(pid, gid)
            _emit(TxnEvent(gid=gid, phase="committed", participant=name))
        self.log.log_ack(gid)
        _emit(TxnEvent(gid=gid, phase="acked"))
        rows = self.sdb.refresh_row_counts()
        self._active_gid = None
        self._validate()
        return TxnResult(
            gid=gid, verdict="commit", rows=rows, participants=names
        )

    def _abort(
        self,
        gid: str,
        begun: "list[Pid]",
        names: tuple[str, ...],
        reason: str,
    ) -> None:
        """Roll the transaction back everywhere (crash errors re-raise)."""
        logged = gid in self.log.prepared_gids()
        if logged:
            try:
                self.log.log_decision(gid, "abort")
            except SimulatedCrashError:
                raise
            except StorageError:
                # presumed abort covers a decision log that will not
                # accept the record: no durable commit, so no commit
                pass
        _emit(
            TxnEvent(gid=gid, phase="decided", verdict="abort", detail=reason)
        )
        failures: list[str] = []
        pid_names = dict(zip(self.sdb.participant_ids(), names))
        for pid in begun:
            try:
                self.sdb.abort_participant(pid, gid)
            except SimulatedCrashError:
                raise
            except StorageError as exc:
                # recovery's presumed abort re-rolls this participant
                failures.append(f"{pid_names.get(pid, pid)}: {exc}")
                continue
            _emit(
                TxnEvent(
                    gid=gid,
                    phase="aborted",
                    participant=pid_names.get(pid, str(pid)),
                )
            )
        if logged and self.log.decision_for(gid) == "abort" and not failures:
            try:
                self.log.log_ack(gid)
            except SimulatedCrashError:
                raise
            except StorageError:
                pass
        self.sdb.refresh_row_counts()
        self._active_gid = None
        self._validate()

    # ------------------------------------------------------------------
    # recovery: replay the decision log, drive every shard to a verdict
    # ------------------------------------------------------------------
    def recover(self) -> TxnRecoveryReport:
        """Resolve every participant log against the decision log.

        Open batches roll back; prepared batches commit exactly when the
        decision log holds a durable commit verdict for their gid and
        are presumed aborted otherwise; decided-but-unacked transactions
        are re-acked once every participant has applied them.  Safe to
        run any number of times.
        """

        def decide(gid: str) -> bool:
            return self.log.decision_for(gid) == "commit"

        reports: list[RecoveryReport] = []
        for pid in self.sdb.participant_ids():
            reports.append(self.sdb.recover_participant(pid, decide))
        reacked: list[str] = []
        for gid, verdict in self.log.unacked_decisions():
            _emit(TxnEvent(gid=gid, phase="resolved", verdict=verdict))
            self.log.log_ack(gid)
            reacked.append(gid)
        total = self.sdb.refresh_row_counts()
        self._active_gid = None
        self._validate()
        return TxnRecoveryReport(
            participant_reports=tuple(reports),
            resolved_commits=sum(r.resolved_commits for r in reports),
            resolved_aborts=sum(r.resolved_aborts for r in reports),
            reacked=tuple(reacked),
            total_rows=total,
        )

    # ------------------------------------------------------------------
    # the crash-schedule explorer's device surface
    # ------------------------------------------------------------------
    def devices(self) -> tuple[str, ...]:
        """Every device a crash can land on, coordinator log first."""
        names: list[str] = [self.log.name]
        for pid in self.sdb.participant_ids():
            base = self.sdb.participant_name(pid)
            names.append(f"{base}.wal")
            names.append(f"{base}.disk")
        return tuple(names)

    def _pid_for(self, device: str) -> "tuple[Pid, str]":
        base, _, kind = device.rpartition(".")
        for pid in self.sdb.participant_ids():
            if self.sdb.participant_name(pid) == base and kind in (
                "wal",
                "disk",
            ):
                return pid, kind
        raise KeyError(f"unknown crash device {device!r}")

    def append_count(self, device: str) -> int:
        """Total appends (or data writes) the named device has seen."""
        if device == self.log.name:
            return self.log.append_count
        pid, kind = self._pid_for(device)
        if kind == "wal":
            return self.sdb.wal_append_count(pid)
        return self.sdb.data_write_count(pid)

    def crash_after(self, device: str, countdown: int) -> None:
        """Arm a one-shot crash on the named device's ``countdown``-th
        next append (WALs, decision log) or write (data disks)."""
        if device == self.log.name:
            self.log.crash_after_appends(countdown)
            return
        pid, kind = self._pid_for(device)
        if kind == "wal":
            self.sdb.arm_wal_crash(pid, countdown)
        else:
            self.sdb.arm_data_crash(pid, countdown)

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if invariants.enabled():
            invariants.validate_txn_log(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            f"in flight {self._active_gid!r}" if self._active_gid else "idle"
        )
        return (
            f"<TransactionCoordinator {len(self.sdb.participant_ids())} "
            f"participant(s), {state}>"
        )
