"""Typed failures of the cross-shard transaction layer.

``TxnError``
    Root of every coordinator-layer failure; subclasses
    :class:`~repro.storage.errors.StorageError` so existing degradation
    paths that catch storage failures keep working.

``TxnAbortedError``
    The coordinator rolled a global transaction back — every participant
    restored its before-images and the decision log (if the transaction
    got that far) records the abort verdict.  Carries the global
    transaction id and the triggering reason; atomicity held, the write
    simply did not happen.

``CoordinatorStateError``
    The two-phase protocol was driven out of order: a second transaction
    opened while one is in flight, a decision logged for an unknown
    transaction, contradictory verdicts for one gid, an ack without a
    decision.  Always a bug in the caller, never a recoverable outcome.
"""

from __future__ import annotations

from ..storage.errors import StorageError

__all__ = [
    "CoordinatorStateError",
    "TxnAbortedError",
    "TxnError",
]


class TxnError(StorageError):
    """Root of all transaction-coordinator failures."""


class TxnAbortedError(TxnError):
    """A global transaction was rolled back on every participant."""

    def __init__(self, gid: str, reason: str) -> None:
        super().__init__(f"transaction {gid} aborted: {reason}")
        self.gid = gid
        self.reason = reason


class CoordinatorStateError(TxnError):
    """The two-phase protocol was driven out of order (caller bug)."""
