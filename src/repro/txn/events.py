"""Structured telemetry for the two-phase-commit coordinator.

Every rung of a global transaction's life — begin, per-participant
prepare, the logged decision, per-participant commit/abort, the final
ack, and post-crash in-doubt resolution — emits exactly one
:class:`TxnEvent` through the same
:class:`~repro.telemetry.ObserverRegistry` mechanism the shard
coordinator uses for degradations and the WAL uses for recovery passes,
so one observer hook can watch a write travel the whole 2PC state
machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..telemetry import ObserverRegistry, TelemetryEvent

__all__ = [
    "TxnEvent",
    "register_txn_observer",
    "unregister_txn_observer",
]

#: 2PC phases, in protocol order (``resolved`` is recovery-only).
_PHASES = (
    "begin",
    "prepared",
    "decided",
    "committed",
    "aborted",
    "acked",
    "resolved",
)


@dataclass(frozen=True)
class TxnEvent(TelemetryEvent):
    """One rung of the 2PC state machine for one global transaction.

    ``phase`` is one of ``begin`` (work dispatched to the participants),
    ``prepared`` (one participant forced its prepare record), ``decided``
    (the coordinator durably logged its verdict), ``committed`` /
    ``aborted`` (one participant applied the verdict), ``acked`` (every
    participant applied it; the decision is closed out), or ``resolved``
    (recovery settled an in-doubt transaction from the decision log).
    """

    gid: str
    phase: str
    participant: str = ""
    verdict: str = ""
    detail: str = ""

    def describe(self) -> str:
        parts = [f"txn {self.gid} {self.phase}"]
        if self.participant:
            parts.append(f"participant={self.participant}")
        if self.verdict:
            parts.append(f"verdict={self.verdict}")
        if self.detail:
            parts.append(f"({self.detail})")
        return " ".join(parts)


_txn_registry: ObserverRegistry[TxnEvent] = ObserverRegistry("txn-observers")


def register_txn_observer(observer: Callable[[TxnEvent], None]) -> None:
    """Subscribe ``observer`` to every 2PC state-machine event."""

    _txn_registry.register(observer)


def unregister_txn_observer(observer: Callable[[TxnEvent], None]) -> None:
    """Remove a previously registered transaction observer."""

    _txn_registry.unregister(observer)


def _emit(event: TxnEvent) -> None:
    """Deliver one event to registered observers."""

    _txn_registry.emit(event)
