"""The coordinator's decision log: the durable truth of every 2PC verdict.

A :class:`DecisionLog` is an :class:`~repro.storage.wal.AppendOnlyLog`
on its own simulated device (same Section 4.1 cost model, verified
forces, deterministic crash hook), holding three record kinds per global
transaction:

* ``prepare`` — the coordinator has collected every participant's
  prepare vote; the record carries the participant roster so recovery
  knows who to drive;
* ``decision`` — the verdict (``commit`` or ``abort``).  **This force is
  the commit point**: a transaction whose commit decision is durable
  commits on every participant, no matter what crashes afterwards;
* ``ack`` — every participant applied the verdict; recovery can stop
  re-driving this transaction.

Presumed abort is the protocol's asymmetry: a gid with *no* durable
commit decision aborts — participants holding prepared batches roll
back, and the coordinator never needs to log anything for a transaction
that dies early.  The read side (:meth:`decision_for` and friends)
derives entirely from the in-memory record mirror, which the verified
force keeps identical to the durable device at every append boundary.
"""

from __future__ import annotations

from ..storage.disk import DiskParameters
from ..storage.faults import FaultPlan
from ..storage.retry import RetryPolicy
from ..storage.wal import AppendOnlyLog, WALRecord
from .errors import CoordinatorStateError

__all__ = [
    "DecisionLog",
    "D_ACK",
    "D_DECISION",
    "D_PREPARE",
    "VERDICTS",
]

#: decision-log record kinds, in protocol order
D_PREPARE = "prepare"
D_DECISION = "decision"
D_ACK = "ack"

#: the only legal verdicts a decision record may carry
VERDICTS = ("commit", "abort")


class DecisionLog(AppendOnlyLog):
    """Append-only 2PC outcome journal on a dedicated log device."""

    def __init__(
        self,
        params: DiskParameters | None = None,
        *,
        records_per_page: int = 64,
        name: str = "txn-log",
        fault_plan: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        super().__init__(
            params,
            records_per_page=records_per_page,
            name=name,
            fault_plan=fault_plan,
            retry_policy=retry_policy,
        )
        #: gid -> local txn id; mirrors the durable log (append-then-map,
        #: so a crashed append never maps a record that does not exist)
        self._txn_of: dict[str, int] = {}
        self._next_txn = 0

    # ------------------------------------------------------------------
    # the write side (each append is one verified force)
    # ------------------------------------------------------------------
    def log_prepare(self, gid: str, participants: tuple[str, ...]) -> None:
        """Force the prepare record carrying the participant roster."""
        if gid in self._txn_of:
            raise CoordinatorStateError(
                f"transaction {gid!r} is already in the decision log"
            )
        if not participants:
            raise CoordinatorStateError(
                f"transaction {gid!r} prepared with an empty participant "
                "roster; recovery would have nobody to drive"
            )
        txn = self._next_txn
        self._append_record(
            D_PREPARE, txn, records=tuple(participants), label=gid
        )
        self._txn_of[gid] = txn
        self._next_txn = txn + 1

    def log_decision(self, gid: str, verdict: str) -> None:
        """Force the verdict — for ``commit``, this is the commit point.

        Idempotent for a repeated identical verdict (recovery may
        re-drive); a *contradictory* verdict is a protocol violation and
        raises.
        """
        if verdict not in VERDICTS:
            raise CoordinatorStateError(
                f"illegal verdict {verdict!r} for transaction {gid!r}"
            )
        existing = self.decision_for(gid)
        if existing is not None:
            if existing != verdict:
                raise CoordinatorStateError(
                    f"transaction {gid!r} already decided {existing!r}; "
                    f"refusing contradictory verdict {verdict!r}"
                )
            return
        txn = self._txn_of.get(gid)
        if txn is None:
            raise CoordinatorStateError(
                f"decision for unknown transaction {gid!r} (no prepare "
                "record); presumed abort needs no log entry"
            )
        self._append_record(D_DECISION, txn, records=(verdict,), label=gid)

    def log_ack(self, gid: str) -> None:
        """Force the ack closing the transaction out (idempotent)."""
        if self.decision_for(gid) is None:
            raise CoordinatorStateError(
                f"ack for transaction {gid!r} without a decision record"
            )
        if self.acked(gid):
            return
        txn = self._txn_of[gid]
        self._append_record(D_ACK, txn, label=gid)

    # ------------------------------------------------------------------
    # the read side (derived from the mirror == the durable log)
    # ------------------------------------------------------------------
    def _records_for(self, gid: str, kind: str) -> list[WALRecord]:
        return [r for r in self.records if r.label == gid and r.kind == kind]

    def decision_for(self, gid: str) -> str | None:
        """The durably logged verdict for ``gid``, or ``None``.

        ``None`` means *presumed abort* to every participant: no commit
        was ever acknowledged, so rolling back is always safe.
        """
        for record in self._records_for(gid, D_DECISION):
            if record.records:
                return str(record.records[0])
        return None

    def participants_for(self, gid: str) -> tuple[str, ...]:
        """The participant roster the prepare record froze for ``gid``."""
        for record in self._records_for(gid, D_PREPARE):
            return tuple(record.records or ())
        return ()

    def acked(self, gid: str) -> bool:
        return bool(self._records_for(gid, D_ACK))

    def prepared_gids(self) -> tuple[str, ...]:
        """Every gid with a durable prepare record, in log order."""
        seen: list[str] = []
        for record in self.records:
            if record.kind == D_PREPARE and record.label is not None:
                seen.append(record.label)
        return tuple(seen)

    def unacked_decisions(self) -> tuple[tuple[str, str], ...]:
        """``(gid, verdict)`` of every decided-but-unacked transaction.

        Recovery re-drives exactly these: the decision is durable but at
        least one participant may not have applied it before the crash.
        """
        pending: list[tuple[str, str]] = []
        for gid in self.prepared_gids():
            verdict = self.decision_for(gid)
            if verdict is not None and not self.acked(gid):
                pending.append((gid, verdict))
        return tuple(pending)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DecisionLog {self.name!r} {len(self.records)} records, "
            f"{len(self._txn_of)} transaction(s)>"
        )
