"""Atomic cross-shard transactions: 2PC over the per-shard WALs.

The sharded engine gives every shard copy an independent write-ahead
log; this package adds the layer that makes a *multi-shard* write
atomic across all of them.  A
:class:`~repro.txn.coordinator.TransactionCoordinator` runs classical
presumed-abort two-phase commit: participants journal ``prepare``
records in their own WALs and hold their before-images in-doubt, the
coordinator forces its verdict onto a dedicated
:class:`~repro.txn.log.DecisionLog` (the decision force *is* the commit
point), and recovery replays that log to drive every shard to
all-committed or all-aborted — never a mix.

Every durable step is priced on the simulated clock, every device
(coordinator log, shard WALs, shard data disks) carries a deterministic
crash hook, and the crash-schedule explorer in ``tools.crashgrid``
re-executes the workload with a crash at *every* append index to prove
the atomicity claim exhaustively.  See ``docs/ROBUSTNESS.md``.
"""

from .coordinator import TransactionCoordinator, TxnRecoveryReport, TxnResult
from .errors import CoordinatorStateError, TxnAbortedError, TxnError
from .events import TxnEvent, register_txn_observer, unregister_txn_observer
from .log import DecisionLog

__all__ = [
    "CoordinatorStateError",
    "DecisionLog",
    "TransactionCoordinator",
    "TxnAbortedError",
    "TxnError",
    "TxnEvent",
    "TxnRecoveryReport",
    "TxnResult",
    "register_txn_observer",
    "unregister_txn_observer",
]
