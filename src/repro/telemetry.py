"""Shared degradation-telemetry plumbing: one event shape, one registry.

Three subsystems report "I did not do what was asked, here is the
structured record" events: the plan executor's
:class:`~repro.planner.executor.DegradationEvent` (an access path
failed, the query re-planned), the parallel executor's
:class:`~repro.planner.parallel.ExecutorFallbackEvent` (a requested
execution mode was downgraded) and the shard coordinator's
:class:`~repro.shard.ShardDegradationEvent` (a shard copy was retried,
repaired, failed over, or given up on).  They share one contract:

* the event is a frozen dataclass extending :class:`TelemetryEvent`
  with a human-readable :meth:`~TelemetryEvent.describe`;
* every downgrade path emits **exactly one** event — never zero (a
  silent downgrade) and never duplicates;
* subscribers register through an :class:`ObserverRegistry`, and events
  are delivered *outside* the registry lock so an observer touching the
  buffer pool cannot nest pool work under the observer lock.

The registry lock defaults to the declared ``executor-observers`` rank
of :data:`repro.invariants.sanitizer.GLOBAL_LOCK_ORDER`; the shard
coordinator names its own ``shard-observers`` lock.  Either way the
invariant is the same — observer lists never nest inside any other
engine lock, whichever subsystem owns them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generic, TypeVar

from .invariants.sanitizer import guarded_by, note_access, tracked_lock

__all__ = [
    "JoinEvent",
    "ObserverRegistry",
    "TelemetryEvent",
    "emit_join_event",
    "register_join_observer",
    "unregister_join_observer",
]


@dataclass(frozen=True)
class TelemetryEvent:
    """Base shape of every structured downgrade/degradation event.

    Subclasses add their fields and override :meth:`describe`; the base
    exists so cross-cutting telemetry (logging, the serving layer's
    metrics, tests asserting "exactly one event per downgrade") can
    treat all event families uniformly.
    """

    def describe(self) -> str:
        """One human-readable line describing the downgrade."""
        raise NotImplementedError(
            f"{type(self).__name__} must implement describe()"
        )


_EventT = TypeVar("_EventT", bound=TelemetryEvent)


@guarded_by("_lock", "_observers")
class ObserverRegistry(Generic[_EventT]):
    """Subscribers of one event family behind the observers lock.

    The serving layer registers observers from session threads while
    scans emit from worker coordinators, so the list is guarded like
    every other shared structure.  Events are delivered *outside* the
    lock: an observer may do arbitrary engine work (touch the buffer
    pool, start a repair) without nesting it under the observer lock.
    """

    def __init__(self, name: str = "executor-observers") -> None:
        self._lock = tracked_lock(name)
        self._observers: list[Callable[[_EventT], Any]] = []

    def register(self, observer: Callable[[_EventT], Any]) -> None:
        with self._lock:
            self._observers.append(observer)
            note_access(self, "_observers", write=True)

    def unregister(self, observer: Callable[[_EventT], Any]) -> None:
        with self._lock:
            if observer in self._observers:
                self._observers.remove(observer)
            note_access(self, "_observers", write=True)

    def emit(self, event: _EventT) -> None:
        with self._lock:
            observers = tuple(self._observers)
        for observer in observers:
            observer(event)


@dataclass(frozen=True)
class JoinEvent(TelemetryEvent):
    """Exactly-once record of one completed join leg.

    Emitted by a join operator when its output stream drains *naturally*
    (the merge loop ends on its own) — an abandoned iteration or an
    error emits nothing, so observers can treat the event as "this leg's
    numbers are final".  A co-partitioned sharded join emits one event
    per shard leg, labelled with :attr:`shard`; the serial operators
    leave it ``None``.

    Clocks are simulated seconds from the engine's
    :class:`~repro.storage.disk.SimulatedDisk`; they are ``None`` when
    the operator was not handed a disk to observe.
    """

    operator: str
    rows: int
    pages_skipped_by_pushdown: int = 0
    start_clock: float | None = None
    first_tuple_clock: float | None = None
    end_clock: float | None = None
    shard: int | None = None

    @property
    def time_to_first(self) -> float | None:
        """Seconds from operator start to first output tuple."""
        if self.start_clock is None or self.first_tuple_clock is None:
            return None
        return self.first_tuple_clock - self.start_clock

    def describe(self) -> str:
        where = "" if self.shard is None else f" shard={self.shard}"
        first = (
            "no tuples"
            if self.time_to_first is None
            else f"first tuple after {self.time_to_first:.6f}s"
        )
        return (
            f"{self.operator}{where}: {self.rows} rows, "
            f"{self.pages_skipped_by_pushdown} pages skipped by pushdown, "
            f"{first}"
        )


#: process-wide registry for join telemetry; no observers are registered
#: by default, so emission is a no-op on every pre-existing code path
_JOIN_OBSERVERS: "ObserverRegistry[JoinEvent]" = ObserverRegistry(
    "join-observers"
)


def register_join_observer(observer: Callable[[JoinEvent], Any]) -> None:
    """Subscribe to the exactly-once per-leg :class:`JoinEvent` stream."""
    _JOIN_OBSERVERS.register(observer)


def unregister_join_observer(observer: Callable[[JoinEvent], Any]) -> None:
    _JOIN_OBSERVERS.unregister(observer)


def emit_join_event(event: JoinEvent) -> None:
    """Deliver a join leg's final record to all subscribers."""
    _JOIN_OBSERVERS.emit(event)
