"""Schemas and order-preserving attribute encoders.

A UB-Tree dimension needs every attribute value as an unsigned ``s``-bit
integer whose numeric order matches the attribute's order ``<_i``
(Section 3).  Encoders perform that mapping:

* :class:`IntEncoder` — bounded integers, offset to zero.
* :class:`DateEncoder` — calendar dates as day numbers.
* :class:`DecimalEncoder` — fixed-point decimals as scaled integers.
* :class:`StringEncoder` — strings by a packed prefix of their bytes;
  order-preserving but *lossy*, which is fine for clustering because
  residual predicates are always re-checked on the stored tuple.

Rows are plain tuples aligned with the schema's attribute order; a
:class:`Schema` resolves names to positions and extracts index points.
"""

from __future__ import annotations

import datetime as _dt
from typing import Any, Iterator, Sequence


class Encoder:
    """Order-preserving map from attribute values to ``bits``-wide ints."""

    bits: int
    lossless: bool = True

    def encode(self, value: Any) -> int:
        raise NotImplementedError

    def decode(self, code: int) -> Any:
        raise NotImplementedError

    @property
    def code_max(self) -> int:
        return (1 << self.bits) - 1


class IntEncoder(Encoder):
    """Integers in ``[lo, hi]`` shifted to ``[0, hi - lo]``."""

    def __init__(self, lo: int, hi: int) -> None:
        if lo > hi:
            raise ValueError("empty integer domain")
        self.lo = lo
        self.hi = hi
        self.bits = max(1, (hi - lo).bit_length())

    def encode(self, value: Any) -> int:
        if not self.lo <= value <= self.hi:
            raise ValueError(f"{value} outside [{self.lo}, {self.hi}]")
        return int(value) - self.lo

    def decode(self, code: int) -> int:
        return code + self.lo


class DateEncoder(Encoder):
    """Dates in ``[lo, hi]`` as day offsets from ``lo``."""

    def __init__(self, lo: _dt.date, hi: _dt.date) -> None:
        if lo > hi:
            raise ValueError("empty date domain")
        self.lo = lo
        self.hi = hi
        self.bits = max(1, (hi - lo).days.bit_length())

    def encode(self, value: Any) -> int:
        if isinstance(value, _dt.date):
            days = (value - self.lo).days
        else:
            days = int(value)  # already a day offset
        if not 0 <= days <= (self.hi - self.lo).days:
            raise ValueError(f"{value} outside [{self.lo}, {self.hi}]")
        return days

    def decode(self, code: int) -> _dt.date:
        return self.lo + _dt.timedelta(days=code)


class DecimalEncoder(Encoder):
    """Fixed-point decimals in ``[lo, hi]`` at ``scale`` digits."""

    def __init__(self, lo: float, hi: float, scale: int = 2) -> None:
        if lo > hi:
            raise ValueError("empty decimal domain")
        self.factor = 10**scale
        self.lo_scaled = round(lo * self.factor)
        self.hi_scaled = round(hi * self.factor)
        self.bits = max(1, (self.hi_scaled - self.lo_scaled).bit_length())

    def encode(self, value: Any) -> int:
        scaled = round(float(value) * self.factor)
        if not self.lo_scaled <= scaled <= self.hi_scaled:
            raise ValueError(f"{value} outside encoded decimal domain")
        return scaled - self.lo_scaled

    def decode(self, code: int) -> float:
        return (code + self.lo_scaled) / self.factor


class StringEncoder(Encoder):
    """Strings by an order-preserving packed prefix (lossy)."""

    lossless = False

    def __init__(self, prefix_chars: int = 4) -> None:
        if prefix_chars < 1:
            raise ValueError("prefix must cover at least one character")
        self.prefix_chars = prefix_chars
        self.bits = 8 * prefix_chars

    def encode(self, value: Any) -> int:
        data = str(value).encode("utf-8")[: self.prefix_chars]
        data = data.ljust(self.prefix_chars, b"\x00")
        return int.from_bytes(data, "big")

    def decode(self, code: int) -> str:
        data = code.to_bytes(self.prefix_chars, "big").rstrip(b"\x00")
        return data.decode("utf-8", errors="replace")


class Attribute:
    """A named, encodable column."""

    def __init__(self, name: str, encoder: Encoder) -> None:
        self.name = name
        self.encoder = encoder

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Attribute({self.name}, {self.encoder.bits} bits)"


class Schema:
    """An ordered list of attributes; rows are tuples in this order."""

    def __init__(self, attributes: Sequence[Attribute]) -> None:
        self.attributes = list(attributes)
        self._index = {attr.name: pos for pos, attr in enumerate(self.attributes)}
        if len(self._index) != len(self.attributes):
            raise ValueError("duplicate attribute names")

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def position(self, name: str) -> int:
        return self._index[name]

    def attribute(self, name: str) -> Attribute:
        return self.attributes[self._index[name]]

    def value(self, row: Sequence[Any], name: str) -> Any:
        return row[self._index[name]]

    def project(self, row: Sequence[Any], names: Sequence[str]) -> tuple[Any, ...]:
        return tuple(row[self._index[name]] for name in names)

    def encode_point(self, row: Sequence[Any], dims: Sequence[str]) -> tuple[int, ...]:
        """The index point of a row for the given index attributes."""
        return tuple(
            self.attribute(name).encoder.encode(row[self._index[name]])
            for name in dims
        )

    def bit_lengths(self, dims: Sequence[str]) -> tuple[int, ...]:
        return tuple(self.attribute(name).encoder.bits for name in dims)
