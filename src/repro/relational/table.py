"""Tables: one relation, one physical organization.

Following the paper's experimental setup ("we created four instances of
LINEITEM"), a table object binds a schema to exactly one physical
organization — a heap (for full table scans), an IOT (clustered
composite-key B*-Tree) or a UB-Tree.  A :class:`Database` owns the
simulated disk and buffer pool that all organizations share, so their
I/O is priced identically.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Sequence

from ..btree.iot import TOP, IndexOrganizedTable
from ..btree.secondary import SecondaryIndex
from ..core.query_space import QueryBox, QuerySpace
from ..core.tetris import TetrisScan
from ..core.ubtree import UBTree
from ..core.zorder import ZSpace
from ..storage.buffer import BufferPool
from ..storage.disk import DiskParameters, SimulatedDisk
from ..storage.faults import FaultPlan, FaultyDisk
from ..storage.heap import HeapFile
from ..storage.replica import ReplicatedDisk
from ..storage.retry import RetryPolicy
from ..storage.scheduler import IOScheduler
from ..storage.wal import RecoveryReport, WriteAheadLog
from .schema import Schema

Row = tuple


class Database:
    """Shared simulated disk + buffer pool for a set of table instances.

    Passing a ``fault_plan`` wraps the disk in a
    :class:`~repro.storage.faults.FaultyDisk`; injection stays disarmed
    until :meth:`arm_faults` is called, so tables load cleanly and the
    fault schedule replays deterministically from the moment of arming.

    ``replicas=k`` inserts a :class:`~repro.storage.replica
    .ReplicatedDisk` *inside* the fault layer, so every acknowledged
    write is mirrored onto ``k`` checksummed copies before the fault
    layer can tear the primary — the substrate for checksum-triggered
    repair and quarantine lifting.  ``wal=True`` arms a
    :class:`~repro.storage.wal.WriteAheadLog` on the whole stack, making
    every ``bulk_load`` (and WAL-aware insert) an atomic, replayable
    batch; :meth:`recover` is the redo-on-open entry point.  ``wal_name``
    names the log for recovery telemetry and crash-schedule enumeration,
    and ``wal_fault_plan`` puts the *log device itself* under fault
    injection (armed and disarmed together with the data disk), so torn
    or transient log forces are part of the chaos surface too.

    ``devices=d`` stripes pages across ``d`` independent device queues
    via an :class:`~repro.storage.scheduler.IOScheduler` sitting on top
    of the whole wrapper stack; ``prefetch_depth=k`` additionally lets
    scans keep up to ``k`` async reads in flight ahead of their cursor
    (sweep-ahead prefetching).  Both default off, leaving the cost model
    bit-identical to the single-disk engine.
    """

    def __init__(
        self,
        params: DiskParameters | None = None,
        buffer_pages: int = 256,
        *,
        fault_plan: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
        quarantine_threshold: int = 3,
        wal: bool = False,
        wal_name: str = "wal",
        wal_fault_plan: FaultPlan | None = None,
        replicas: int = 0,
        devices: int = 1,
        prefetch_depth: int = 0,
    ) -> None:
        disk: SimulatedDisk = SimulatedDisk(params)
        if replicas:
            disk = ReplicatedDisk(disk, replicas)
        if fault_plan is not None:
            disk = FaultyDisk(disk, fault_plan)
        self.disk: SimulatedDisk = disk
        self.scheduler: IOScheduler | None = (
            IOScheduler(self.disk, devices, prefetch_depth=prefetch_depth)
            if devices > 1 or prefetch_depth > 0
            else None
        )
        if wal_fault_plan is not None and not wal:
            raise ValueError("wal_fault_plan requires wal=True")
        self.wal: WriteAheadLog | None = (
            WriteAheadLog(
                self.disk,
                name=wal_name,
                fault_plan=wal_fault_plan,
                retry_policy=retry_policy,
            )
            if wal
            else None
        )
        self.buffer = BufferPool(
            self.disk,
            buffer_pages,
            retry_policy=retry_policy,
            quarantine_threshold=quarantine_threshold,
            scheduler=self.scheduler,
        )
        self.tables: dict[str, "BaseTable"] = {}

    def arm_faults(self) -> None:
        """Start injecting faults (requires a ``fault_plan`` or
        ``wal_fault_plan``); data disk and log device arm together."""
        data_faulted = isinstance(self.disk, FaultyDisk)
        log_faulted = self.wal is not None and isinstance(
            self.wal.device, FaultyDisk
        )
        if not data_faulted and not log_faulted:
            raise RuntimeError("database was created without a fault plan")
        if data_faulted:
            self.disk.arm()
        if self.wal is not None:
            self.wal.arm_log_faults()

    def disarm_faults(self) -> None:
        """Stop injecting faults, leaving any damage in place."""
        if isinstance(self.disk, FaultyDisk):
            self.disk.disarm()
        if self.wal is not None:
            self.wal.disarm_log_faults()

    def recover(
        self, decide: "Callable[[str], bool] | None" = None
    ) -> RecoveryReport:
        """Run WAL redo-on-open recovery and drop the (suspect) cache.

        ``decide`` resolves in-doubt two-phase batches from the
        coordinator's decision log; without it every in-doubt batch is
        presumed aborted (see
        :meth:`~repro.storage.wal.WriteAheadLog.recover`).
        """
        if self.wal is None:
            raise RuntimeError("database was created without a write-ahead log")
        report = self.wal.recover(decide)
        self.buffer.drop_all()
        return report

    @property
    def replicated_disk(self) -> ReplicatedDisk | None:
        """The replica layer of the disk stack, if one was configured."""
        disk: SimulatedDisk | None = self.disk
        while disk is not None:
            if isinstance(disk, ReplicatedDisk):
                return disk
            disk = getattr(disk, "inner", None)
        return None

    def capture_replicas(self) -> int:
        """Mirror every record-bearing page into the replica store.

        Needed once after loads that bypass the write path's mirroring
        (e.g. insert-driven loading, which defers its page writes to the
        buffer pool's flush).  Returns the number of pages captured.
        """
        replicated = self.replicated_disk
        if replicated is None:
            raise RuntimeError("database was created without replicas")
        return replicated.capture_all()

    def _register(self, table: "BaseTable") -> None:
        if table.name in self.tables:
            raise ValueError(f"table {table.name!r} already exists")
        self.tables[table.name] = table

    def create_heap_table(
        self, name: str, schema: Schema, page_capacity: int
    ) -> "HeapTable":
        table = HeapTable(self, name, schema, page_capacity)
        self._register(table)
        return table

    def create_iot(
        self, name: str, schema: Schema, key: Sequence[str], page_capacity: int
    ) -> "IOTTable":
        table = IOTTable(self, name, schema, key, page_capacity)
        self._register(table)
        return table

    def create_ub_table(
        self, name: str, schema: Schema, dims: Sequence[str], page_capacity: int
    ) -> "UBTable":
        table = UBTable(self, name, schema, dims, page_capacity)
        self._register(table)
        return table

    def reset_measurement(self) -> None:
        """Drop caches and snapshot-friendly state between experiments."""
        self.buffer.drop_all()

    @property
    def clock(self) -> float:
        return self.disk.clock


class BaseTable:
    """Common behaviour of all physical organizations."""

    def __init__(
        self, db: Database, name: str, schema: Schema, page_capacity: int
    ) -> None:
        self.db = db
        self.name = name
        self.schema = schema
        self.page_capacity = page_capacity

    def __len__(self) -> int:
        raise NotImplementedError

    @property
    def page_count(self) -> int:
        raise NotImplementedError

    def insert(self, row: Row) -> None:
        raise NotImplementedError

    def load(self, rows: Iterable[Row]) -> None:
        for row in rows:
            self.insert(row)

    def build_query_box(
        self, restrictions: dict[str, tuple[Any, Any]] | None
    ) -> QueryBox:
        """Translate value-level ranges into an encoded query box.

        ``restrictions`` maps attribute names to ``(lo, hi)`` value pairs;
        ``None`` on either side leaves that end unbounded.  Only
        index-dimension attributes may be restricted here — residual
        predicates belong in a Select operator.
        """
        raise NotImplementedError(f"{type(self).__name__} has no index dimensions")


class HeapTable(BaseTable):
    """Unordered rows in contiguous extents — the FTS baseline."""

    def __init__(
        self, db: Database, name: str, schema: Schema, page_capacity: int
    ) -> None:
        super().__init__(db, name, schema, page_capacity)
        self.heap = HeapFile(db.disk, page_capacity, scheduler=db.scheduler)
        self.secondary_indexes: dict[str, SecondaryIndex] = {}

    def __len__(self) -> int:
        return len(self.heap)

    @property
    def page_count(self) -> int:
        return self.heap.page_count

    def insert(self, row: Row) -> None:
        page_id = self.heap.append(row)
        for index in self.secondary_indexes.values():
            slot = len(self.db.disk.peek(page_id).records) - 1
            index.insert(row, (page_id, slot))

    def bulk_load(self, rows: Iterable[Row]) -> None:
        """Initial load, WAL-protected when the database has a log armed.

        Must precede secondary index creation: the indexes are built by
        scanning the heap, and journaling their page-at-a-time builds is
        out of the WAL's batch scope here.
        """
        if self.secondary_indexes:
            raise RuntimeError(
                "bulk_load must run before secondary indexes are created"
            )
        self.heap.bulk_load(rows)

    def scan(self) -> Iterator[Row]:
        """Full table scan: sequential reads, prefetch-friendly."""
        return self.heap.scan()

    def create_secondary_index(self, attr: str) -> SecondaryIndex:
        """A non-clustered B+-tree on one attribute (Sections 5.1/5.3)."""
        position = self.schema.position(attr)
        index = SecondaryIndex(
            self.db.buffer, lambda row: row[position], self.heap
        )
        index.build()
        self.secondary_indexes[attr] = index
        return index


class IOTTable(BaseTable):
    """Index-organized table: clustered by a composite key."""

    def __init__(
        self,
        db: Database,
        name: str,
        schema: Schema,
        key: Sequence[str],
        page_capacity: int,
    ) -> None:
        super().__init__(db, name, schema, page_capacity)
        self.key_attrs = tuple(key)
        positions = tuple(schema.position(attr) for attr in self.key_attrs)
        self.iot = IndexOrganizedTable(
            db.buffer,
            lambda row: tuple(row[p] for p in positions),
            page_capacity,
        )

    def __len__(self) -> int:
        return len(self.iot)

    @property
    def page_count(self) -> int:
        return self.iot.page_count

    def insert(self, row: Row) -> None:
        self.iot.insert(row)

    def bulk_load(self, rows: Sequence[Row], fill: float = 1.0) -> None:
        """Initial load: sort by key and pack leaves bottom-up (empty table)."""
        self.iot.bulk_load(list(rows), fill)

    def scan(self, lo: tuple | None = None, hi: tuple | None = None) -> Iterator[Row]:
        """Key-ordered scan, one random access per leaf."""
        return self.iot.scan(lo, hi)

    def scan_leading(self, lo: Any = None, hi: Any = None) -> Iterator[Row]:
        """Scan restricted on the *leading* key attribute's value range."""
        low_key = None if lo is None else (lo,)
        high_key = None if hi is None else (hi, TOP)
        return self.iot.scan(low_key, high_key)


class UBTable(BaseTable):
    """Multidimensionally organized table: the Tetris substrate."""

    def __init__(
        self,
        db: Database,
        name: str,
        schema: Schema,
        dims: Sequence[str],
        page_capacity: int,
    ) -> None:
        super().__init__(db, name, schema, page_capacity)
        self.dims = tuple(dims)
        self._dim_positions = tuple(schema.position(attr) for attr in self.dims)
        self.space = ZSpace(schema.bit_lengths(self.dims))
        self.ubtree = UBTree(db.buffer, self.space, page_capacity)

    def __len__(self) -> int:
        return len(self.ubtree)

    @property
    def page_count(self) -> int:
        return self.ubtree.page_count

    def point_of(self, row: Row) -> tuple[int, ...]:
        return self.schema.encode_point(row, self.dims)

    def meta_snapshot(self) -> tuple:
        """In-memory UB-tree descriptors (root, height, counts).

        The 2PC participant layer snapshots these when it opens a
        multi-operation WAL batch and restores them if the batch later
        aborts (in-process or by post-crash presumed abort): the WAL
        rolls back *page content* only, and would otherwise leave the
        live tree object pointing at freed pages with stale counts.
        """
        return self.ubtree.tree.meta_snapshot()

    def meta_restore(self, meta: tuple) -> None:
        """Restore a :meth:`meta_snapshot` after a WAL batch rollback."""
        self.ubtree.tree.meta_restore(meta)

    def insert(self, row: Row) -> None:
        self.ubtree.insert(self.point_of(row), row)

    def bulk_load(self, rows: Iterable[Row], fill: float = 1.0) -> None:
        """Initial load: pack full Z-region pages bottom-up (empty table)."""
        self.ubtree.bulk_load(((self.point_of(row), row) for row in rows), fill)

    def build_query_box(
        self, restrictions: dict[str, tuple[Any, Any]] | None
    ) -> QueryBox:
        lo = [0] * len(self.dims)
        hi = list(self.space.coord_max)
        if restrictions:
            unknown = set(restrictions) - set(self.dims)
            if unknown:
                raise KeyError(
                    f"restrictions on non-index attributes: {sorted(unknown)}"
                )
            for pos, attr in enumerate(self.dims):
                if attr not in restrictions:
                    continue
                low_value, high_value = restrictions[attr]
                encoder = self.schema.attribute(attr).encoder
                if low_value is not None:
                    lo[pos] = encoder.encode(low_value)
                if high_value is not None:
                    hi[pos] = encoder.encode(high_value)
        return QueryBox(lo, hi)

    def comparison_space(self, left: str, op: str, right: str) -> QuerySpace:
        """Half-space between two index attributes (Q4's triangle)."""
        from ..core.query_space import ComparisonSpace

        return ComparisonSpace(
            len(self.dims), self.dims.index(left), op, self.dims.index(right)
        )

    def tetris_scan(
        self,
        space: QuerySpace | dict[str, tuple[Any, Any]] | None,
        sort_attr: str | Sequence[str],
        *,
        descending: bool = False,
        strategy: str = "eager",
        pushdown: QuerySpace | None = None,
    ) -> TetrisScan:
        """A Tetris sweep delivering rows sorted by ``sort_attr``.

        ``sort_attr`` may be a single attribute name or a sequence of
        names for a composite (multi-column) sort order.  ``pushdown``
        carries a join-key restriction pushed down from the other side
        of a join (see :mod:`repro.planner.pushdown`); regions it rules
        out are skipped without I/O.
        """
        if space is None or isinstance(space, dict):
            space = self.build_query_box(space)
        if isinstance(sort_attr, str):
            sort_dims: int | tuple[int, ...] = self.dims.index(sort_attr)
        else:
            sort_dims = tuple(self.dims.index(attr) for attr in sort_attr)
        return TetrisScan(
            self.ubtree,
            space,
            sort_dims,
            descending=descending,
            strategy=strategy,
            pushdown=pushdown,
        )

    def range_query(
        self, space: QuerySpace | dict[str, tuple[Any, Any]] | None
    ) -> Iterator[Row]:
        """Multi-attribute range query (Q6): each overlapping page once."""
        if space is None or isinstance(space, dict):
            space = self.build_query_box(space)
        for _, row in self.ubtree.range_query(space):
            yield row
