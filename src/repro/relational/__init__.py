"""Relational layer: schemas, encoders, tables and operators."""

from .schema import (
    Attribute,
    DateEncoder,
    DecimalEncoder,
    Encoder,
    IntEncoder,
    Schema,
    StringEncoder,
)
from .table import BaseTable, Database, HeapTable, IOTTable, UBTable

__all__ = [
    "Attribute",
    "BaseTable",
    "Database",
    "DateEncoder",
    "DecimalEncoder",
    "Encoder",
    "HeapTable",
    "IOTTable",
    "IntEncoder",
    "Schema",
    "StringEncoder",
    "UBTable",
]
