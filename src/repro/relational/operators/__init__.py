"""Volcano-style relational operators over the simulated storage."""

from .base import (
    FirstTupleTimer,
    InMemorySort,
    Limit,
    Operator,
    Project,
    Select,
)
from .group import (
    Aggregate,
    Avg,
    Count,
    Max,
    Min,
    ScalarAggregate,
    SortedGroupBy,
    Sum,
)
from .join import HashJoin, MergeJoin, MergeSemiJoin
from .merge import KWayMerge
from .scan import FullTableScan, IOTScan, TetrisOperator, UBRangeScan
from .sets import Difference, Distinct, Intersect, Union, UnionAll
from .sort import ExternalMergeSort, SortStats

__all__ = [
    "Aggregate",
    "Avg",
    "Count",
    "Difference",
    "Distinct",
    "ExternalMergeSort",
    "FirstTupleTimer",
    "FullTableScan",
    "HashJoin",
    "IOTScan",
    "InMemorySort",
    "Intersect",
    "KWayMerge",
    "Limit",
    "Max",
    "MergeJoin",
    "MergeSemiJoin",
    "Min",
    "Operator",
    "Project",
    "ScalarAggregate",
    "Select",
    "SortStats",
    "SortedGroupBy",
    "Sum",
    "TetrisOperator",
    "UBRangeScan",
    "Union",
    "UnionAll",
]
