"""Grouping and aggregation over sorted streams (``γ``).

When the input arrives sorted by the grouping key — which the Tetris
operator guarantees — grouping is a pipelined, constant-memory pass.
Aggregate specs are tiny accumulator objects so that plans read like
the SQL they implement.
"""

from __future__ import annotations

from itertools import groupby
from typing import Any, Callable, Iterable, Iterator

from .base import Operator, Row


class Aggregate:
    """One aggregate column: fold ``extract(row)`` over a group."""

    def __init__(self, extract: Callable[[Row], Any]) -> None:
        self.extract = extract

    def initial(self) -> Any:
        raise NotImplementedError

    def step(self, acc: Any, value: Any) -> Any:
        raise NotImplementedError

    def final(self, acc: Any) -> Any:
        return acc


class Sum(Aggregate):
    def initial(self) -> Any:
        return 0

    def step(self, acc: Any, value: Any) -> Any:
        return acc + value


class Count(Aggregate):
    def __init__(self) -> None:
        super().__init__(lambda row: 1)

    def initial(self) -> int:
        return 0

    def step(self, acc: int, value: Any) -> int:
        return acc + 1


class Min(Aggregate):
    def initial(self) -> Any:
        return None

    def step(self, acc: Any, value: Any) -> Any:
        return value if acc is None or value < acc else acc


class Max(Aggregate):
    def initial(self) -> Any:
        return None

    def step(self, acc: Any, value: Any) -> Any:
        return value if acc is None or value > acc else acc


class Avg(Aggregate):
    def initial(self) -> tuple[int, float]:
        return (0, 0.0)

    def step(self, acc: tuple[int, float], value: Any) -> tuple[int, float]:
        return (acc[0] + 1, acc[1] + value)

    def final(self, acc: tuple[int, float]) -> float | None:
        return acc[1] / acc[0] if acc[0] else None


class SortedGroupBy(Operator):
    """Group a key-sorted stream, emitting ``(key..., aggregates...)`` rows.

    ``key`` extracts the grouping key (a tuple); output rows concatenate
    the key with the aggregate results in declaration order.
    """

    def __init__(
        self,
        child: Iterable[Row],
        key: Callable[[Row], tuple],
        aggregates: list[Aggregate],
    ) -> None:
        self.child = child
        self.key = key
        self.aggregates = aggregates

    def __iter__(self) -> Iterator[Row]:
        for group_key, rows in groupby(self.child, key=self.key):
            accumulators = [agg.initial() for agg in self.aggregates]
            for row in rows:
                for position, agg in enumerate(self.aggregates):
                    accumulators[position] = agg.step(
                        accumulators[position], agg.extract(row)
                    )
            finals = tuple(
                agg.final(acc) for agg, acc in zip(self.aggregates, accumulators)
            )
            yield tuple(group_key) + finals


class ScalarAggregate(Operator):
    """Aggregate the entire input to a single row (Q6's ``SUM``)."""

    def __init__(self, child: Iterable[Row], aggregates: list[Aggregate]) -> None:
        self.child = child
        self.aggregates = aggregates

    def __iter__(self) -> Iterator[Row]:
        accumulators = [agg.initial() for agg in self.aggregates]
        for row in self.child:
            for position, agg in enumerate(self.aggregates):
                accumulators[position] = agg.step(
                    accumulators[position], agg.extract(row)
                )
        yield tuple(
            agg.final(acc) for agg, acc in zip(self.aggregates, accumulators)
        )
