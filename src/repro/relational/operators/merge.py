"""The merge operator ``M`` on sorted streams (Figure 5-2/5-3).

Combines several already-sorted inputs into one sorted output without
materialization — the glue between parallel Tetris operators and a
merge join above them.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Iterator

from .base import Operator, Row


class KWayMerge(Operator):
    """Merge ``children`` (each sorted by ``key``) into one sorted stream."""

    def __init__(
        self,
        children: list[Iterable[Row]],
        key: Callable[[Row], Any],
        descending: bool = False,
    ) -> None:
        self.children = children
        self.key = key
        self.descending = descending

    def __iter__(self) -> Iterator[Row]:
        return heapq.merge(*self.children, key=self.key, reverse=self.descending)
