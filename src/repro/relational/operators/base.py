"""Volcano-style operators: composable iterators over rows.

Operators are plain Python iterables — ``next()`` is the paper's
pipelined "continuous flow of operation".  Because all I/O flows through
the simulated disk, wrapping a plan in :class:`FirstTupleTimer` measures
the time-to-first-result that Sections 4.4 and 5.1 highlight.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from ...storage.disk import SimulatedDisk

Row = tuple


class Operator:
    """Base class; subclasses implement ``__iter__``."""

    def __iter__(self) -> Iterator[Row]:
        raise NotImplementedError

    def execute(self) -> list[Row]:
        """Materialize the full result (convenience for tests)."""
        return list(self)


class FirstTupleTimer(Operator):
    """Wraps a plan and records simulated clocks around its consumption."""

    def __init__(self, child: Iterable[Row], disk: SimulatedDisk) -> None:
        self.child = child
        self.disk = disk
        self.start_clock: float | None = None
        self.first_clock: float | None = None
        self.end_clock: float | None = None
        self.row_count = 0

    def __iter__(self) -> Iterator[Row]:
        self.start_clock = self.disk.clock
        for row in self.child:
            if self.first_clock is None:
                self.first_clock = self.disk.clock
            self.row_count += 1
            yield row
        self.end_clock = self.disk.clock

    @property
    def time_to_first(self) -> float | None:
        if self.first_clock is None or self.start_clock is None:
            return None
        return self.first_clock - self.start_clock

    @property
    def elapsed(self) -> float | None:
        if self.end_clock is None or self.start_clock is None:
            return None
        return self.end_clock - self.start_clock


class Select(Operator):
    """Residual predicate filter (``σ``)."""

    def __init__(self, child: Iterable[Row], predicate: Callable[[Row], bool]) -> None:
        self.child = child
        self.predicate = predicate

    def __iter__(self) -> Iterator[Row]:
        return (row for row in self.child if self.predicate(row))


class Project(Operator):
    """Row transformation (``π``); ``fn`` maps a row to an output row."""

    def __init__(self, child: Iterable[Row], fn: Callable[[Row], Row]) -> None:
        self.child = child
        self.fn = fn

    def __iter__(self) -> Iterator[Row]:
        return (self.fn(row) for row in self.child)


class Limit(Operator):
    """Stop after ``count`` rows — interactive first-page semantics."""

    def __init__(self, child: Iterable[Row], count: int) -> None:
        self.child = child
        self.count = count

    def __iter__(self) -> Iterator[Row]:
        for position, row in enumerate(self.child):
            if position >= self.count:
                return
            yield row


class InMemorySort(Operator):
    """Plain in-memory sort for small (final) result sets (``ω``)."""

    def __init__(
        self,
        child: Iterable[Row],
        key: Callable[[Row], Any],
        descending: bool = False,
    ) -> None:
        self.child = child
        self.key = key
        self.descending = descending

    def __iter__(self) -> Iterator[Row]:
        return iter(sorted(self.child, key=self.key, reverse=self.descending))
