"""External merge sort: the baseline the Tetris algorithm replaces.

Implements the classic two-phase sort of Section 4.2: a *retrieval
phase* creates sorted initial runs of ``memory_pages`` pages each, and a
*sort phase* merges them ``merge_degree`` ways until one run remains.
Runs live in temporary heap files on the simulated disk, written and
read sequentially in prefetch-sized chunks, so the measured cost matches
the paper's ``P_sort = 2 · (P·Πs_i) · log_m(p/M · Πs_i)`` model priced at
``c_scan``.

The operator is *blocking*: no row is emitted before the final merge
pass begins — which is precisely the behavioural difference to the
Tetris algorithm that Figure 4-4 and Table 5-1 quantify.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator

from ... import kernels
from ...storage.disk import SimulatedDisk
from ...storage.heap import HeapFile
from ...storage.retry import DEFAULT_RETRY_POLICY, RetryPolicy, read_page_resilient
from .base import Operator, Row


@dataclass
class SortStats:
    """Temporary-storage and phase accounting of one external sort."""

    input_rows: int = 0
    runs_created: int = 0
    merge_passes: int = 0
    peak_temp_pages: int = 0  #: max pages of live temp files at any time
    spilled: bool = False  #: False when the input fit into work memory

    def peak_temp_bytes(self, page_bytes: int) -> int:
        return self.peak_temp_pages * page_bytes


class ExternalMergeSort(Operator):
    """Sort an arbitrary row stream with bounded work memory.

    Parameters
    ----------
    child:
        Input row stream.
    key:
        Sort key function.
    disk:
        The simulated disk for temporary runs.
    memory_pages:
        Work memory in pages (the paper's ``M``).
    page_capacity:
        Rows per temp page (same as the base table for comparability).
    merge_degree:
        Fan-in ``m`` of each merge pass (the paper analyses ``m = 2``).
    run_rows:
        DPG-style run formation: sort each in-memory run as cache-sized
        partial runs of this many rows, consolidated by hierarchical
        pairwise merges (:func:`repro.kernels.merge_sorted_keys`)
        instead of one monolithic argsort over the whole run.  Each
        merge step streams two sorted key arrays, so the working set per
        step stays cache-resident.  ``None`` keeps the single argsort;
        the output is byte-identical either way (stable merges preserve
        the earlier chunk's tie win, exactly like a stable full sort).
    """

    def __init__(
        self,
        child: Iterable[Row],
        key: Callable[[Row], Any],
        disk: SimulatedDisk,
        memory_pages: int,
        page_capacity: int,
        merge_degree: int = 2,
        descending: bool = False,
        retry_policy: RetryPolicy | None = None,
        run_rows: int | None = None,
    ) -> None:
        if memory_pages < 1:
            raise ValueError("work memory must be at least one page")
        if merge_degree < 2:
            raise ValueError("merge degree must be at least 2")
        if run_rows is not None and run_rows < 2:
            raise ValueError("partial runs must hold at least two rows")
        self.child = child
        self.key = key
        self.disk = disk
        self.memory_pages = memory_pages
        self.page_capacity = page_capacity
        self.merge_degree = merge_degree
        self.descending = descending
        self.retry_policy = retry_policy or DEFAULT_RETRY_POLICY
        self.run_rows = run_rows
        self.stats = SortStats()
        self._live_temp_pages = 0

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Row]:
        memory_rows = self.memory_pages * self.page_capacity
        runs: list[HeapFile] = []
        buffer: list[Row] = []

        for row in self.child:
            self.stats.input_rows += 1
            buffer.append(row)
            if len(buffer) >= memory_rows:
                runs.append(self._write_run(buffer))
                buffer = []

        if not runs:
            # everything fit in memory: the merge factor drops to zero
            yield from self._sorted_rows(buffer)
            return

        self.stats.spilled = True
        if buffer:
            runs.append(self._write_run(buffer))

        # merge passes until at most merge_degree runs remain; the final
        # merge streams to the consumer instead of writing a run
        while len(runs) > self.merge_degree:
            self.stats.merge_passes += 1
            next_runs: list[HeapFile] = []
            for start in range(0, len(runs), self.merge_degree):
                batch = runs[start : start + self.merge_degree]
                if len(batch) == 1:
                    next_runs.append(batch[0])
                    continue
                merged = self._write_stream(self._merge(batch))
                for run in batch:
                    self._drop_run(run)
                next_runs.append(merged)
            runs = next_runs

        self.stats.merge_passes += 1
        try:
            yield from self._merge(runs)
        finally:
            for run in runs:
                self._drop_run(run)

    # ------------------------------------------------------------------
    def _sort_key(self, row: Row) -> Any:
        return self.key(row)

    def _sorted_rows(self, rows: list[Row]) -> list[Row]:
        """Sort one in-memory run: batch key extraction + one argsort.

        Keys are extracted once for the whole run and the permutation is
        computed by the kernel layer (vectorized for integer keys, e.g.
        Z-addresses or encoded attributes), mirroring how the Tetris path
        batches its key computation — the baselines stay comparable.
        """
        keys = [self.key(row) for row in rows]
        backend = kernels.get_backend()
        run_rows = self.run_rows
        if run_rows is None or len(rows) <= run_rows:
            permutation = backend.argsort_keys(keys, reverse=self.descending)
            return [rows[index] for index in permutation]
        # DPG run formation: argsort cache-sized chunks, then reduce the
        # sorted (keys, row-index) runs by adjacent pairwise merges.
        # Adjacent pairing keeps earlier chunks on the tie-winning side
        # of merge_sorted_keys, so the final permutation equals the
        # stable full argsort exactly.
        runs: list[tuple[list[Any], list[int]]] = []
        for start in range(0, len(rows), run_rows):
            chunk_keys = keys[start : start + run_rows]
            chunk_perm = backend.argsort_keys(chunk_keys, reverse=self.descending)
            runs.append(
                (
                    [chunk_keys[index] for index in chunk_perm],
                    [start + index for index in chunk_perm],
                )
            )
        while len(runs) > 1:
            merged_runs: list[tuple[list[Any], list[int]]] = []
            for pair in range(0, len(runs) - 1, 2):
                keys_a, rows_a = runs[pair]
                keys_b, rows_b = runs[pair + 1]
                combined_keys = keys_a + keys_b
                combined_rows = rows_a + rows_b
                merge = backend.merge_sorted_keys(
                    keys_a, keys_b, reverse=self.descending
                )
                merged_runs.append(
                    (
                        [combined_keys[index] for index in merge],
                        [combined_rows[index] for index in merge],
                    )
                )
            if len(runs) % 2:
                merged_runs.append(runs[-1])
            runs = merged_runs
        return [rows[index] for index in runs[0][1]]

    def _merge(self, runs: list[HeapFile]) -> Iterator[Row]:
        readers = [self._read_run(run) for run in runs]
        return heapq.merge(*readers, key=self.key, reverse=self.descending)

    def _write_run(self, rows: list[Row]) -> HeapFile:
        run = self._write_stream(iter(self._sorted_rows(rows)))
        self.stats.runs_created += 1
        return run

    def _write_stream(self, rows: Iterator[Row]) -> HeapFile:
        """Spool a sorted stream to a temp heap, priced as sequential writes."""
        run = HeapFile(self.disk, self.page_capacity, extent_pages=16)
        for row in rows:
            run.append(row)
        for page in run._pages:
            self.disk.write(page, sequential=True, category="temp")
        self._live_temp_pages += run.page_count
        self.stats.peak_temp_pages = max(
            self.stats.peak_temp_pages, self._live_temp_pages
        )
        return run

    def _read_run(self, run: HeapFile) -> Iterator[Row]:
        """Read a run in prefetch-sized chunks of sequential page reads.

        Chunked reading models per-run read-ahead buffers: interleaved
        consumption by the merge still pays only ``ceil(pages/C)``
        positioning operations per run, as the paper's ``c_scan`` assumes.
        """
        chunk = self.disk.params.prefetch
        pages = run._pages
        for start in range(0, len(pages), chunk):
            batch = pages[start : start + chunk]
            loaded = [
                read_page_resilient(
                    self.disk,
                    page.page_id,
                    policy=self.retry_policy,
                    sequential=True,
                    category="temp",
                )[0]
                for page in batch
            ]
            for page in loaded:
                yield from page.records

    def _drop_run(self, run: HeapFile) -> None:
        self._live_temp_pages -= run.page_count
        run.drop()
