"""Access-path operators: FTS, IOT scan, UB-Tree range scan, Tetris.

These correspond one-to-one to the access methods the paper compares:
full table scan (prefetch-friendly sequential reads), index-organized
table scan (random access per leaf, sorted by the composite key), the
UB-Tree range query (Q6) and the Tetris operator ``τ_{σ,ω}`` combining
selection and sorting (Figures 5-3/5-4).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from ...core.query_space import QuerySpace
from ...core.tetris import TetrisScan, TetrisStats
from ..table import HeapTable, IOTTable, UBTable
from .base import Operator, Row


class FullTableScan(Operator):
    """Sequential scan of a heap table."""

    def __init__(
        self, table: HeapTable, predicate: Callable[[Row], bool] | None = None
    ) -> None:
        self.table = table
        self.predicate = predicate

    def __iter__(self) -> Iterator[Row]:
        if self.predicate is None:
            return self.table.scan()
        predicate = self.predicate
        return (row for row in self.table.scan() if predicate(row))


class IOTScan(Operator):
    """Clustered-index scan, optionally restricted on the leading key."""

    def __init__(
        self,
        table: IOTTable,
        leading_lo: Any = None,
        leading_hi: Any = None,
        predicate: Callable[[Row], bool] | None = None,
    ) -> None:
        self.table = table
        self.leading_lo = leading_lo
        self.leading_hi = leading_hi
        self.predicate = predicate

    def __iter__(self) -> Iterator[Row]:
        rows = self.table.scan_leading(self.leading_lo, self.leading_hi)
        if self.predicate is None:
            return rows
        predicate = self.predicate
        return (row for row in rows if predicate(row))


class UBRangeScan(Operator):
    """Multi-attribute range restriction via the UB-Tree (Q6 style)."""

    def __init__(
        self,
        table: UBTable,
        space: QuerySpace | dict[str, tuple[Any, Any]] | None,
        predicate: Callable[[Row], bool] | None = None,
    ) -> None:
        self.table = table
        self.space = space
        self.predicate = predicate

    def __iter__(self) -> Iterator[Row]:
        rows = self.table.range_query(self.space)
        if self.predicate is None:
            return rows
        predicate = self.predicate
        return (row for row in rows if predicate(row))


class TetrisOperator(Operator):
    """``τ_{σ,ω}``: combined restriction + sort on a UB table.

    After (or during) consumption, ``stats`` exposes the sweep's
    instrumentation — regions read, cache peak, slices, first-output
    time — which the Section 5 tables report.
    """

    def __init__(
        self,
        table: UBTable,
        space: QuerySpace | dict[str, tuple[Any, Any]] | None,
        sort_attr: str,
        *,
        descending: bool = False,
        strategy: str = "eager",
        predicate: Callable[[Row], bool] | None = None,
        pushdown: QuerySpace | None = None,
    ) -> None:
        self.table = table
        self.scan: TetrisScan = table.tetris_scan(
            space,
            sort_attr,
            descending=descending,
            strategy=strategy,
            pushdown=pushdown,
        )
        self.predicate = predicate

    @property
    def stats(self) -> TetrisStats:
        return self.scan.stats

    def __iter__(self) -> Iterator[Row]:
        if self.predicate is None:
            return (row for _, row in self.scan)
        predicate = self.predicate
        return (row for _, row in self.scan if predicate(row))
