"""Join operators: sort-merge, hash, and the merge semi-join of Q4.

The paper assumes sort-merge joins fed by sorted streams ("we assume a
sort merge-join", Section 5.1); the Tetris operator produces those
streams directly from restricted base tables.  A hash join is provided
for completeness and for plans where sort order is not exploited.
"""

from __future__ import annotations

from itertools import groupby
from typing import Any, Callable, Iterable, Iterator

from .base import Operator, Row


class MergeJoin(Operator):
    """Inner equi-join of two streams sorted ascending on the join key.

    Duplicate keys are supported on both sides (the right group is
    buffered, as in any textbook implementation).  ``combine`` builds an
    output row from a matching pair; the default concatenates.
    """

    def __init__(
        self,
        left: Iterable[Row],
        right: Iterable[Row],
        left_key: Callable[[Row], Any],
        right_key: Callable[[Row], Any],
        combine: Callable[[Row, Row], Row] | None = None,
    ) -> None:
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key
        self.combine = combine or (lambda a, b: tuple(a) + tuple(b))

    def __iter__(self) -> Iterator[Row]:
        left_groups = groupby(self.left, key=self.left_key)
        right_groups = groupby(self.right, key=self.right_key)
        left_entry = next(left_groups, None)
        right_entry = next(right_groups, None)
        while left_entry is not None and right_entry is not None:
            left_key, left_rows = left_entry
            right_key, right_rows = right_entry
            if left_key < right_key:
                left_entry = next(left_groups, None)
            elif left_key > right_key:
                right_entry = next(right_groups, None)
            else:
                buffered_right = list(right_rows)
                for left_row in left_rows:
                    for right_row in buffered_right:
                        yield self.combine(left_row, right_row)
                left_entry = next(left_groups, None)
                right_entry = next(right_groups, None)


class MergeSemiJoin(Operator):
    """Emit left rows whose key exists in the sorted right stream.

    This is the EXISTS evaluation of Q4 (Figure 5-8): ORDER is processed
    in ORDERKEY order and semi-joined against LINEITEM in the same order,
    so neither side is materialized.
    """

    def __init__(
        self,
        left: Iterable[Row],
        right: Iterable[Row],
        left_key: Callable[[Row], Any],
        right_key: Callable[[Row], Any],
    ) -> None:
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key

    def __iter__(self) -> Iterator[Row]:
        right_iter = iter(self.right)
        right_row = next(right_iter, None)
        for left_row in self.left:
            key = self.left_key(left_row)
            while right_row is not None and self.right_key(right_row) < key:
                right_row = next(right_iter, None)
            if right_row is None:
                return
            if self.right_key(right_row) == key:
                yield left_row


class HashJoin(Operator):
    """Inner equi-join building a hash table on the (smaller) left input."""

    def __init__(
        self,
        build: Iterable[Row],
        probe: Iterable[Row],
        build_key: Callable[[Row], Any],
        probe_key: Callable[[Row], Any],
        combine: Callable[[Row, Row], Row] | None = None,
    ) -> None:
        self.build = build
        self.probe = probe
        self.build_key = build_key
        self.probe_key = probe_key
        self.combine = combine or (lambda a, b: tuple(a) + tuple(b))

    def __iter__(self) -> Iterator[Row]:
        table: dict[Any, list[Row]] = {}
        for row in self.build:
            table.setdefault(self.build_key(row), []).append(row)
        for probe_row in self.probe:
            for build_row in table.get(self.probe_key(probe_row), ()):
                yield self.combine(build_row, probe_row)
