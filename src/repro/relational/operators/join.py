"""Join operators: sort-merge, hash, and the merge semi-join of Q4.

The paper assumes sort-merge joins fed by sorted streams ("we assume a
sort merge-join", Section 5.1); the Tetris operator produces those
streams directly from restricted base tables.  A hash join is provided
for completeness and for plans where sort order is not exploited.

All three operators are telemetry-instrumented: when the output stream
drains *naturally* they emit exactly one
:class:`~repro.telemetry.JoinEvent` carrying the leg's row count, the
pages its inputs skipped through box-cover pushdown, and (when a
``disk`` is provided to observe) the simulated start/first-tuple/end
clocks.  An abandoned iteration emits nothing — observers may treat
every event as final.  The merge joins additionally accept a
``prefetch`` coordinator (a
:class:`~repro.storage.prefetch.DualCursorPrefetcher`) which is advised
*before every pull* with the side the merge cursor demands next, so
read-ahead follows the join's actual access pattern instead of each
side's solo sweep; the coordinator is always closed when iteration ends,
naturally or not.
"""

from __future__ import annotations

from itertools import groupby
from typing import Any, Callable, Iterable, Iterator, TYPE_CHECKING

from ...telemetry import JoinEvent, emit_join_event
from .base import Operator, Row

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...storage.disk import SimulatedDisk
    from ...storage.prefetch import DualCursorPrefetcher


def _pushdown_pages_skipped(*inputs: Any) -> int:
    """Pages the inputs' scans skipped via box-cover pushdown.

    Duck-typed over anything exposing ``.stats.pages_skipped_by_pushdown``
    (``TetrisOperator``/``TetrisScan``); plain iterables contribute zero.
    Read at drain time, after both inputs are fully consumed.
    """
    total = 0
    for source in inputs:
        stats = getattr(source, "stats", None)
        total += getattr(stats, "pages_skipped_by_pushdown", 0)
    return total


def _advised(
    rows: Iterable[Row], prefetch: "DualCursorPrefetcher", side: int
) -> Iterator[Row]:
    """Yield ``rows``, advising the prefetch coordinator before each pull."""
    iterator = iter(rows)
    while True:
        prefetch.advise(side)
        try:
            row = next(iterator)
        except StopIteration:
            return
        yield row


class _InstrumentedJoin(Operator):
    """Shared telemetry/prefetch driver around a concrete merge loop.

    Subclasses implement :meth:`_join` over :meth:`_side`-wrapped inputs;
    this driver measures the leg and emits its :class:`JoinEvent` only
    when the loop ends on its own — the emit sits *after* the
    ``try``/``finally``, so early ``close()`` or an error skips it while
    the prefetch coordinator is still always released.
    """

    kind = "join"

    def __init__(
        self,
        *,
        disk: "SimulatedDisk | None" = None,
        prefetch: "DualCursorPrefetcher | None" = None,
        shard: int | None = None,
    ) -> None:
        self.disk = disk
        self.prefetch = prefetch
        self.shard = shard
        self.last_event: JoinEvent | None = None

    def _join(self) -> Iterator[Row]:
        raise NotImplementedError

    def _inputs(self) -> tuple[Any, ...]:
        raise NotImplementedError

    def _side(self, rows: Iterable[Row], side: int) -> Iterable[Row]:
        if self.prefetch is None:
            return rows
        return _advised(rows, self.prefetch, side)

    def __iter__(self) -> Iterator[Row]:
        disk = self.disk
        start = disk.clock if disk is not None else None
        first: float | None = None
        rows = 0
        try:
            for row in self._join():
                if rows == 0 and disk is not None:
                    first = disk.clock
                rows += 1
                yield row
        finally:
            if self.prefetch is not None:
                self.prefetch.close()
        event = JoinEvent(
            operator=self.kind,
            rows=rows,
            pages_skipped_by_pushdown=_pushdown_pages_skipped(*self._inputs()),
            start_clock=start,
            first_tuple_clock=first,
            end_clock=disk.clock if disk is not None else None,
            shard=self.shard,
        )
        self.last_event = event
        emit_join_event(event)


class MergeJoin(_InstrumentedJoin):
    """Inner equi-join of two streams sorted ascending on the join key.

    Duplicate keys are supported on both sides (the right group is
    buffered, as in any textbook implementation).  ``combine`` builds an
    output row from a matching pair; the default concatenates.
    """

    kind = "merge-join"

    def __init__(
        self,
        left: Iterable[Row],
        right: Iterable[Row],
        left_key: Callable[[Row], Any],
        right_key: Callable[[Row], Any],
        combine: Callable[[Row, Row], Row] | None = None,
        *,
        disk: "SimulatedDisk | None" = None,
        prefetch: "DualCursorPrefetcher | None" = None,
        shard: int | None = None,
    ) -> None:
        super().__init__(disk=disk, prefetch=prefetch, shard=shard)
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key
        self.combine = combine or (lambda a, b: tuple(a) + tuple(b))

    def _inputs(self) -> tuple[Any, ...]:
        return (self.left, self.right)

    def _join(self) -> Iterator[Row]:
        left_groups = groupby(self._side(self.left, 0), key=self.left_key)
        right_groups = groupby(self._side(self.right, 1), key=self.right_key)
        left_entry = next(left_groups, None)
        right_entry = next(right_groups, None)
        while left_entry is not None and right_entry is not None:
            left_key, left_rows = left_entry
            right_key, right_rows = right_entry
            if left_key < right_key:
                left_entry = next(left_groups, None)
            elif left_key > right_key:
                right_entry = next(right_groups, None)
            else:
                buffered_right = list(right_rows)
                for left_row in left_rows:
                    for right_row in buffered_right:
                        yield self.combine(left_row, right_row)
                left_entry = next(left_groups, None)
                right_entry = next(right_groups, None)


class MergeSemiJoin(_InstrumentedJoin):
    """Emit left rows whose key exists in the sorted right stream.

    This is the EXISTS evaluation of Q4 (Figure 5-8): ORDER is processed
    in ORDERKEY order and semi-joined against LINEITEM in the same order,
    so neither side is materialized.
    """

    kind = "merge-semi-join"

    def __init__(
        self,
        left: Iterable[Row],
        right: Iterable[Row],
        left_key: Callable[[Row], Any],
        right_key: Callable[[Row], Any],
        *,
        disk: "SimulatedDisk | None" = None,
        prefetch: "DualCursorPrefetcher | None" = None,
        shard: int | None = None,
    ) -> None:
        super().__init__(disk=disk, prefetch=prefetch, shard=shard)
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_key = right_key

    def _inputs(self) -> tuple[Any, ...]:
        return (self.left, self.right)

    def _join(self) -> Iterator[Row]:
        right_iter = iter(self._side(self.right, 1))
        right_row = next(right_iter, None)
        for left_row in self._side(self.left, 0):
            key = self.left_key(left_row)
            while right_row is not None and self.right_key(right_row) < key:
                right_row = next(right_iter, None)
            if right_row is None:
                return
            if self.right_key(right_row) == key:
                yield left_row


class HashJoin(_InstrumentedJoin):
    """Inner equi-join building a hash table on the (smaller) left input."""

    kind = "hash-join"

    def __init__(
        self,
        build: Iterable[Row],
        probe: Iterable[Row],
        build_key: Callable[[Row], Any],
        probe_key: Callable[[Row], Any],
        combine: Callable[[Row, Row], Row] | None = None,
        *,
        disk: "SimulatedDisk | None" = None,
        shard: int | None = None,
    ) -> None:
        super().__init__(disk=disk, shard=shard)
        self.build = build
        self.probe = probe
        self.build_key = build_key
        self.probe_key = probe_key
        self.combine = combine or (lambda a, b: tuple(a) + tuple(b))

    def _inputs(self) -> tuple[Any, ...]:
        return (self.build, self.probe)

    def _join(self) -> Iterator[Row]:
        table: dict[Any, list[Row]] = {}
        for row in self.build:
            table.setdefault(self.build_key(row), []).append(row)
        for probe_row in self.probe:
            for build_row in table.get(self.probe_key(probe_row), ()):
                yield self.combine(build_row, probe_row)
