"""Sorted-stream set operations: the rest of Section 2's catalogue.

"Projection, union, intersection and set difference are efficiently
implemented by processing a relation in some sort order" — and the
Tetris operator provides that sort order without an external sort, so
these operators complete the paper's argument that a multidimensional
organization accelerates *virtually any* relational operation.

All operators below consume streams already sorted by ``key`` and run
in a single pipelined pass with O(1) state (one lookahead row per
input).  Bag (``ALL``) and set semantics are both provided.
"""

from __future__ import annotations

from itertools import groupby
from typing import Any, Callable, Iterable, Iterator

from .base import Operator, Row


class Distinct(Operator):
    """Duplicate elimination over a key-sorted stream (sorted projection).

    Emits the first row of every key group; combined with a
    :class:`~repro.relational.operators.base.Project` child this is the
    classic DISTINCT projection at zero memory.
    """

    def __init__(self, child: Iterable[Row], key: Callable[[Row], Any]) -> None:
        self.child = child
        self.key = key

    def __iter__(self) -> Iterator[Row]:
        for _, rows in groupby(self.child, key=self.key):
            yield next(rows)


class UnionAll(Operator):
    """Bag union of key-sorted streams, output still sorted (merge)."""

    def __init__(
        self, inputs: list[Iterable[Row]], key: Callable[[Row], Any]
    ) -> None:
        self.inputs = inputs
        self.key = key

    def __iter__(self) -> Iterator[Row]:
        import heapq

        return heapq.merge(*self.inputs, key=self.key)


class Union(Operator):
    """Set union: merged and deduplicated by key, output sorted."""

    def __init__(
        self, inputs: list[Iterable[Row]], key: Callable[[Row], Any]
    ) -> None:
        self.inputs = inputs
        self.key = key

    def __iter__(self) -> Iterator[Row]:
        return iter(Distinct(UnionAll(self.inputs, self.key), self.key))


class Intersect(Operator):
    """Set intersection of two key-sorted streams (one row per key)."""

    def __init__(
        self,
        left: Iterable[Row],
        right: Iterable[Row],
        key: Callable[[Row], Any],
    ) -> None:
        self.left = left
        self.right = right
        self.key = key

    def __iter__(self) -> Iterator[Row]:
        left_groups = groupby(self.left, key=self.key)
        right_groups = groupby(self.right, key=self.key)
        left_entry = next(left_groups, None)
        right_entry = next(right_groups, None)
        while left_entry is not None and right_entry is not None:
            left_key, left_rows = left_entry
            right_key, _ = right_entry
            if left_key < right_key:
                left_entry = next(left_groups, None)
            elif left_key > right_key:
                right_entry = next(right_groups, None)
            else:
                yield next(left_rows)
                left_entry = next(left_groups, None)
                right_entry = next(right_groups, None)


class Difference(Operator):
    """Set difference ``left \\ right`` of two key-sorted streams."""

    def __init__(
        self,
        left: Iterable[Row],
        right: Iterable[Row],
        key: Callable[[Row], Any],
    ) -> None:
        self.left = left
        self.right = right
        self.key = key

    def __iter__(self) -> Iterator[Row]:
        left_groups = groupby(self.left, key=self.key)
        right_groups = groupby(self.right, key=self.key)
        left_entry = next(left_groups, None)
        right_entry = next(right_groups, None)
        while left_entry is not None:
            left_key, left_rows = left_entry
            while right_entry is not None and right_entry[0] < left_key:
                right_entry = next(right_groups, None)
            if right_entry is None or right_entry[0] > left_key:
                yield next(left_rows)
            left_entry = next(left_groups, None)
