"""Row-size estimation: deriving page capacities from schemas.

The paper's geometry is byte-driven: "With 8kB pages 80 tuples of the
LINEITEM relation are stored together on one page" (Section 5.3), and
ORDER at SF 1 occupies 322 MB / 8 kB ≈ 38 rows per page.  This module
estimates stored row widths from the schema's encoders (plus declared
extra payload bytes for columns a reproduction does not materialize,
like TPC-D's comment strings) and turns them into page capacities, so
table builders stay faithful to the paper's pages-per-relation ratios.
"""

from __future__ import annotations

from .schema import Encoder, Schema, StringEncoder

#: slotted-page bookkeeping per 8 kB page (header + slot directory slack)
DEFAULT_PAGE_HEADER_BYTES = 96
#: per-row overhead: slot pointer, null bitmap, alignment
DEFAULT_ROW_OVERHEAD_BYTES = 8


def encoder_bytes(encoder: Encoder) -> int:
    """Fixed-width storage estimate of one encoded attribute."""
    if isinstance(encoder, StringEncoder):
        # strings store their full prefix buffer
        return encoder.prefix_chars
    return max(1, (encoder.bits + 7) // 8)


def row_bytes(
    schema: Schema,
    *,
    extra_payload_bytes: int = 0,
    row_overhead: int = DEFAULT_ROW_OVERHEAD_BYTES,
) -> int:
    """Estimated stored width of one row of ``schema``.

    ``extra_payload_bytes`` accounts for columns the reproduction carries
    logically but does not model as attributes (e.g. TPC-D comment and
    address strings), keeping the page geometry honest.
    """
    data = sum(encoder_bytes(attr.encoder) for attr in schema)
    return data + extra_payload_bytes + row_overhead


def page_capacity_for(
    schema: Schema,
    *,
    page_bytes: int = 8192,
    extra_payload_bytes: int = 0,
    page_header: int = DEFAULT_PAGE_HEADER_BYTES,
    row_overhead: int = DEFAULT_ROW_OVERHEAD_BYTES,
) -> int:
    """Rows of ``schema`` fitting one page (at least 2)."""
    width = row_bytes(
        schema, extra_payload_bytes=extra_payload_bytes, row_overhead=row_overhead
    )
    return max(2, (page_bytes - page_header) // width)
