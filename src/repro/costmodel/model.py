"""The analytic cost model of Section 4, formula by formula.

All response times are in seconds, sizes in pages.  Restrictions are
given as normalized ranges ``(y_j, z_j) ⊆ [0, 1]`` per attribute, exactly
as the paper's ``n_j`` function expects.

Two printing errors of the paper are corrected here and documented:

* the figure lists ``c_iot_sort = c_fts + c_sort`` — clearly a typo for
  ``c_iot + c_sort`` (the surrounding text discusses the IOT retrieval
  phase costing ``s_1 · P`` random accesses);
* the completed-splits condition is printed as
  ``⌊log₂P⌋ mod d ≤ j`` which does not distribute the remainder splits
  to exactly ``r = ⌊log₂P⌋ mod d`` dimensions; we use ``j ≤ r``
  (1-indexed), which is the unique reading consistent with the
  companion rule ``p_j ≠ 0 iff j = r + 1`` (the *next* splitting
  dimension is the first without a completed extra split).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..storage.disk import DiskParameters

Range = tuple[float, float]


@dataclass(frozen=True)
class CostParameters:
    """Device and sort parameters of the analysis (Section 4.3 defaults)."""

    t_pi: float = 0.010  #: positioning time (s)
    t_tau: float = 0.001  #: transfer time per page (s)
    prefetch: int = 16  #: pages per positioning op (``C``)
    memory_pages: int = 4096  #: sort work memory ``M`` (32 MB of 8 kB pages)
    merge_degree: int = 2  #: merge fan-in ``m``

    @classmethod
    def from_disk(
        cls,
        params: DiskParameters,
        memory_pages: int = 4096,
        merge_degree: int = 2,
    ) -> "CostParameters":
        return cls(
            t_pi=params.t_pi,
            t_tau=params.t_tau,
            prefetch=params.prefetch,
            memory_pages=memory_pages,
            merge_degree=merge_degree,
        )


#: The exact parameter set of Section 4.3 (10 ms / 1 ms / C=16 / 32 MB / m=2).
SECTION_4_PARAMS = CostParameters()

#: The SUN testbed of Section 5 (8 ms positioning, 0.7 ms transfer).
SECTION_5_PARAMS = CostParameters(t_pi=0.008, t_tau=0.0007)


# ----------------------------------------------------------------------
# Section 4.1: the basic access costs
# ----------------------------------------------------------------------
def c_scan(pages: int, params: CostParameters = SECTION_4_PARAMS) -> float:
    """``c_scan(k) = ⌈k/C⌉·t_π + max(k, C)·t_τ`` — k consecutive pages."""
    if pages <= 0:
        return 0.0
    seeks = math.ceil(pages / params.prefetch)
    return seeks * params.t_pi + max(pages, params.prefetch) * params.t_tau


def c_fts(pages: int, params: CostParameters = SECTION_4_PARAMS) -> float:
    """``c_fts = (t_π/C + t_τ) · P`` — full table scan with prefetching."""
    return (params.t_pi / params.prefetch + params.t_tau) * pages


def c_iot(
    pages: int, selectivity_leading: float, params: CostParameters = SECTION_4_PARAMS
) -> float:
    """``c_iot = s_1 · P · (t_π + t_τ)`` — random access per IOT page."""
    return selectivity_leading * pages * (params.t_pi + params.t_tau)


# ----------------------------------------------------------------------
# Section 4.2: external sorting
# ----------------------------------------------------------------------
def result_pages(pages: int, selectivities: Sequence[float]) -> float:
    """``P · Π s_i`` — pages of the restricted data."""
    result = float(pages)
    for selectivity in selectivities:
        result *= selectivity
    return result


def p_sort(
    pages: int,
    selectivities: Sequence[float],
    params: CostParameters = SECTION_4_PARAMS,
) -> float:
    """``P_sort = 2 · (P·Πs_i) · log_m(P·Πs_i / M)`` — merge-sort page traffic.

    Zero when the restricted data fits into work memory (``M > P·Πs_i``):
    "sorting takes place in main memory [and] the merge sort factor is
    reduced to zero".
    """
    data = result_pages(pages, selectivities)
    if data <= params.memory_pages or data <= 0:
        return 0.0
    passes = math.log(data / params.memory_pages, params.merge_degree)
    return 2.0 * data * passes


def c_sort(
    pages: int,
    selectivities: Sequence[float],
    params: CostParameters = SECTION_4_PARAMS,
) -> float:
    """``c_sort = (t_π/C + t_τ) · P_sort`` — sequential run/merge traffic."""
    return (params.t_pi / params.prefetch + params.t_tau) * p_sort(
        pages, selectivities, params
    )


def c_fts_sort(
    pages: int,
    selectivities: Sequence[float],
    params: CostParameters = SECTION_4_PARAMS,
) -> float:
    """Full table scan retrieval plus external merge sort."""
    return c_fts(pages, params) + c_sort(pages, selectivities, params)


def c_iot_sort(
    pages: int,
    selectivities: Sequence[float],
    params: CostParameters = SECTION_4_PARAMS,
    *,
    sort_on_leading: bool = False,
) -> float:
    """IOT retrieval (restricted on ``A_1``) plus external merge sort.

    With ``sort_on_leading`` the IOT already delivers the requested sort
    order and the merge-sort factor is zero (Section 4.2).
    """
    leading = selectivities[0] if selectivities else 1.0
    retrieval = c_iot(pages, leading, params)
    if sort_on_leading:
        return retrieval
    return retrieval + c_sort(pages, selectivities, params)


# ----------------------------------------------------------------------
# Section 4.2: the UB-Tree / Tetris region-count model
# ----------------------------------------------------------------------
def l_splits_lower(dims: int, pages: int) -> int:
    """``l_j↓(d, P) = ⌊⌊log₂P⌋ / d⌋`` — completed split rounds."""
    if pages < 1:
        return 0
    return int(math.log2(pages)) // dims


def l_splits(dims: int, pages: int, dim_index: int) -> int:
    """``l_j(d, P)`` — completed recursive splits in attribute ``j``.

    ``dim_index`` is 1-based like the paper's ``j``.  The remainder
    ``r = ⌊log₂P⌋ mod d`` extra split levels go to the first ``r``
    attributes (see module docstring on the paper's typo).
    """
    if pages < 1:
        return 0
    remainder = int(math.log2(pages)) % dims
    lower = l_splits_lower(dims, pages)
    return lower + 1 if dim_index <= remainder else lower


def p_incomplete(dims: int, pages: int, dim_index: int) -> float:
    """``p_j(d, P)`` — probability of an incomplete split in ``A_j``."""
    if pages < 1:
        return 0.0
    remainder = int(math.log2(pages)) % dims
    if dim_index != remainder + 1:
        return 0.0
    return pages / (1 << int(math.log2(pages))) - 1.0


def n_intervals(y: float, z: float, splits: int) -> float:
    """``n(y_j, z_j, l_j)`` — grid cells of ``2^l`` intersected by ``[y, z]``."""
    if not 0.0 <= y <= z <= 1.0:
        raise ValueError(f"normalized range [{y}, {z}] invalid")
    cells = 1 << splits
    if z == 1.0 and y != 1.0:
        return cells - math.ceil(y * cells)
    return math.floor(z * cells) - math.ceil(y * cells) + 1


def n_regions_dim(
    dims: int, pages: int, y: float, z: float, dim_index: int
) -> float:
    """``n_j(d, P, y_j, z_j)`` — Z-regions hit by the restriction on ``A_j``."""
    splits = l_splits(dims, pages, dim_index)
    base = n_intervals(y, z, splits)
    finer = n_intervals(y, z, splits + 1)
    return base + (finer - base) * p_incomplete(dims, pages, dim_index)


def tetris_regions(pages: int, ranges: Sequence[Range]) -> float:
    """``Π_j n_j`` — total Z-regions the Tetris algorithm retrieves."""
    dims = len(ranges)
    product = 1.0
    for position, (y, z) in enumerate(ranges):
        product *= n_regions_dim(dims, pages, y, z, position + 1)
    return product


def c_tetris(
    pages: int,
    ranges: Sequence[Range],
    params: CostParameters = SECTION_4_PARAMS,
) -> float:
    """``c_tetris = (t_π + t_τ) · Π_j n_j`` — one random access per region."""
    return (params.t_pi + params.t_tau) * tetris_regions(pages, ranges)


# ----------------------------------------------------------------------
# Section 4.4: intermediate storage and pipelining
# ----------------------------------------------------------------------
def merge_sort_temp_pages(pages: int, selectivities: Sequence[float]) -> float:
    """Temporary storage of FTS-/IOT-sort: ``P · Π s_i`` pages."""
    return result_pages(pages, selectivities)


def tetris_cache_pages(
    pages: int, ranges: Sequence[Range], sort_dim: int
) -> float:
    """``cache_tetris = Π_{i≠j} n_i`` — one slice's worth of regions."""
    dims = len(ranges)
    product = 1.0
    for position, (y, z) in enumerate(ranges):
        if position == sort_dim:
            continue
        product *= n_regions_dim(dims, pages, y, z, position + 1)
    return product


def tetris_first_response(
    pages: int,
    ranges: Sequence[Range],
    sort_dim: int,
    params: CostParameters = SECTION_4_PARAMS,
) -> float:
    """Time until the first slice is complete: ``cache · (t_π + t_τ)``."""
    return (params.t_pi + params.t_tau) * tetris_cache_pages(
        pages, ranges, sort_dim
    )


def selectivity_to_range(selectivity: float, offset: float = 0.0) -> Range:
    """A normalized range of width ``selectivity`` starting at ``offset``."""
    if not 0.0 <= selectivity <= 1.0:
        raise ValueError("selectivity must be within [0, 1]")
    end = min(1.0, offset + selectivity)
    return (offset, end)
