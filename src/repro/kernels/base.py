"""The batch-kernel backend interface.

A :class:`KernelBackend` supplies the slice-level compute primitives the
hot paths are written against: encoding a whole column of points into
curve addresses, filtering a page's worth of points against a query
space, and sorting key arrays.  Two implementations exist:

* :mod:`repro.kernels.pure` — tuple-at-a-time Python, always available;
* :mod:`repro.kernels.numpy_backend` — vectorized over NumPy arrays.

Both must be **observationally identical**: same addresses, same
selected indices in the same order, same (stable) sort permutations.
The test suite asserts this for randomized curves and workloads, and the
Tetris sweep relies on it to keep its emitted stream and page access
order bit-identical regardless of the backend in use.

All batch entry points assume *valid* inputs (coordinates within the
curve's per-dimension bit lengths); validation stays at API boundaries
such as :meth:`repro.core.curves.Curve.encode`.
"""

from __future__ import annotations

from typing import Any, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..core.curves import Curve, FlippedCurve
    from ..core.query_space import QuerySpace

    AnyCurve = Curve | FlippedCurve


class SortRunBuffer:
    """DPG-style accumulator of per-page sorted ``(key, order)`` runs.

    The Tetris cache of Section 4.4, restated as cache-efficient run
    formation (Cooperman et al.'s DPG): each page contributes one
    already-sorted run (:meth:`KernelBackend.scan_page_run`), runs are
    kept separate while a slice is open, and a flush consolidates them
    with hierarchical pairwise merges — every merge step streams two
    sorted runs, so the working set per step is two runs, not the whole
    cache.  Backends keep runs in their native representation (Python
    lists of ``[key, order]`` pairs, or ``uint64`` array pairs), which
    is where the vectorized backend's win comes from: the cache never
    round-trips through per-entry Python objects.

    Entries are unique ``(key, order)`` pairs — ``order`` is the global
    arrival counter — so the induced order is total and identical to the
    key-then-arrival order of a per-tuple heap.
    """

    def push(self, run: Any) -> None:
        """Add one page's sorted run (the backend-native ``run`` of
        :meth:`KernelBackend.scan_page_run`)."""
        raise NotImplementedError

    def __len__(self) -> int:
        """Buffered tuple count (the Tetris cache size)."""
        raise NotImplementedError

    def has_key_below(self, barrier: "int | None") -> bool:
        """Whether any buffered key is ``< barrier``.

        ``None`` means "no more unread regions": everything buffered is
        flushable, so the answer is ``len(self) > 0``.  Answered from
        the run heads alone — no consolidation happens here.
        """
        raise NotImplementedError

    def cut(self, barrier: "int | None") -> "list[int]":
        """Remove and return the arrival orders of all entries with
        ``key < barrier`` (all entries when ``barrier`` is ``None``), in
        ``(key, order)`` order.  Consolidates the pending runs first.
        """
        raise NotImplementedError


class KernelBackend:
    """Batch compute primitives over points, addresses and keys."""

    #: registry name ("python", "numpy")
    name: str = "abstract"

    def encode_batch(
        self, curve: "AnyCurve", points: Sequence[Sequence[int]]
    ) -> list[int]:
        """Curve address of every point, as plain Python ints.

        Coordinates must already be valid for ``curve`` (unchecked fast
        path).  Accepts plain :class:`~repro.core.curves.Curve` objects
        and :class:`~repro.core.curves.FlippedCurve` reflections.
        """
        raise NotImplementedError

    def decode_batch(
        self, curve: "AnyCurve", addresses: Sequence[int]
    ) -> list[tuple[int, ...]]:
        """Point of every address (inverse of :meth:`encode_batch`)."""
        raise NotImplementedError

    def filter_box_batch(
        self,
        lo: Sequence[int],
        hi: Sequence[int],
        points: Sequence[Sequence[int]],
    ) -> list[int]:
        """Indices (ascending) of the points inside the box ``[lo, hi]``."""
        raise NotImplementedError

    def filter_space_batch(
        self, space: "QuerySpace", points: Sequence[Sequence[int]]
    ) -> list[int]:
        """Indices (ascending) of the points contained in ``space``.

        Must agree exactly with per-point
        :meth:`~repro.core.query_space.QuerySpace.contains_point`.
        Backends may vectorize the geometric space types (boxes,
        attribute comparisons, intersections) and fall back to the
        per-point test for opaque predicates.
        """
        raise NotImplementedError

    def filter_space_page(self, space: "QuerySpace", page: Any) -> list[int]:
        """Indices (ascending) of the page records whose point is in ``space``.

        Page-level twin of :meth:`filter_space_batch` over a storage
        page's ``(z_address, (point, payload))`` records — the kernel
        behind the UB-Tree range query, which filters but neither keys
        nor sorts.  Backends may reuse the memoized columnar view keyed
        on the page's ``version`` counter.
        """
        raise NotImplementedError

    def argsort_keys(
        self, keys: Sequence[Any], *, reverse: bool = False
    ) -> list[int]:
        """Stable sort permutation of ``keys``.

        ``[keys[i] for i in argsort_keys(keys)]`` is sorted; ties keep
        their original relative order even with ``reverse=True``
        (matching ``list.sort(reverse=True)``).  Keys are typically curve
        addresses (ints) or composite-key tuples, but any totally
        ordered values must work.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # fused compound kernels (one call per page / per region batch)
    # ------------------------------------------------------------------
    def page_entries(
        self,
        curve: "AnyCurve",
        space: "QuerySpace",
        points: Sequence[Sequence[int]],
        base: int = 0,
    ) -> tuple[int, Sequence[int], Sequence[Sequence[int]]]:
        """Filter, key and sort one page's worth of points in one call.

        Returns ``(count, selected, entries)``: ``selected`` holds the
        qualifying point indices in ascending (arrival) order, and each
        entry is a ``[key, order]`` pair — ``key`` the curve address of
        the qualifying point, ``order = base + arrival_rank`` its global
        arrival number.  Entries are sorted by ``(key, order)``, so the
        Tetris sweep can splice them into its cache directly; orders are
        unique across calls when ``base`` advances by ``count`` each
        time, which makes the entry ordering total.  Vectorized backends
        convert the page to an array exactly once.
        """
        raise NotImplementedError

    def scan_page(
        self, curve: "AnyCurve", space: "QuerySpace", page: Any, base: int = 0
    ) -> tuple[int, Sequence[int], Sequence[Sequence[int]]]:
        """:meth:`page_entries` over a storage page's records.

        ``page`` is a :class:`~repro.storage.page.Page` whose records are
        ``(z_address, (point, payload))`` pairs — the UB-Tree Z-region
        layout the Tetris sweep reads.  Backends may memoize derived
        per-page state (e.g. a columnar array view) keyed on the page's
        ``version`` counter, which the storage layer bumps on every
        record mutation.
        """
        raise NotImplementedError

    def scan_page_run(
        self, curve: "AnyCurve", space: "QuerySpace", page: Any, base: int = 0
    ) -> tuple[int, Sequence[int], Any]:
        """:meth:`scan_page` returning the entries as a backend-native run.

        ``(count, selected, run)`` where ``run`` feeds
        :meth:`make_run_buffer`'s buffer from the *same* backend and is
        otherwise opaque: the pure backend returns the ``[key, order]``
        entry list, the NumPy backend a pair of ``uint64`` arrays that
        never materialize per-entry Python objects.  ``count`` and
        ``selected`` match :meth:`scan_page` exactly.
        """
        raise NotImplementedError

    def make_run_buffer(self) -> SortRunBuffer:
        """A fresh :class:`SortRunBuffer` in this backend's native
        run representation (see :meth:`scan_page_run`)."""
        raise NotImplementedError

    def scan_block(
        self, curve: "AnyCurve", space: "QuerySpace", pages: Sequence[Any]
    ) -> tuple[list[Sequence[int]], Sequence[int]]:
        """Filter, key and sort a whole block of pages in one call.

        ``pages`` is a sequence of storage pages in *arrival* (region
        retrieval) order.  Returns ``(selected_per_page, emit_order)``:
        ``selected_per_page[p]`` holds page ``p``'s qualifying record
        indices in ascending order (exactly :meth:`scan_page`'s
        ``selected``), and ``emit_order`` is the sort permutation over
        the concatenation of all qualifying tuples in arrival order —
        indexing the concatenated arrivals with it reproduces, bit for
        bit, the stream a page-at-a-time Tetris sweep over the same
        region order emits (keys ascend; arrival order breaks ties).
        One task per slab, not per scan step: this is the whole-slab
        kernel the thread executor dispatches.
        """
        raise NotImplementedError

    def merge_sorted_keys(
        self,
        keys_a: Sequence[Any],
        keys_b: Sequence[Any],
        *,
        reverse: bool = False,
    ) -> list[int]:
        """Stable merge permutation over two already-sorted key runs.

        Both inputs are sorted per ``reverse``; the result indexes their
        concatenation (``keys_a`` first) such that gathering through it
        is sorted, with ``keys_a`` winning ties — i.e. exactly the
        permutation a stable sort of the concatenation would produce.
        This is the pairwise step of DPG's hierarchical run merging; the
        external sort uses it to consolidate cache-sized initial runs.
        """
        raise NotImplementedError

    def region_min_keys(
        self,
        z_curve: "Curve",
        sort_curve: "AnyCurve",
        intervals: Sequence[tuple[int, int]],
        lo: Sequence[int],
        hi: Sequence[int],
    ) -> "list[int | None]":
        """``min sort_curve-address over (interval ∩ [lo, hi])`` per interval.

        Each interval is a Z-address range ``(first, last)`` on
        ``z_curve`` (a Z-region); the result entry is ``None`` when the
        interval's geometry is disjoint from the box.  This is the eager
        Tetris strategy's static region keying, batched over all
        candidate regions at once: every interval decomposes into
        aligned boxes, each box is clamped to ``[lo, hi]``, and the
        minimum ``sort_curve`` address of a surviving box is attained at
        a corner (monotonicity).
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<KernelBackend {self.name}>"
