"""Shared-memory columnar page store: zero-copy slab handoff.

The NumPy backend memoizes each Z-region page as a ``(records, dims)``
``uint64`` coordinate matrix keyed on ``Page.version``.  This module
moves those matrices into ``multiprocessing.shared_memory`` segments so
slab-parallel workers *attach* read-only views instead of receiving
pickled pages:

* the **scan coordinator** (the process that owns the
  :class:`~repro.storage.buffer.BufferPool`) is the only creator — it
  ``put()``\\ s a page's columns once, stamped with the page's mutation
  ``version``;
* **workers** (fork children, executor threads) call :meth:`get` /
  :meth:`attach` and receive a read-only NumPy view over the shared
  mapping — no serialization, no copy;
* the coordinator **unlinks**: a segment is unlinked the moment it is
  replaced (version bump), discarded (buffer-pool eviction) or the store
  closes.  POSIX keeps an unlinked mapping valid while it is mapped, so
  live reader views never dangle; the retired ``SharedMemory`` handles
  are parked in a graveyard and closed (best-effort — a still-exported
  buffer keeps its mapping alive) when the store closes.

Version-stamped invalidation: :meth:`get` with a newer version misses
(the caller rebuilds and re-``put()``\\ s), and :meth:`attach` raises the
typed :class:`StaleSegmentError` — a worker can observe fresh columns or
a typed error, never stale ones.

Crash safety: every created segment is tracked by a ``weakref.finalize``
finalizer (which also runs at interpreter exit), so an abandoned store
still unlinks its segments; the finalizer and :meth:`put` are both
guarded by the creator PID, so fork children can neither create nor
unlink segments they do not own.  Python's ``resource_tracker`` remains
the backstop of last resort for hard crashes.

The store registry is per scan target: :func:`shared_columns` builds one
store for the table being swept, optionally bound to that table's buffer
pool so evictions retire the matching segments (shm residency then never
exceeds pool residency).  ``REPRO_CHECKS=1`` cross-checks the
created/live/retired/unlinked ledger on every mutation
(:func:`repro.invariants.validate_shm_store`).
"""

from __future__ import annotations

import os
import weakref
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Any, Iterator

from ..invariants.sanitizer import guarded_by, note_access, tracked_lock

try:  # NumPy is optional for the package; this module needs it at use time
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    np = None  # type: ignore[assignment]

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..storage.buffer import BufferPool

__all__ = [
    "MissingSegmentError",
    "ShmStats",
    "SharedColumnStore",
    "StaleSegmentError",
    "activate",
    "active_store",
    "deactivate",
    "shared_columns",
]


class StaleSegmentError(RuntimeError):
    """A worker demanded a page version the shared segment no longer holds."""


class MissingSegmentError(RuntimeError):
    """A worker demanded a page that was never staged into the store."""


@dataclass
class ShmStats:
    """Lifecycle ledger of one store (validated under ``REPRO_CHECKS=1``)."""

    created: int = 0  #: segments allocated by the owning process
    attached: int = 0  #: read-only views handed out by get()/attach()
    stale_misses: int = 0  #: get() misses caused by a version mismatch
    retired: int = 0  #: segments removed from the registry (replace/evict/close)
    unlinked: int = 0  #: segments whose shared name was removed
    rejected_puts: int = 0  #: put() refusals (non-owner, closed, alloc failure)


class _Segment:
    """One page's columns in shared memory, stamped with its version."""

    __slots__ = ("memory", "version", "shape", "dtype")

    def __init__(
        self,
        memory: shared_memory.SharedMemory,
        version: int,
        shape: tuple[int, ...],
        dtype: str,
    ) -> None:
        self.memory = memory
        self.version = version
        self.shape = shape
        self.dtype = dtype


def _close_quietly(memory: shared_memory.SharedMemory) -> None:
    """Release a mapping unless a live view still exports its buffer."""
    try:
        memory.close()
    except BufferError:
        # a reader's NumPy view is still alive; the mapping stays valid
        # until that view is collected (the name is already unlinked)
        return


def _unlink_quietly(memory: shared_memory.SharedMemory) -> None:
    try:
        memory.unlink()
    except FileNotFoundError:  # pragma: no cover - already gone
        return


def _finalize_store(
    owner_pid: int,
    segments: dict[int, _Segment],
    graveyard: list[shared_memory.SharedMemory],
) -> None:
    """Last-resort cleanup for an abandoned store (GC or interpreter exit).

    Runs in fork children too (they inherit the finalizer), so the PID
    guard is what keeps a worker's exit from unlinking the parent's
    segments.
    """
    if os.getpid() != owner_pid:
        return
    for segment in list(segments.values()):
        _unlink_quietly(segment.memory)
        _close_quietly(segment.memory)
    segments.clear()
    for memory in graveyard:
        _close_quietly(memory)
    graveyard.clear()


@guarded_by("_lock", "_segments", "_graveyard")
class SharedColumnStore:
    """Registry of shared-memory column segments for one scan target.

    ``label`` names the table (or scan) the store serves — informational
    only, but it keeps multi-table diagnostics readable.  All methods are
    thread-safe (the segment registry and graveyard are guarded by the
    ``shm-store`` lock, last in the declared global order because the
    buffer pool notifies eviction observers while holding its own lock);
    creation and unlinking are additionally restricted to the process
    that constructed the store.
    """

    def __init__(self, *, label: str = "") -> None:
        if np is None:
            raise RuntimeError(
                "the shared-memory column store requires NumPy; "
                "the pure backend hands slabs off copy-on-write instead"
            )
        self.label = label
        self.stats = ShmStats()
        self._segments: dict[int, _Segment] = {}
        self._graveyard: list[shared_memory.SharedMemory] = []
        self._lock = tracked_lock("shm-store")
        self._owner_pid = os.getpid()
        self._closed = False
        self._pool: "BufferPool | None" = None
        self._finalizer = weakref.finalize(
            self, _finalize_store, self._owner_pid, self._segments, self._graveyard
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def owner_pid(self) -> int:
        return self._owner_pid

    @property
    def live_segments(self) -> int:
        return len(self._segments)

    def segment_pages(self) -> tuple[int, ...]:
        """Page ids currently staged (diagnostics and tests)."""
        with self._lock:
            return tuple(sorted(self._segments))

    # ------------------------------------------------------------------
    # the lifecycle: put (create) / get / attach / discard / close
    # ------------------------------------------------------------------
    def put(self, page_id: int, version: int, columns: "np.ndarray") -> "np.ndarray":
        """Publish a page's columns; returns the shared read-only view.

        Only the owning process creates segments; callers in workers (or
        after close, or when the segment allocation fails) get the input
        array back unchanged and keep working on private memory — the
        store degrades, it never blocks a scan.
        """
        with self._lock:
            if self._closed or os.getpid() != self._owner_pid:
                self.stats.rejected_puts += 1
                return columns
            previous = self._segments.pop(page_id, None)
            if previous is not None:
                self._retire(previous)
            try:
                memory = shared_memory.SharedMemory(
                    create=True, size=max(int(columns.nbytes), 1)
                )
            except (OSError, ValueError):
                self.stats.rejected_puts += 1
                self._validate()
                return columns
            view: "np.ndarray" = np.ndarray(
                columns.shape, dtype=columns.dtype, buffer=memory.buf
            )
            view[...] = columns
            view.flags.writeable = False
            self._segments[page_id] = _Segment(
                memory, version, tuple(columns.shape), columns.dtype.str
            )
            note_access(self, "_segments", write=True)
            self.stats.created += 1
            self._validate()
            return view

    def get(self, page_id: int, version: int) -> "np.ndarray | None":
        """Read-only view of the page's columns, or ``None`` to rebuild.

        ``None`` means the page was never staged *or* the segment holds
        an older version (stamped invalidation): the caller rebuilds
        from the page records and may re-:meth:`put`.
        """
        with self._lock:
            segment = self._segments.get(page_id)
            if segment is None:
                return None
            if segment.version != version:
                self.stats.stale_misses += 1
                return None
            self.stats.attached += 1
            return self._view(segment)

    def attach(self, page_id: int, version: int) -> "np.ndarray":
        """Strict worker-side variant of :meth:`get`: typed errors.

        Raises :class:`MissingSegmentError` when the page was never
        staged and :class:`StaleSegmentError` when the staged version
        differs — a worker can never silently read stale columns.
        """
        with self._lock:
            segment = self._segments.get(page_id)
            if segment is None:
                raise MissingSegmentError(
                    f"page {page_id} has no staged column segment"
                    f"{f' (store {self.label})' if self.label else ''}"
                )
            if segment.version != version:
                raise StaleSegmentError(
                    f"page {page_id}: staged columns are version "
                    f"{segment.version}, worker expects {version}; the page "
                    "was mutated after staging"
                )
            self.stats.attached += 1
            return self._view(segment)

    def discard(self, page_id: int) -> bool:
        """Retire one page's segment (buffer-pool eviction observer)."""
        with self._lock:
            segment = self._segments.pop(page_id, None)
            if segment is None:
                return False
            note_access(self, "_segments", write=True)
            self._retire(segment)
            self._validate()
            return True

    def close(self) -> None:
        """Unlink every live segment and release retired mappings.

        Idempotent.  Safe to call from a worker (no-op on the shared
        registry: only the owner unlinks).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if os.getpid() == self._owner_pid:
                for segment in list(self._segments.values()):
                    self._retire(segment)
                self._segments.clear()
                for memory in self._graveyard:
                    _close_quietly(memory)
                self._graveyard.clear()
            self._validate()
        self._finalizer.detach()
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.remove_eviction_observer(self.discard)

    # ------------------------------------------------------------------
    # buffer-pool binding: shm residency follows pool residency
    # ------------------------------------------------------------------
    def bind_pool(self, pool: "BufferPool") -> None:
        """Retire segments in lockstep with the pool's evictions."""
        if self._pool is not None:
            raise RuntimeError("store is already bound to a buffer pool")
        self._pool = pool
        pool.add_eviction_observer(self.discard)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _view(self, segment: _Segment) -> "np.ndarray":
        view: "np.ndarray" = np.ndarray(
            segment.shape, dtype=segment.dtype, buffer=segment.memory.buf
        )
        view.flags.writeable = False
        return view

    def _retire(self, segment: _Segment) -> None:
        """Unlink now; park the handle until close (views may be live)."""
        _unlink_quietly(segment.memory)
        self._graveyard.append(segment.memory)
        self.stats.retired += 1
        self.stats.unlinked += 1

    def _validate(self) -> None:
        from .. import invariants

        if invariants.enabled():
            invariants.validate_shm_store(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else f"{len(self._segments)} segments"
        label = f" {self.label!r}" if self.label else ""
        return f"<SharedColumnStore{label} {state}>"


# ----------------------------------------------------------------------
# the active store: what NumPyBackend._page_columns consults
# ----------------------------------------------------------------------
_active_store: SharedColumnStore | None = None


def active_store() -> SharedColumnStore | None:
    """The store the NumPy backend currently publishes columns through."""
    return _active_store


def activate(store: SharedColumnStore) -> SharedColumnStore:
    """Make ``store`` the active one (fork children inherit it)."""
    global _active_store
    if _active_store is not None:
        raise RuntimeError("a shared column store is already active")
    _active_store = store
    return store


def deactivate() -> None:
    global _active_store
    _active_store = None


@contextmanager
def shared_columns(
    store: SharedColumnStore | None = None,
    *,
    label: str = "",
    pool: "BufferPool | None" = None,
) -> Iterator[SharedColumnStore]:
    """Activate a store for the duration of a scan; always close on exit.

    The close-on-exit guarantee is what the segment-leak contract rests
    on: a scan that raises mid-slab still unlinks every segment it
    created (asserted by the test suite).
    """
    if store is None:
        store = SharedColumnStore(label=label)
    if pool is not None:
        store.bind_pool(pool)
    activate(store)
    try:
        yield store
    finally:
        deactivate()
        store.close()


def segment_exists(name: str) -> bool:
    """Whether a shared segment with this system name still exists.

    Test helper for the leak contract: after a store closes, every name
    it created must be gone.
    """
    try:
        probe = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    probe.close()
    return True


def _segment_names(store: SharedColumnStore) -> "list[str]":
    """System names of the store's live segments (test helper)."""
    with store._lock:
        return [segment.memory.name for segment in store._segments.values()]


def resolve_columns(store: SharedColumnStore | None, page: Any) -> "np.ndarray | None":
    """Fetch a page's staged columns through the stamped-version gate.

    Convenience used by the NumPy backend: ``None`` (no store, never
    staged, or stale) means "rebuild from the records".
    """
    if store is None:
        return None
    return store.get(page.page_id, page.version)
