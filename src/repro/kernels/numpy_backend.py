"""NumPy kernel backend: vectorized batch primitives.

The scalar :class:`~repro.core.curves.Curve` already encodes through
byte-chunked lookup tables; this backend lifts those same tables into
``uint64`` NumPy arrays and applies them to whole columns at once — one
fancy-indexing gather per (dimension, byte chunk) instead of a Python
loop per tuple.  Filtering compares entire coordinate columns, and key
sorts use NumPy's stable ``argsort`` / ``lexsort``.

Addresses are carried as ``uint64``, so curves wider than 64 bits (or
key values outside the ``uint64`` / ``int64`` range) transparently fall
back to the pure-Python backend for that call — correctness never
depends on vectorizability.  All results are converted back to plain
Python ints, so downstream consumers (heap barriers, B-tree keys,
pickled pages) see exactly what the pure backend produces.
"""

from __future__ import annotations

import weakref
from typing import Any, Sequence

import numpy as np

from ..core.curves import Curve, FlippedCurve
from ..core.query_space import (
    ComparisonSpace,
    IntersectionSpace,
    QueryBox,
    QuerySpace,
)
from .pure import PurePythonBackend

_U64 = np.uint64
_BYTE = _U64(0xFF)

_NP_COMPARATORS = {
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}


class _PagePoints:
    """Lazy point view of a Z-region page's records.

    Vectorized space tests never touch it; only the per-point fallback
    for opaque predicates indexes it, so the point list is not
    materialized on the fast path.
    """

    __slots__ = ("_records",)

    def __init__(self, records) -> None:
        self._records = records

    def __len__(self) -> int:
        return len(self._records)

    def __getitem__(self, index):
        return self._records[index][1][0]


class _CurveTables:
    """The byte-chunk lookup tables of one curve, as uint64 arrays."""

    __slots__ = ("encode", "decode", "coord_max", "suffix_masks")

    def __init__(self, curve: Curve) -> None:
        #: per dimension: array (chunk_count, 256) of address contributions
        self.encode = [
            np.array(dim_tables, dtype=_U64)
            for dim_tables in curve._encode_tables.tables
        ]
        #: array (chunk_count, 256, dims) of coordinate contributions
        self.decode = np.array(curve._decode_tables.chunks, dtype=_U64)
        self.coord_max = np.array(curve.coord_max, dtype=_U64)
        #: array (total_bits + 1, dims): coordinate bits freed by the k
        #: least significant schedule positions (aligned-block hi corners)
        self.suffix_masks = np.array(curve._suffix_masks, dtype=_U64)


class NumPyBackend(PurePythonBackend):
    """Vectorized batch primitives (inherits pure loops as fallbacks)."""

    name = "numpy"

    def __init__(self) -> None:
        self._tables: "weakref.WeakKeyDictionary[Curve, _CurveTables | None]" = (
            weakref.WeakKeyDictionary()
        )
        # per-QueryBox bound arrays: a scan tests the same box against
        # every page, so the conversion must not repeat per call
        self._boxes: "weakref.WeakKeyDictionary[QueryBox, tuple | None]" = (
            weakref.WeakKeyDictionary()
        )
        # columnar cache: the uint64 coordinate matrix of a Z-region
        # page, keyed by the page's mutation version.  Repeated scans
        # over the same relation (the common OLAP pattern) then skip the
        # Python-tuple → array conversion entirely.
        self._columns: "weakref.WeakKeyDictionary[Any, tuple]" = (
            weakref.WeakKeyDictionary()
        )

    def _box_arrays(self, space: QueryBox) -> "tuple | None":
        arrays = self._boxes.get(space, False)
        if arrays is False:
            try:
                arrays = (
                    np.asarray(space.lo, dtype=_U64),
                    np.asarray(space.hi, dtype=_U64),
                )
            except (OverflowError, ValueError, TypeError):
                arrays = None
            self._boxes[space] = arrays
        return arrays

    # ------------------------------------------------------------------
    # per-curve table preparation
    # ------------------------------------------------------------------
    def _tables_for(self, curve: Curve) -> _CurveTables | None:
        tables = self._tables.get(curve, False)
        if tables is False:
            # uint64 addresses cap the vectorizable width at 64 bits
            tables = _CurveTables(curve) if curve.total_bits <= 64 else None
            self._tables[curve] = tables
        return tables

    @staticmethod
    def _unwrap(curve: "Curve | FlippedCurve") -> tuple[Curve, frozenset[int]]:
        if isinstance(curve, FlippedCurve):
            return curve.base_curve, curve.flip_dims
        return curve, frozenset()

    # ------------------------------------------------------------------
    # encode / decode
    # ------------------------------------------------------------------
    @staticmethod
    def _encode_columns(tables: _CurveTables, columns: "np.ndarray") -> "np.ndarray":
        """Addresses of a (n, dims) coordinate array (already reflected)."""
        addresses = np.zeros(len(columns), dtype=_U64)
        for dim, dim_tables in enumerate(tables.encode):
            column = columns[:, dim]
            for chunk in range(dim_tables.shape[0]):
                addresses |= dim_tables[chunk][
                    (column >> _U64(8 * chunk)) & _BYTE
                ]
        return addresses

    @staticmethod
    def _decode_addresses(tables: _CurveTables, packed: "np.ndarray") -> "np.ndarray":
        """(n, dims) coordinate array of an address vector (no reflection)."""
        coords = np.zeros((len(packed), len(tables.coord_max)), dtype=_U64)
        for chunk in range(tables.decode.shape[0]):
            coords |= tables.decode[chunk][(packed >> _U64(8 * chunk)) & _BYTE]
        return coords

    def encode_batch(self, curve, points):
        if not len(points):
            return []
        base, flip = self._unwrap(curve)
        tables = self._tables_for(base)
        if tables is None:
            return super().encode_batch(curve, points)
        columns = np.asarray(points, dtype=_U64)
        if flip:
            columns = columns.copy() if columns is points else columns
            for dim in flip:
                columns[:, dim] = tables.coord_max[dim] - columns[:, dim]
        return self._encode_columns(tables, columns).tolist()

    def decode_batch(self, curve, addresses):
        if not len(addresses):
            return []
        base, flip = self._unwrap(curve)
        tables = self._tables_for(base)
        if tables is None:
            return super().decode_batch(curve, addresses)
        packed = np.asarray(addresses, dtype=_U64)
        coords = self._decode_addresses(tables, packed)
        for dim in flip:
            coords[:, dim] = tables.coord_max[dim] - coords[:, dim]
        return [tuple(row) for row in coords.tolist()]

    # ------------------------------------------------------------------
    # filtering
    # ------------------------------------------------------------------
    def filter_box_batch(self, lo, hi, points):
        if not len(points):
            return []
        try:
            columns = np.asarray(points, dtype=_U64)
            lo_arr = np.asarray(lo, dtype=_U64)
            hi_arr = np.asarray(hi, dtype=_U64)
        except (OverflowError, ValueError, TypeError):
            return super().filter_box_batch(lo, hi, points)
        mask = ((columns >= lo_arr) & (columns <= hi_arr)).all(axis=1)
        return np.nonzero(mask)[0].tolist()

    def filter_space_batch(self, space: QuerySpace, points):
        if not len(points):
            return []
        try:
            columns = np.asarray(points, dtype=_U64)
        except (OverflowError, ValueError, TypeError):
            return super().filter_space_batch(space, points)
        mask = np.ones(len(points), dtype=bool)
        self._mask_space(space, columns, points, mask)
        return np.nonzero(mask)[0].tolist()

    def _mask_space(
        self,
        space: QuerySpace,
        columns: "np.ndarray",
        points,
        mask: "np.ndarray",
    ) -> None:
        """AND ``space`` membership into ``mask`` (vectorized per part)."""
        if isinstance(space, QueryBox):
            arrays = self._box_arrays(space)
            if arrays is None:
                self._mask_pointwise(space, points, mask)
                return
            lo_arr, hi_arr = arrays
            mask &= ((columns >= lo_arr) & (columns <= hi_arr)).all(axis=1)
        elif isinstance(space, ComparisonSpace):
            compare = _NP_COMPARATORS[space.op]
            mask &= compare(columns[:, space.left_dim], columns[:, space.right_dim])
        elif isinstance(space, IntersectionSpace):
            for part in space.parts:
                if not mask.any():
                    return
                self._mask_space(part, columns, points, mask)
        else:
            # opaque predicate (PredicateSpace etc.): per-point test, but
            # only on the still-surviving candidates
            self._mask_pointwise(space, points, mask)

    @staticmethod
    def _mask_pointwise(space: QuerySpace, points, mask: "np.ndarray") -> None:
        contains = space.contains_point
        for index in np.nonzero(mask)[0]:
            if not contains(points[index]):
                mask[index] = False

    def filter_space_page(self, space: QuerySpace, page):
        """Page-level space filter over the memoized columnar view."""
        records = page.records
        if not records:
            return []
        columns = self._page_columns(page)
        if columns is None:
            return super().filter_space_page(space, page)
        points = _PagePoints(records)  # materialized only by opaque spaces
        mask = np.ones(len(columns), dtype=bool)
        self._mask_space(space, columns, points, mask)
        return np.nonzero(mask)[0].tolist()

    # ------------------------------------------------------------------
    # sorting
    # ------------------------------------------------------------------
    def argsort_keys(self, keys: Sequence[Any], *, reverse: bool = False):
        if not len(keys):
            return []
        try:
            array = np.asarray(keys)
        except (OverflowError, ValueError, TypeError):
            return super().argsort_keys(keys, reverse=reverse)
        if not np.issubdtype(array.dtype, np.integer):
            # floats, strings, objects, mixed tuples: Python semantics win
            return super().argsort_keys(keys, reverse=reverse)
        if reverse:
            # ~k is strictly decreasing in k for any integer dtype, so a
            # stable ascending sort of ~keys is a stable descending sort
            # of keys (ties keep original order, like list.sort).
            array = ~array
        if array.ndim == 1:
            return np.argsort(array, kind="stable").tolist()
        if array.ndim == 2:
            # composite keys: lexsort is stable, last key is primary
            return np.lexsort(array.T[::-1]).tolist()
        return super().argsort_keys(keys, reverse=reverse)

    # ------------------------------------------------------------------
    # fused compound kernels
    # ------------------------------------------------------------------
    def page_entries(self, curve, space, points, base=0):
        """Filter + key + sort one page with a single array conversion."""
        if not len(points):
            return 0, [], []
        base_curve, flip = self._unwrap(curve)
        tables = self._tables_for(base_curve)
        if tables is None:
            return super().page_entries(curve, space, points, base)
        try:
            columns = np.asarray(points, dtype=_U64)
        except (OverflowError, ValueError, TypeError):
            return super().page_entries(curve, space, points, base)
        return self._entries_from_columns(
            tables, flip, space, columns, points, base
        )

    def _entries_from_columns(self, tables, flip, space, columns, points, base):
        """Shared tail of :meth:`page_entries` / :meth:`scan_page`."""
        mask = np.ones(len(columns), dtype=bool)
        self._mask_space(space, columns, points, mask)
        selected = np.nonzero(mask)[0]
        if not selected.size:
            return 0, [], []
        chosen = columns[selected]  # fancy index copies: in-place flip is safe
        for dim in flip:
            chosen[:, dim] = tables.coord_max[dim] - chosen[:, dim]
        keys = self._encode_columns(tables, chosen)
        perm = np.argsort(keys, kind="stable")
        entries = np.stack(
            (keys[perm], perm.astype(_U64) + _U64(base)), axis=1
        ).tolist()
        return int(selected.size), selected.tolist(), entries

    def _page_columns(self, page) -> "np.ndarray | None":
        """The page's points as a cached (records, dims) uint64 matrix."""
        cached = self._columns.get(page)
        version = page.version
        if cached is not None and cached[0] == version:
            return cached[1]
        records = page.records
        try:
            # Z-region records are (z_address, (point, payload)); every
            # stored point passed checked encoding, so the coordinate
            # count and ranges are valid by construction and the flat
            # fill cannot misalign
            flat = np.fromiter(
                (
                    coordinate
                    for _, (point, _) in records
                    for coordinate in point
                ),
                dtype=_U64,
            )
            columns = flat.reshape(len(records), -1) if len(records) else None
        except (OverflowError, ValueError, TypeError):
            columns = None
        try:
            self._columns[page] = (version, columns)
        except TypeError:  # pragma: no cover - non-weakref page stand-ins
            pass
        return columns

    def scan_page(self, curve, space, page, base=0):
        """Fused page kernel over the memoized columnar view."""
        records = page.records
        if not records:
            return 0, [], []
        base_curve, flip = self._unwrap(curve)
        tables = self._tables_for(base_curve)
        if tables is None:
            return super().scan_page(curve, space, page, base)
        columns = self._page_columns(page)
        if columns is None or columns.shape[1] != base_curve.dims:
            return super().scan_page(curve, space, page, base)
        points = _PagePoints(records)  # materialized only by opaque spaces
        return self._entries_from_columns(
            tables, flip, space, columns, points, base
        )

    def region_min_keys(self, z_curve, sort_curve, intervals, lo, hi):
        """Batched region keying: decode, clamp and encode all aligned
        blocks of all intervals in one vectorized pass."""
        if not intervals:
            return []
        base_sort, flip = self._unwrap(sort_curve)
        z_tables = self._tables_for(z_curve)
        sort_tables = self._tables_for(base_sort)
        if z_tables is None or sort_tables is None:
            return super().region_min_keys(z_curve, sort_curve, intervals, lo, hi)

        # enumerating the aligned blocks is cheap bit arithmetic; decode,
        # clamp and encode over the flattened block list are vectorized
        positions: list[int] = []
        sizes: list[int] = []
        counts: list[int] = []
        for first, last in intervals:
            filled = len(positions)
            for position, k in z_curve.interval_blocks(first, last):
                positions.append(position)
                sizes.append(k)
            counts.append(len(positions) - filled)
        if min(counts) == 0:  # empty interval: segment reduce needs >= 1 each
            return super().region_min_keys(z_curve, sort_curve, intervals, lo, hi)

        los = self._decode_addresses(z_tables, np.asarray(positions, dtype=_U64))
        his = los | z_tables.suffix_masks[np.asarray(sizes)]
        lo_arr = np.asarray(lo, dtype=_U64)
        hi_arr = np.asarray(hi, dtype=_U64)
        clamped_lo = np.maximum(los, lo_arr)
        clamped_hi = np.minimum(his, hi_arr)
        valid = (clamped_lo <= clamped_hi).all(axis=1)

        # the minimal sort-curve address of a box sits at the corner that
        # takes hi in flipped dimensions; encoding through the base curve
        # reflects those coordinates (coord_max - hi), lo elsewhere
        if flip:
            corners = clamped_lo.copy()
            for dim in flip:
                corners[:, dim] = sort_tables.coord_max[dim] - clamped_hi[:, dim]
        else:
            corners = clamped_lo
        keys = self._encode_columns(sort_tables, corners)
        keys[~valid] = np.iinfo(_U64).max  # never the min unless it is real

        offsets = np.zeros(len(counts), dtype=np.intp)
        np.cumsum(counts[:-1], out=offsets[1:])
        minima = np.minimum.reduceat(keys, offsets)
        any_valid = np.bitwise_or.reduceat(valid, offsets)
        return [
            int(key) if ok else None
            for key, ok in zip(minima.tolist(), any_valid.tolist())
        ]
