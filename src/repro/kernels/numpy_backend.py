"""NumPy kernel backend: vectorized batch primitives.

The scalar :class:`~repro.core.curves.Curve` already encodes through
byte-chunked lookup tables; this backend lifts those same tables into
``uint64`` NumPy arrays and applies them to whole columns at once — one
fancy-indexing gather per (dimension, byte chunk) instead of a Python
loop per tuple.  Filtering compares entire coordinate columns, and key
sorts use NumPy's stable ``argsort`` / ``lexsort``.

Addresses are carried as ``uint64``, so curves wider than 64 bits (or
key values outside the ``uint64`` / ``int64`` range) transparently fall
back to the pure-Python backend for that call — correctness never
depends on vectorizability.  All results are converted back to plain
Python ints, so downstream consumers (heap barriers, B-tree keys,
pickled pages) see exactly what the pure backend produces.
"""

from __future__ import annotations

import weakref
from bisect import bisect_right
from typing import Any, Sequence

import numpy as np

from ..core.curves import Curve, FlippedCurve
from ..core.query_space import (
    ComparisonSpace,
    IntersectionSpace,
    IntervalUnionSpace,
    QueryBox,
    QuerySpace,
)
from . import shm
from .base import SortRunBuffer
from .pure import PurePythonBackend, PureSortRunBuffer

_U64 = np.uint64
_BYTE = _U64(0xFF)

_EMPTY_RUN = (np.empty(0, dtype=_U64), np.empty(0, dtype=_U64))

_NP_COMPARATORS = {
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}


class _PagePoints:
    """Lazy point view of a Z-region page's records.

    Vectorized space tests never touch it; only the per-point fallback
    for opaque predicates indexes it, so the point list is not
    materialized on the fast path.
    """

    __slots__ = ("_records",)

    def __init__(self, records: Sequence[Any]) -> None:
        self._records = records

    def __len__(self) -> int:
        return len(self._records)

    def __getitem__(self, index: int) -> Any:
        return self._records[index][1][0]


class _BlockPoints:
    """Lazy point view over a whole block of pages (global record index).

    Only the per-point fallback for opaque predicates indexes it; the
    vectorized space tests never materialize points.
    """

    __slots__ = ("_pages", "_offsets")

    def __init__(self, pages: Sequence[Any], offsets: "list[int]") -> None:
        self._pages = pages
        self._offsets = offsets  # cumulative record counts, len(pages) + 1

    def __len__(self) -> int:
        return self._offsets[-1]

    def __getitem__(self, index: int) -> Any:
        position = bisect_right(self._offsets, index) - 1
        record = self._pages[position].records[index - self._offsets[position]]
        return record[1][0]


def _merge_runs(
    a: "tuple[np.ndarray, np.ndarray]", b: "tuple[np.ndarray, np.ndarray]"
) -> "tuple[np.ndarray, np.ndarray]":
    """Stable merge of two sorted ``(keys, orders)`` runs, ``a`` first.

    ``searchsorted`` computes each element's target slot directly:
    ``a[i]`` lands at ``i + |{b < a[i]}|`` and ``b[j]`` at
    ``j + |{a <= b[j]}|`` — on key ties every ``a`` element precedes
    every ``b`` element, which (with ``a`` the older run, holding the
    smaller arrival orders) is exactly ``(key, order)`` order.  Two
    scatters instead of a comparison loop: the DPG pairwise merge at
    memory speed.
    """
    keys_a, orders_a = a
    keys_b, orders_b = b
    pos_a = np.arange(len(keys_a), dtype=np.intp) + np.searchsorted(
        keys_b, keys_a, side="left"
    )
    pos_b = np.arange(len(keys_b), dtype=np.intp) + np.searchsorted(
        keys_a, keys_b, side="right"
    )
    keys = np.empty(len(keys_a) + len(keys_b), dtype=_U64)
    orders = np.empty_like(keys)
    keys[pos_a] = keys_a
    keys[pos_b] = keys_b
    orders[pos_a] = orders_a
    orders[pos_b] = orders_b
    return keys, orders


class NumPySortRunBuffer(SortRunBuffer):
    """Array-native Tetris cache: ``uint64`` runs, hierarchical merges.

    Runs stay contiguous ``(keys, orders)`` array pairs from push to
    cut — no per-entry Python objects — and a flush consolidates them
    by pairwise :func:`_merge_runs` reduction.  Runs are pushed in
    arrival order, so pairwise-adjacent merging keeps older runs on the
    tie-winning side and the result equals the pure buffer's total
    ``(key, order)`` sort bit for bit.

    Keys that do not fit ``uint64`` (curves wider than 64 bits fall back
    to pure list runs) degrade the whole buffer to
    :class:`~repro.kernels.pure.PureSortRunBuffer` semantics wholesale.
    """

    def __init__(self) -> None:
        self._runs: "list[tuple[np.ndarray, np.ndarray]]" = []
        self._count = 0
        self._fallback: PureSortRunBuffer | None = None

    @staticmethod
    def _as_entries(run: Any) -> "list[list[int]]":
        if isinstance(run, tuple):
            keys, orders = run
            return [
                [key, order]
                for key, order in zip(keys.tolist(), orders.tolist())
            ]
        return run

    def _degrade(self) -> PureSortRunBuffer:
        fallback = PureSortRunBuffer()
        for run in self._runs:
            fallback.push(self._as_entries(run))
        self._runs.clear()
        self._count = 0
        self._fallback = fallback
        return fallback

    def push(self, run: Any) -> None:
        if self._fallback is not None:
            self._fallback.push(self._as_entries(run))
            return
        if not isinstance(run, tuple):
            # a pure-format run: this curve is not vectorizable, degrade
            self._degrade().push(run)
            return
        keys, orders = run
        if len(keys):
            self._runs.append((keys, orders))
            self._count += len(keys)

    def __len__(self) -> int:
        if self._fallback is not None:
            return len(self._fallback)
        return self._count

    def has_key_below(self, barrier: "int | None") -> bool:
        if self._fallback is not None:
            return self._fallback.has_key_below(barrier)
        if not self._runs:
            return False
        if barrier is None:
            return True
        limit = _U64(barrier)
        return any(keys[0] < limit for keys, _ in self._runs)

    def cut(self, barrier: "int | None") -> "list[int]":
        if self._fallback is not None:
            return self._fallback.cut(barrier)
        if not self._runs:
            return []
        if len(self._runs) > 1:
            self._consolidate()
        keys, orders = self._runs[0]
        split = (
            len(keys)
            if barrier is None
            else int(np.searchsorted(keys, _U64(barrier), side="left"))
        )
        if split == 0:
            return []
        emitted = orders[:split].tolist()
        if split == len(keys):
            self._runs.clear()
        else:
            self._runs[0] = (keys[split:], orders[split:])
        self._count -= split
        return emitted

    def _consolidate(self) -> None:
        runs = self._runs
        while len(runs) > 1:
            merged = [
                _merge_runs(runs[index], runs[index + 1])
                for index in range(0, len(runs) - 1, 2)
            ]
            if len(runs) % 2:
                merged.append(runs[-1])
            runs = merged
        self._runs = runs


class _CurveTables:
    """The byte-chunk lookup tables of one curve, as uint64 arrays."""

    __slots__ = ("encode", "decode", "coord_max", "suffix_masks")

    def __init__(self, curve: Curve) -> None:
        #: per dimension: array (chunk_count, 256) of address contributions
        self.encode = [
            np.array(dim_tables, dtype=_U64)
            for dim_tables in curve._encode_tables.tables
        ]
        #: array (chunk_count, 256, dims) of coordinate contributions
        self.decode = np.array(curve._decode_tables.chunks, dtype=_U64)
        self.coord_max = np.array(curve.coord_max, dtype=_U64)
        #: array (total_bits + 1, dims): coordinate bits freed by the k
        #: least significant schedule positions (aligned-block hi corners)
        self.suffix_masks = np.array(curve._suffix_masks, dtype=_U64)


class NumPyBackend(PurePythonBackend):
    """Vectorized batch primitives (inherits pure loops as fallbacks)."""

    name = "numpy"

    def __init__(self) -> None:
        self._tables: "weakref.WeakKeyDictionary[Curve, _CurveTables | None]" = (
            weakref.WeakKeyDictionary()
        )
        # per-QueryBox bound arrays: a scan tests the same box against
        # every page, so the conversion must not repeat per call
        self._boxes: "weakref.WeakKeyDictionary[QueryBox, tuple | None]" = (
            weakref.WeakKeyDictionary()
        )
        # per-pushdown-cover interval arrays, same reasoning as _boxes
        self._intervals: "weakref.WeakKeyDictionary[IntervalUnionSpace, tuple | None]" = (
            weakref.WeakKeyDictionary()
        )
        # columnar cache: the uint64 coordinate matrix of a Z-region
        # page, keyed by the page's mutation version.  Repeated scans
        # over the same relation (the common OLAP pattern) then skip the
        # Python-tuple → array conversion entirely.
        self._columns: "weakref.WeakKeyDictionary[Any, tuple]" = (
            weakref.WeakKeyDictionary()
        )

    def _box_arrays(self, space: QueryBox) -> "tuple | None":
        arrays = self._boxes.get(space, False)
        if arrays is False:
            try:
                arrays = (
                    np.asarray(space.lo, dtype=_U64),
                    np.asarray(space.hi, dtype=_U64),
                )
            except (OverflowError, ValueError, TypeError):
                arrays = None
            self._boxes[space] = arrays
        return arrays

    def _interval_arrays(self, space: IntervalUnionSpace) -> "tuple | None":
        arrays = self._intervals.get(space, False)
        if arrays is False:
            try:
                arrays = (
                    np.asarray(space.starts, dtype=_U64),
                    np.asarray(space.ends, dtype=_U64),
                )
            except (OverflowError, ValueError, TypeError):
                arrays = None
            self._intervals[space] = arrays
        return arrays

    # ------------------------------------------------------------------
    # per-curve table preparation
    # ------------------------------------------------------------------
    def _tables_for(self, curve: Curve) -> _CurveTables | None:
        tables = self._tables.get(curve, False)
        if tables is False:
            # uint64 addresses cap the vectorizable width at 64 bits
            tables = _CurveTables(curve) if curve.total_bits <= 64 else None
            self._tables[curve] = tables
        return tables

    @staticmethod
    def _unwrap(curve: "Curve | FlippedCurve") -> tuple[Curve, frozenset[int]]:
        if isinstance(curve, FlippedCurve):
            return curve.base_curve, curve.flip_dims
        return curve, frozenset()

    # ------------------------------------------------------------------
    # encode / decode
    # ------------------------------------------------------------------
    @staticmethod
    def _encode_columns(tables: _CurveTables, columns: "np.ndarray") -> "np.ndarray":
        """Addresses of a (n, dims) coordinate array (already reflected)."""
        addresses = np.zeros(len(columns), dtype=_U64)
        for dim, dim_tables in enumerate(tables.encode):
            column = columns[:, dim]
            for chunk in range(dim_tables.shape[0]):
                addresses |= dim_tables[chunk][
                    (column >> _U64(8 * chunk)) & _BYTE
                ]
        return addresses

    @staticmethod
    def _decode_addresses(tables: _CurveTables, packed: "np.ndarray") -> "np.ndarray":
        """(n, dims) coordinate array of an address vector (no reflection)."""
        coords = np.zeros((len(packed), len(tables.coord_max)), dtype=_U64)
        for chunk in range(tables.decode.shape[0]):
            coords |= tables.decode[chunk][(packed >> _U64(8 * chunk)) & _BYTE]
        return coords

    def encode_batch(
        self, curve: "Curve | FlippedCurve", points: Sequence[Sequence[int]]
    ) -> list[int]:
        if not len(points):
            return []
        base, flip = self._unwrap(curve)
        tables = self._tables_for(base)
        if tables is None:
            return super().encode_batch(curve, points)
        columns = np.asarray(points, dtype=_U64)
        if flip:
            columns = columns.copy() if columns is points else columns
            for dim in flip:
                columns[:, dim] = tables.coord_max[dim] - columns[:, dim]
        return self._encode_columns(tables, columns).tolist()

    def decode_batch(
        self, curve: "Curve | FlippedCurve", addresses: Sequence[int]
    ) -> list[tuple[int, ...]]:
        if not len(addresses):
            return []
        base, flip = self._unwrap(curve)
        tables = self._tables_for(base)
        if tables is None:
            return super().decode_batch(curve, addresses)
        packed = np.asarray(addresses, dtype=_U64)
        coords = self._decode_addresses(tables, packed)
        for dim in flip:
            coords[:, dim] = tables.coord_max[dim] - coords[:, dim]
        return [tuple(row) for row in coords.tolist()]

    # ------------------------------------------------------------------
    # filtering
    # ------------------------------------------------------------------
    def filter_box_batch(
        self,
        lo: Sequence[int],
        hi: Sequence[int],
        points: Sequence[Sequence[int]],
    ) -> list[int]:
        if not len(points):
            return []
        try:
            columns = np.asarray(points, dtype=_U64)
            lo_arr = np.asarray(lo, dtype=_U64)
            hi_arr = np.asarray(hi, dtype=_U64)
        except (OverflowError, ValueError, TypeError):
            return super().filter_box_batch(lo, hi, points)
        mask = ((columns >= lo_arr) & (columns <= hi_arr)).all(axis=1)
        return np.nonzero(mask)[0].tolist()

    def filter_space_batch(
        self, space: QuerySpace, points: Sequence[Sequence[int]]
    ) -> list[int]:
        if not len(points):
            return []
        try:
            columns = np.asarray(points, dtype=_U64)
        except (OverflowError, ValueError, TypeError):
            return super().filter_space_batch(space, points)
        mask = np.ones(len(points), dtype=bool)
        self._mask_space(space, columns, points, mask)
        return np.nonzero(mask)[0].tolist()

    def _mask_space(
        self,
        space: QuerySpace,
        columns: "np.ndarray",
        points: Any,
        mask: "np.ndarray",
    ) -> None:
        """AND ``space`` membership into ``mask`` (vectorized per part)."""
        if isinstance(space, QueryBox):
            arrays = self._box_arrays(space)
            if arrays is None:
                self._mask_pointwise(space, points, mask)
                return
            lo_arr, hi_arr = arrays
            mask &= ((columns >= lo_arr) & (columns <= hi_arr)).all(axis=1)
        elif isinstance(space, ComparisonSpace):
            compare = _NP_COMPARATORS[space.op]
            mask &= compare(columns[:, space.left_dim], columns[:, space.right_dim])
        elif isinstance(space, IntervalUnionSpace):
            arrays = self._interval_arrays(space)
            if arrays is None:
                self._mask_pointwise(space, points, mask)
                return
            starts, ends = arrays
            if not starts.size:
                mask[:] = False
                return
            column = columns[:, space.dim]
            # slot of the last interval starting at or below each value;
            # membership iff that interval also ends at or above it
            slots = np.searchsorted(starts, column, side="right") - 1
            inside = slots >= 0
            np.clip(slots, 0, None, out=slots)
            mask &= inside & (column <= ends[slots])
        elif isinstance(space, IntersectionSpace):
            for part in space.parts:
                if not mask.any():
                    return
                self._mask_space(part, columns, points, mask)
        else:
            # opaque predicate (PredicateSpace etc.): per-point test, but
            # only on the still-surviving candidates
            self._mask_pointwise(space, points, mask)

    @staticmethod
    def _mask_pointwise(space: QuerySpace, points: Any, mask: "np.ndarray") -> None:
        contains = space.contains_point
        for index in np.nonzero(mask)[0]:
            if not contains(points[index]):
                mask[index] = False

    def filter_space_page(self, space: QuerySpace, page: Any) -> list[int]:
        """Page-level space filter over the memoized columnar view."""
        records = page.records
        if not records:
            return []
        columns = self._page_columns(page)
        if columns is None:
            return super().filter_space_page(space, page)
        points = _PagePoints(records)  # materialized only by opaque spaces
        mask = np.ones(len(columns), dtype=bool)
        self._mask_space(space, columns, points, mask)
        return np.nonzero(mask)[0].tolist()

    # ------------------------------------------------------------------
    # sorting
    # ------------------------------------------------------------------
    def argsort_keys(
        self, keys: Sequence[Any], *, reverse: bool = False
    ) -> list[int]:
        if not len(keys):
            return []
        try:
            array = np.asarray(keys)
        except (OverflowError, ValueError, TypeError):
            return super().argsort_keys(keys, reverse=reverse)
        if not np.issubdtype(array.dtype, np.integer):
            # floats, strings, objects, mixed tuples: Python semantics win
            return super().argsort_keys(keys, reverse=reverse)
        if reverse:
            # ~k is strictly decreasing in k for any integer dtype, so a
            # stable ascending sort of ~keys is a stable descending sort
            # of keys (ties keep original order, like list.sort).
            array = ~array
        if array.ndim == 1:
            return np.argsort(array, kind="stable").tolist()
        if array.ndim == 2:
            # composite keys: lexsort is stable, last key is primary
            return np.lexsort(array.T[::-1]).tolist()
        return super().argsort_keys(keys, reverse=reverse)

    # ------------------------------------------------------------------
    # fused compound kernels
    # ------------------------------------------------------------------
    def page_entries(
        self,
        curve: "Curve | FlippedCurve",
        space: QuerySpace,
        points: Sequence[Sequence[int]],
        base: int = 0,
    ) -> tuple[int, Sequence[int], Sequence[Sequence[int]]]:
        """Filter + key + sort one page with a single array conversion."""
        if not len(points):
            return 0, [], []
        base_curve, flip = self._unwrap(curve)
        tables = self._tables_for(base_curve)
        if tables is None:
            return super().page_entries(curve, space, points, base)
        try:
            columns = np.asarray(points, dtype=_U64)
        except (OverflowError, ValueError, TypeError):
            return super().page_entries(curve, space, points, base)
        return self._entries_from_columns(
            tables, flip, space, columns, points, base
        )

    def _select_and_key(
        self,
        tables: _CurveTables,
        flip: frozenset[int],
        space: QuerySpace,
        columns: "np.ndarray",
        points: Any,
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray] | None":
        """Filter + key + stable sort; ``(selected, keys, perm)`` arrays.

        ``selected`` holds the qualifying row indices ascending, ``keys``
        their (reflected) curve addresses in arrival order, and ``perm``
        the stable sort permutation over ``keys``.  ``None`` when nothing
        qualifies.
        """
        mask = np.ones(len(columns), dtype=bool)
        self._mask_space(space, columns, points, mask)
        selected = np.nonzero(mask)[0]
        if not selected.size:
            return None
        chosen = columns[selected]  # fancy index copies: in-place flip is safe
        for dim in flip:
            chosen[:, dim] = tables.coord_max[dim] - chosen[:, dim]
        keys = self._encode_columns(tables, chosen)
        perm = np.argsort(keys, kind="stable")
        return selected, keys, perm

    def _entries_from_columns(
        self,
        tables: _CurveTables,
        flip: frozenset[int],
        space: QuerySpace,
        columns: "np.ndarray",
        points: Any,
        base: int,
    ) -> tuple[int, Sequence[int], Sequence[Sequence[int]]]:
        """Shared tail of :meth:`page_entries` / :meth:`scan_page`."""
        keyed = self._select_and_key(tables, flip, space, columns, points)
        if keyed is None:
            return 0, [], []
        selected, keys, perm = keyed
        entries = np.stack(
            (keys[perm], perm.astype(_U64) + _U64(base)), axis=1
        ).tolist()
        return int(selected.size), selected.tolist(), entries

    def _page_columns(self, page: Any) -> "np.ndarray | None":
        """The page's points as a cached (records, dims) uint64 matrix.

        When a :class:`~repro.kernels.shm.SharedColumnStore` is active,
        the matrix lives in a shared-memory segment: the coordinator
        publishes it on build and other processes attach a zero-copy
        read-only view instead of rebuilding (or pickling) it.  The
        page's ``version`` counter stamps both the private cache and the
        segment, so a mutated page can never serve stale columns.
        """
        cached = self._columns.get(page)
        version = page.version
        if cached is not None and cached[0] == version:
            return cached[1]
        store = shm.active_store()
        if store is not None:
            page_id = getattr(page, "page_id", None)
            if page_id is not None:
                shared = store.get(page_id, version)
                if shared is not None:
                    try:
                        self._columns[page] = (version, shared)
                    except TypeError:  # pragma: no cover - stand-in pages
                        pass
                    return shared
        records = page.records
        try:
            # Z-region records are (z_address, (point, payload)); every
            # stored point passed checked encoding, so the coordinate
            # count and ranges are valid by construction and the flat
            # fill cannot misalign
            flat = np.fromiter(
                (
                    coordinate
                    for _, (point, _) in records
                    for coordinate in point
                ),
                dtype=_U64,
            )
            columns = flat.reshape(len(records), -1) if len(records) else None
        except (OverflowError, ValueError, TypeError):
            columns = None
        if columns is not None and store is not None:
            page_id = getattr(page, "page_id", None)
            if page_id is not None:
                # publish into shared memory; non-owners get their
                # private array back unchanged
                columns = store.put(page_id, version, columns)
        try:
            self._columns[page] = (version, columns)
        except TypeError:  # pragma: no cover - non-weakref page stand-ins
            pass
        return columns

    def prime_page_columns(self, page: Any) -> None:
        """Build (and, with an active shared store, publish) the page's
        columnar view ahead of use — the coordinator's staging step
        before handing a slab to workers."""
        if page.records:
            self._page_columns(page)

    def scan_page(
        self,
        curve: "Curve | FlippedCurve",
        space: QuerySpace,
        page: Any,
        base: int = 0,
    ) -> tuple[int, Sequence[int], Sequence[Sequence[int]]]:
        """Fused page kernel over the memoized columnar view."""
        records = page.records
        if not records:
            return 0, [], []
        base_curve, flip = self._unwrap(curve)
        tables = self._tables_for(base_curve)
        if tables is None:
            return super().scan_page(curve, space, page, base)
        columns = self._page_columns(page)
        if columns is None or columns.shape[1] != base_curve.dims:
            return super().scan_page(curve, space, page, base)
        points = _PagePoints(records)  # materialized only by opaque spaces
        return self._entries_from_columns(
            tables, flip, space, columns, points, base
        )

    def scan_page_run(
        self,
        curve: "Curve | FlippedCurve",
        space: QuerySpace,
        page: Any,
        base: int = 0,
    ) -> tuple[int, Sequence[int], Any]:
        """:meth:`scan_page` whose entries stay ``uint64`` array pairs."""
        records = page.records
        if not records:
            return 0, [], _EMPTY_RUN
        base_curve, flip = self._unwrap(curve)
        tables = self._tables_for(base_curve)
        if tables is None:
            return super().scan_page_run(curve, space, page, base)
        columns = self._page_columns(page)
        if columns is None or columns.shape[1] != base_curve.dims:
            return super().scan_page_run(curve, space, page, base)
        points = _PagePoints(records)
        keyed = self._select_and_key(tables, flip, space, columns, points)
        if keyed is None:
            return 0, [], _EMPTY_RUN
        selected, keys, perm = keyed
        run = (keys[perm], perm.astype(_U64) + _U64(base))
        return int(selected.size), selected.tolist(), run

    def make_run_buffer(self) -> SortRunBuffer:
        return NumPySortRunBuffer()

    def scan_block(
        self,
        curve: "Curve | FlippedCurve",
        space: QuerySpace,
        pages: Sequence[Any],
    ) -> tuple[list[Sequence[int]], Sequence[int]]:
        """Whole-slab fused kernel: one concatenate + filter + key +
        stable argsort over every page of the block.

        The big-array calls here (compare, gather, table lookups,
        argsort) release the GIL, which is what lets the thread executor
        scale; per-page kernels never get arrays large enough for the
        release to beat the dispatch overhead.
        """
        base_curve, flip = self._unwrap(curve)
        tables = self._tables_for(base_curve)
        if tables is None:
            return super().scan_block(curve, space, pages)
        page_columns: "list[np.ndarray]" = []
        offsets = [0]
        for page in pages:
            records = page.records
            if not records:
                offsets.append(offsets[-1])
                continue
            columns = self._page_columns(page)
            if columns is None or columns.shape[1] != base_curve.dims:
                return super().scan_block(curve, space, pages)
            page_columns.append(columns)
            offsets.append(offsets[-1] + len(columns))
        if not page_columns:
            return [[] for _ in pages], []
        block = (
            page_columns[0]
            if len(page_columns) == 1
            else np.concatenate(page_columns, axis=0)
        )
        points = _BlockPoints(pages, offsets)
        keyed = self._select_and_key(tables, flip, space, block, points)
        if keyed is None:
            return [[] for _ in pages], []
        selected, keys, perm = keyed
        # split the ascending global selection back into per-page slices
        bounds = np.searchsorted(selected, np.asarray(offsets, dtype=np.intp))
        selected_per_page = [
            (selected[bounds[i] : bounds[i + 1]] - offsets[i]).tolist()
            for i in range(len(pages))
        ]
        return selected_per_page, perm.tolist()

    def merge_sorted_keys(
        self,
        keys_a: Sequence[Any],
        keys_b: Sequence[Any],
        *,
        reverse: bool = False,
    ) -> list[int]:
        if not len(keys_a) or not len(keys_b):
            return list(range(len(keys_a) + len(keys_b)))
        try:
            array_a = np.asarray(keys_a)
            array_b = np.asarray(keys_b)
        except (OverflowError, ValueError, TypeError):
            return super().merge_sorted_keys(keys_a, keys_b, reverse=reverse)
        if (
            array_a.ndim != 1
            or array_b.ndim != 1
            or not np.issubdtype(array_a.dtype, np.integer)
            or array_a.dtype != array_b.dtype
        ):
            return super().merge_sorted_keys(keys_a, keys_b, reverse=reverse)
        if reverse:
            # same ~k trick as argsort_keys: ascending on ~keys is
            # descending on keys with identical tie behaviour
            array_a = ~array_a
            array_b = ~array_b
        length_a = len(array_a)
        pos_a = np.arange(length_a, dtype=np.intp) + np.searchsorted(
            array_b, array_a, side="left"
        )
        pos_b = np.arange(len(array_b), dtype=np.intp) + np.searchsorted(
            array_a, array_b, side="right"
        )
        permutation = np.empty(length_a + len(array_b), dtype=np.intp)
        permutation[pos_a] = np.arange(length_a, dtype=np.intp)
        permutation[pos_b] = np.arange(
            length_a, length_a + len(array_b), dtype=np.intp
        )
        return permutation.tolist()

    def region_min_keys(
        self,
        z_curve: Curve,
        sort_curve: "Curve | FlippedCurve",
        intervals: Sequence[tuple[int, int]],
        lo: Sequence[int],
        hi: Sequence[int],
    ) -> "list[int | None]":
        """Batched region keying: decode, clamp and encode all aligned
        blocks of all intervals in one vectorized pass."""
        if not intervals:
            return []
        base_sort, flip = self._unwrap(sort_curve)
        z_tables = self._tables_for(z_curve)
        sort_tables = self._tables_for(base_sort)
        if z_tables is None or sort_tables is None:
            return super().region_min_keys(z_curve, sort_curve, intervals, lo, hi)

        # enumerating the aligned blocks is cheap bit arithmetic; decode,
        # clamp and encode over the flattened block list are vectorized
        positions: list[int] = []
        sizes: list[int] = []
        counts: list[int] = []
        for first, last in intervals:
            filled = len(positions)
            for position, k in z_curve.interval_blocks(first, last):
                positions.append(position)
                sizes.append(k)
            counts.append(len(positions) - filled)
        if min(counts) == 0:  # empty interval: segment reduce needs >= 1 each
            return super().region_min_keys(z_curve, sort_curve, intervals, lo, hi)

        los = self._decode_addresses(z_tables, np.asarray(positions, dtype=_U64))
        his = los | z_tables.suffix_masks[np.asarray(sizes)]
        lo_arr = np.asarray(lo, dtype=_U64)
        hi_arr = np.asarray(hi, dtype=_U64)
        clamped_lo = np.maximum(los, lo_arr)
        clamped_hi = np.minimum(his, hi_arr)
        valid = (clamped_lo <= clamped_hi).all(axis=1)

        # the minimal sort-curve address of a box sits at the corner that
        # takes hi in flipped dimensions; encoding through the base curve
        # reflects those coordinates (coord_max - hi), lo elsewhere
        if flip:
            corners = clamped_lo.copy()
            for dim in flip:
                corners[:, dim] = sort_tables.coord_max[dim] - clamped_hi[:, dim]
        else:
            corners = clamped_lo
        keys = self._encode_columns(sort_tables, corners)
        keys[~valid] = np.iinfo(_U64).max  # never the min unless it is real

        offsets = np.zeros(len(counts), dtype=np.intp)
        np.cumsum(counts[:-1], out=offsets[1:])
        minima = np.minimum.reduceat(keys, offsets)
        any_valid = np.bitwise_or.reduceat(valid, offsets)
        return [
            int(key) if ok else None
            for key, ok in zip(minima.tolist(), any_valid.tolist())
        ]
