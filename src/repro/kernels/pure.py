"""Pure-Python kernel backend: the always-available fallback.

Tuple-at-a-time loops over the same byte-chunked lookup tables the
scalar :class:`~repro.core.curves.Curve` API uses.  This is the
reference semantics the NumPy backend must reproduce bit-for-bit; it is
also what runs when NumPy is not installed (the package keeps the
standard library as its only hard dependency).
"""

from __future__ import annotations

from typing import Any, Sequence

from ..core.query_space import (
    ComparisonSpace,
    IntersectionSpace,
    QueryBox,
    QuerySpace,
)
from .base import KernelBackend


class PurePythonBackend(KernelBackend):
    """Batch primitives implemented as plain Python loops."""

    name = "python"

    def encode_batch(self, curve, points):
        encode = curve.encode_unchecked
        return [encode(point) for point in points]

    def decode_batch(self, curve, addresses):
        decode = curve.decode
        return [decode(address) for address in addresses]

    def filter_box_batch(self, lo, hi, points):
        return [
            index
            for index, point in enumerate(points)
            if all(l <= x <= h for x, l, h in zip(point, lo, hi))
        ]

    def filter_space_batch(self, space: QuerySpace, points):
        # QueryBox is by far the most common space; inlining its bounds
        # avoids a method call per tuple.
        if isinstance(space, QueryBox):
            return self.filter_box_batch(space.lo, space.hi, points)
        if isinstance(space, ComparisonSpace):
            cmp = space._cmp
            left, right = space.left_dim, space.right_dim
            return [
                index
                for index, point in enumerate(points)
                if cmp(point[left], point[right])
            ]
        if isinstance(space, IntersectionSpace):
            selected = range(len(points))
            for part in space.parts:
                if not selected:
                    break
                kept = self.filter_space_batch(part, [points[i] for i in selected])
                selected = [selected[i] for i in kept]
            return list(selected)
        contains = space.contains_point
        return [index for index, point in enumerate(points) if contains(point)]

    def filter_space_page(self, space: QuerySpace, page):
        points = [record[1][0] for record in page.records]
        return self.filter_space_batch(space, points)

    def argsort_keys(self, keys: Sequence[Any], *, reverse: bool = False):
        return sorted(range(len(keys)), key=keys.__getitem__, reverse=reverse)

    # ------------------------------------------------------------------
    # fused compound kernels — the reference composition of the
    # primitives above (see the interface docstrings in ``base``)
    # ------------------------------------------------------------------
    def page_entries(self, curve, space, points, base=0):
        selected = self.filter_space_batch(space, points)
        if not selected:
            return 0, [], []
        keys = self.encode_batch(curve, [points[index] for index in selected])
        entries = [
            [keys[rank], base + rank] for rank in self.argsort_keys(keys)
        ]
        return len(selected), selected, entries

    def scan_page(self, curve, space, page, base=0):
        points = [record[1][0] for record in page.records]
        return self.page_entries(curve, space, points, base)

    def region_min_keys(self, z_curve, sort_curve, intervals, lo, hi):
        # per-interval corner collection is shared; encoding is batched
        corners: list[Sequence[int]] = []
        counts: list[int] = []
        min_corner = getattr(sort_curve, "box_min_corner", None)
        for first, last in intervals:
            filled = len(corners)
            for box_lo, box_hi in z_curve.interval_boxes(first, last):
                clamped_lo = tuple(max(a, b) for a, b in zip(box_lo, lo))
                clamped_hi = tuple(min(a, b) for a, b in zip(box_hi, hi))
                if any(a > b for a, b in zip(clamped_lo, clamped_hi)):
                    continue
                corners.append(
                    min_corner(clamped_lo, clamped_hi)
                    if min_corner is not None
                    else clamped_lo
                )
            counts.append(len(corners) - filled)
        keys = self.encode_batch(sort_curve, corners)
        result: "list[int | None]" = []
        position = 0
        for count in counts:
            block = keys[position : position + count]
            position += count
            result.append(min(block) if block else None)
        return result
