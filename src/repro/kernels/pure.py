"""Pure-Python kernel backend: the always-available fallback.

Tuple-at-a-time loops over the same byte-chunked lookup tables the
scalar :class:`~repro.core.curves.Curve` API uses.  This is the
reference semantics the NumPy backend must reproduce bit-for-bit; it is
also what runs when NumPy is not installed (the package keeps the
standard library as its only hard dependency).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from operator import itemgetter
from typing import Any, Sequence, TYPE_CHECKING

from ..core.query_space import (
    ComparisonSpace,
    IntersectionSpace,
    IntervalUnionSpace,
    QueryBox,
    QuerySpace,
)
from .base import KernelBackend, SortRunBuffer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..core.curves import Curve, FlippedCurve

    AnyCurve = Curve | FlippedCurve

_entry_key = itemgetter(0)


class PureSortRunBuffer(SortRunBuffer):
    """Reference run buffer: list runs, timsort consolidation.

    ``_cache`` is one consolidated ``(key, order)``-sorted run and
    ``_pending`` the per-page sorted runs that arrived since the last
    flush.  Consolidation extends and re-sorts — timsort detects the
    pre-sorted runs and performs exactly the galloping hierarchical
    merge DPG prescribes, at C speed.  This is the semantics the NumPy
    buffer must reproduce bit for bit.
    """

    def __init__(self) -> None:
        self._cache: list[list[int]] = []
        self._pending: list[list[list[int]]] = []
        self._pending_count = 0

    def push(self, run: Any) -> None:
        if run:
            self._pending.append(run)
            self._pending_count += len(run)

    def __len__(self) -> int:
        return len(self._cache) + self._pending_count

    def has_key_below(self, barrier: "int | None") -> bool:
        if barrier is None:
            return len(self) > 0
        # sorted-run heads witness whether anything flushes at all
        if self._cache and self._cache[0][0] < barrier:
            return True
        return any(batch[0][0] < barrier for batch in self._pending)

    def cut(self, barrier: "int | None") -> "list[int]":
        if self._pending:
            for batch in self._pending:
                self._cache.extend(batch)
            # (key, order) pairs are unique, so their order is total and
            # equals the key-then-arrival order of a per-tuple heap
            self._cache.sort()
            self._pending.clear()
            self._pending_count = 0
        cache = self._cache
        cut = (
            len(cache)
            if barrier is None
            else bisect_left(cache, barrier, key=_entry_key)
        )
        orders = [order for _, order in cache[:cut]]
        del cache[:cut]
        return orders


class PurePythonBackend(KernelBackend):
    """Batch primitives implemented as plain Python loops."""

    name = "python"

    def encode_batch(
        self, curve: "AnyCurve", points: Sequence[Sequence[int]]
    ) -> list[int]:
        encode = curve.encode_unchecked
        return [encode(point) for point in points]

    def decode_batch(
        self, curve: "AnyCurve", addresses: Sequence[int]
    ) -> list[tuple[int, ...]]:
        decode = curve.decode
        return [decode(address) for address in addresses]

    def filter_box_batch(
        self,
        lo: Sequence[int],
        hi: Sequence[int],
        points: Sequence[Sequence[int]],
    ) -> list[int]:
        return [
            index
            for index, point in enumerate(points)
            if all(l <= x <= h for x, l, h in zip(point, lo, hi))
        ]

    def filter_space_batch(
        self, space: QuerySpace, points: Sequence[Sequence[int]]
    ) -> list[int]:
        # QueryBox is by far the most common space; inlining its bounds
        # avoids a method call per tuple.
        if isinstance(space, QueryBox):
            return self.filter_box_batch(space.lo, space.hi, points)
        if isinstance(space, ComparisonSpace):
            cmp = space._cmp
            left, right = space.left_dim, space.right_dim
            return [
                index
                for index, point in enumerate(points)
                if cmp(point[left], point[right])
            ]
        if isinstance(space, IntervalUnionSpace):
            starts, ends, dim = space.starts, space.ends, space.dim
            chosen: list[int] = []
            for index, point in enumerate(points):
                value = point[dim]
                slot = bisect_right(starts, value) - 1
                if slot >= 0 and value <= ends[slot]:
                    chosen.append(index)
            return chosen
        if isinstance(space, IntersectionSpace):
            selected = range(len(points))
            for part in space.parts:
                if not selected:
                    break
                kept = self.filter_space_batch(part, [points[i] for i in selected])
                selected = [selected[i] for i in kept]
            return list(selected)
        contains = space.contains_point
        return [index for index, point in enumerate(points) if contains(point)]

    def filter_space_page(self, space: QuerySpace, page: Any) -> list[int]:
        points = [record[1][0] for record in page.records]
        return self.filter_space_batch(space, points)

    def argsort_keys(
        self, keys: Sequence[Any], *, reverse: bool = False
    ) -> list[int]:
        return sorted(range(len(keys)), key=keys.__getitem__, reverse=reverse)

    # ------------------------------------------------------------------
    # fused compound kernels — the reference composition of the
    # primitives above (see the interface docstrings in ``base``)
    # ------------------------------------------------------------------
    def page_entries(
        self,
        curve: "AnyCurve",
        space: QuerySpace,
        points: Sequence[Sequence[int]],
        base: int = 0,
    ) -> tuple[int, Sequence[int], Sequence[Sequence[int]]]:
        selected = self.filter_space_batch(space, points)
        if not selected:
            return 0, [], []
        keys = self.encode_batch(curve, [points[index] for index in selected])
        entries = [
            [keys[rank], base + rank] for rank in self.argsort_keys(keys)
        ]
        return len(selected), selected, entries

    def scan_page(
        self, curve: "AnyCurve", space: QuerySpace, page: Any, base: int = 0
    ) -> tuple[int, Sequence[int], Sequence[Sequence[int]]]:
        points = [record[1][0] for record in page.records]
        return self.page_entries(curve, space, points, base)

    def scan_page_run(
        self, curve: "AnyCurve", space: QuerySpace, page: Any, base: int = 0
    ) -> tuple[int, Sequence[int], Any]:
        # the pure-native run *is* the entry list
        return self.scan_page(curve, space, page, base)

    def make_run_buffer(self) -> SortRunBuffer:
        return PureSortRunBuffer()

    def scan_block(
        self, curve: "AnyCurve", space: QuerySpace, pages: Sequence[Any]
    ) -> tuple[list[Sequence[int]], Sequence[int]]:
        selected_per_page: list[Sequence[int]] = []
        entries: list[list[int]] = []
        base = 0
        for page in pages:
            count, selected, page_entries = self.scan_page(curve, space, page, base)
            selected_per_page.append(selected)
            entries.extend(page_entries)
            base += count
        # per-page entries carry globally unique (key, arrival) pairs;
        # one total sort is the whole-slab slice order
        entries.sort()
        return selected_per_page, [order for _, order in entries]

    def merge_sorted_keys(
        self,
        keys_a: Sequence[Any],
        keys_b: Sequence[Any],
        *,
        reverse: bool = False,
    ) -> list[int]:
        length_a = len(keys_a)
        concatenated = list(keys_a) + list(keys_b)
        # timsort over two pre-sorted runs is one galloping merge; its
        # stability gives keys_a the tie win, like a stable full sort
        return sorted(
            range(length_a + len(keys_b)),
            key=concatenated.__getitem__,
            reverse=reverse,
        )

    def region_min_keys(
        self,
        z_curve: "Curve",
        sort_curve: "AnyCurve",
        intervals: Sequence[tuple[int, int]],
        lo: Sequence[int],
        hi: Sequence[int],
    ) -> "list[int | None]":
        # per-interval corner collection is shared; encoding is batched
        corners: list[Sequence[int]] = []
        counts: list[int] = []
        min_corner = getattr(sort_curve, "box_min_corner", None)
        for first, last in intervals:
            filled = len(corners)
            for box_lo, box_hi in z_curve.interval_boxes(first, last):
                clamped_lo = tuple(max(a, b) for a, b in zip(box_lo, lo))
                clamped_hi = tuple(min(a, b) for a, b in zip(box_hi, hi))
                if any(a > b for a, b in zip(clamped_lo, clamped_hi)):
                    continue
                corners.append(
                    min_corner(clamped_lo, clamped_hi)
                    if min_corner is not None
                    else clamped_lo
                )
            counts.append(len(corners) - filled)
        keys = self.encode_batch(sort_curve, corners)
        result: "list[int | None]" = []
        position = 0
        for count in counts:
            block = keys[position : position + count]
            position += count
            result.append(min(block) if block else None)
        return result
