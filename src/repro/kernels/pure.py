"""Pure-Python kernel backend: the always-available fallback.

Tuple-at-a-time loops over the same byte-chunked lookup tables the
scalar :class:`~repro.core.curves.Curve` API uses.  This is the
reference semantics the NumPy backend must reproduce bit-for-bit; it is
also what runs when NumPy is not installed (the package keeps the
standard library as its only hard dependency).
"""

from __future__ import annotations

from typing import Any, Sequence

from ..core.query_space import (
    ComparisonSpace,
    IntersectionSpace,
    QueryBox,
    QuerySpace,
)
from .base import KernelBackend


class PurePythonBackend(KernelBackend):
    """Batch primitives implemented as plain Python loops."""

    name = "python"

    def encode_batch(self, curve, points):
        encode = curve.encode_unchecked
        return [encode(point) for point in points]

    def decode_batch(self, curve, addresses):
        decode = curve.decode
        return [decode(address) for address in addresses]

    def filter_box_batch(self, lo, hi, points):
        return [
            index
            for index, point in enumerate(points)
            if all(l <= x <= h for x, l, h in zip(point, lo, hi))
        ]

    def filter_space_batch(self, space: QuerySpace, points):
        # QueryBox is by far the most common space; inlining its bounds
        # avoids a method call per tuple.
        if isinstance(space, QueryBox):
            return self.filter_box_batch(space.lo, space.hi, points)
        if isinstance(space, ComparisonSpace):
            cmp = space._cmp
            left, right = space.left_dim, space.right_dim
            return [
                index
                for index, point in enumerate(points)
                if cmp(point[left], point[right])
            ]
        if isinstance(space, IntersectionSpace):
            selected = range(len(points))
            for part in space.parts:
                if not selected:
                    break
                kept = self.filter_space_batch(part, [points[i] for i in selected])
                selected = [selected[i] for i in kept]
            return list(selected)
        contains = space.contains_point
        return [index for index, point in enumerate(points) if contains(point)]

    def argsort_keys(self, keys: Sequence[Any], *, reverse: bool = False):
        return sorted(range(len(keys)), key=keys.__getitem__, reverse=reverse)
