"""Batched compute kernels: the CPU-side hot-path layer.

The repository prices I/O on a simulated clock, but *wall-clock* time is
decided by how the CPU-side work is executed.  This package provides the
slice-level batch primitives the hot paths (the Tetris sweep, UB-Tree
bulk loading, the external-sort baseline) are written against:

* :func:`encode_batch` / :func:`decode_batch` — whole-column curve
  address conversion via byte-chunked table lookups,
* :func:`filter_box_batch` / :func:`filter_space_batch` — predicate
  evaluation over a page's worth of points,
* :func:`argsort_keys` — one stable slice-level sort permutation,
* :func:`page_entries` / :func:`scan_page` / :func:`region_min_keys` —
  fused compound kernels: one call filters + keys + sorts a whole page
  (``scan_page`` straight from the storage page, letting backends keep a
  memoized columnar view), one call keys every candidate Z-region of a
  scan,
* :func:`scan_page_run` / :func:`make_run_buffer` — DPG-style run
  formation: per-page sorted runs in the backend's native representation
  feed a :class:`SortRunBuffer` that consolidates them hierarchically,
* :func:`scan_block` — the whole-slab fused kernel the parallel thread
  executor dispatches (one task per slab, not per scan step),
* :func:`merge_sorted_keys` — stable pairwise merge permutation over two
  sorted runs (the external sort's run consolidation step).

The columnar page cache of the NumPy backend can additionally live in
POSIX shared memory (:mod:`repro.kernels.shm`), letting forked workers
attach zero-copy read-only views instead of receiving pickled pages.

Two interchangeable backends implement them:

``numpy``
    Vectorized over NumPy arrays (:mod:`repro.kernels.numpy_backend`).
    Selected automatically at import when NumPy is installed.

``python``
    Tuple-at-a-time standard-library loops (:mod:`repro.kernels.pure`).
    Always available; NumPy stays an *optional* dependency.

Selection: the environment variable ``REPRO_KERNEL_BACKEND`` (``numpy``,
``python`` or ``auto``) pins the backend at import time; programmatic
control is available through :func:`set_backend` and the
:func:`use_backend` context manager.  Backends are observationally
identical — the simulated-clock numbers, emitted tuple streams and page
access orders of every algorithm are bit-identical whichever one runs
(asserted by the test suite); only wall-clock speed differs.  See
``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Iterator, Sequence, TYPE_CHECKING

from .base import KernelBackend, SortRunBuffer
from .pure import PurePythonBackend

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..core.curves import Curve, FlippedCurve
    from ..core.query_space import QuerySpace

    AnyCurve = Curve | FlippedCurve

__all__ = [
    "KernelBackend",
    "PurePythonBackend",
    "SortRunBuffer",
    "available_backends",
    "backend",
    "get_backend",
    "set_backend",
    "use_backend",
    "encode_batch",
    "decode_batch",
    "filter_box_batch",
    "filter_space_batch",
    "filter_space_page",
    "argsort_keys",
    "page_entries",
    "scan_page",
    "scan_page_run",
    "make_run_buffer",
    "scan_block",
    "merge_sorted_keys",
    "region_min_keys",
]

_ENV_VAR = "REPRO_KERNEL_BACKEND"

_backends: dict[str, KernelBackend] = {"python": PurePythonBackend()}

try:  # NumPy is optional; its absence selects the pure backend
    from .numpy_backend import NumPyBackend
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    NumPyBackend = None  # type: ignore[assignment, misc]
else:
    _backends["numpy"] = NumPyBackend()


def available_backends() -> tuple[str, ...]:
    """Names of the importable backends (always includes ``python``)."""
    return tuple(sorted(_backends))


def _resolve(name: str | None) -> KernelBackend:
    if name is None or name == "auto":
        return _backends.get("numpy", _backends["python"])
    try:
        return _backends[name]
    except KeyError:
        if name == "numpy":
            raise RuntimeError(
                "kernel backend 'numpy' requested but NumPy is not "
                "installed; install numpy or use REPRO_KERNEL_BACKEND=python"
            ) from None
        raise ValueError(
            f"unknown kernel backend {name!r}; available: "
            f"{', '.join(available_backends())} (or 'auto')"
        ) from None


_active: KernelBackend = _resolve(os.environ.get(_ENV_VAR) or None)


def get_backend() -> KernelBackend:
    """The currently active kernel backend."""
    return _active


def backend(name: str) -> KernelBackend:
    """A registered backend by name, without changing the active one.

    Used by the cross-backend parity checks of :mod:`repro.invariants`.
    """
    return _resolve(name)


def set_backend(name: str | None) -> KernelBackend:
    """Select a backend by name (``None`` / ``"auto"`` re-auto-selects)."""
    global _active
    _active = _resolve(name)
    return _active


@contextmanager
def use_backend(name: str | None) -> Iterator[KernelBackend]:
    """Temporarily switch backends (used by tests and benchmarks)."""
    global _active
    previous = _active
    _active = _resolve(name)
    try:
        yield _active
    finally:
        _active = previous


# ----------------------------------------------------------------------
# module-level conveniences delegating to the active backend
# ----------------------------------------------------------------------
def encode_batch(curve: "AnyCurve", points: Sequence[Sequence[int]]) -> list[int]:
    return _active.encode_batch(curve, points)


def decode_batch(
    curve: "AnyCurve", addresses: Sequence[int]
) -> list[tuple[int, ...]]:
    return _active.decode_batch(curve, addresses)


def filter_box_batch(
    lo: Sequence[int], hi: Sequence[int], points: Sequence[Sequence[int]]
) -> list[int]:
    return _active.filter_box_batch(lo, hi, points)


def filter_space_batch(
    space: "QuerySpace", points: Sequence[Sequence[int]]
) -> list[int]:
    return _active.filter_space_batch(space, points)


def filter_space_page(space: "QuerySpace", page: Any) -> list[int]:
    return _active.filter_space_page(space, page)


def argsort_keys(keys: Sequence[Any], *, reverse: bool = False) -> list[int]:
    return _active.argsort_keys(keys, reverse=reverse)


def page_entries(
    curve: "AnyCurve",
    space: "QuerySpace",
    points: Sequence[Sequence[int]],
    base: int = 0,
) -> tuple[int, Sequence[int], Sequence[Sequence[int]]]:
    return _active.page_entries(curve, space, points, base)


def scan_page(
    curve: "AnyCurve", space: "QuerySpace", page: Any, base: int = 0
) -> tuple[int, Sequence[int], Sequence[Sequence[int]]]:
    return _active.scan_page(curve, space, page, base)


def scan_page_run(
    curve: "AnyCurve", space: "QuerySpace", page: Any, base: int = 0
) -> tuple[int, Sequence[int], Any]:
    return _active.scan_page_run(curve, space, page, base)


def make_run_buffer() -> SortRunBuffer:
    return _active.make_run_buffer()


def scan_block(
    curve: "AnyCurve", space: "QuerySpace", pages: Sequence[Any]
) -> tuple[list[Sequence[int]], Sequence[int]]:
    return _active.scan_block(curve, space, pages)


def merge_sorted_keys(
    keys_a: Sequence[Any], keys_b: Sequence[Any], *, reverse: bool = False
) -> list[int]:
    return _active.merge_sorted_keys(keys_a, keys_b, reverse=reverse)


def region_min_keys(
    z_curve: "Curve",
    sort_curve: "AnyCurve",
    intervals: Sequence[tuple[int, int]],
    lo: Sequence[int],
    hi: Sequence[int],
) -> "list[int | None]":
    return _active.region_min_keys(z_curve, sort_curve, intervals, lo, hi)
