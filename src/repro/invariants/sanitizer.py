"""Deterministic concurrency sanitizer: lock-order + happens-before checks.

The engine's shared mutable structures (buffer-pool frame maps, the
shared-memory column registry, I/O scheduler queues, executor observer
lists) are each guarded by one *declared* lock.  This module provides
the runtime half of the concurrency contract that ``tools/reprolint``
rules R010–R013 enforce statically:

* :class:`TrackedLock` / :func:`tracked_lock` — a named reentrant lock
  that, when checks are armed (``REPRO_CHECKS=1``), validates every
  acquisition against the single global lock order declared with
  :func:`declare_lock_order` and against the runtime lock-order graph
  (an observed ``A -> B`` nesting followed by a ``B -> A`` nesting is a
  deadlock-in-waiting even if neither interleaving deadlocked *this*
  run).  Violations raise :class:`LockOrderViolation` carrying both
  acquisition stacks.
* :func:`guarded_by` — class decorator registering which fields a lock
  protects; :func:`note_access` consults the registry at every
  choke-point mutation and applies vector-clock happens-before
  tracking: two accesses to the same field by different actors must be
  ordered by the locks they held, otherwise :class:`RaceViolation`
  fires with both stacks and the simulated timestamps.
* :func:`actor` — names the current logical thread of control.  Real
  threads get a default identity, but tests drive *virtual* actors from
  a single OS thread so a seeded schedule (the chaos-harness seed)
  replays an interleaving — and its violation — deterministically.
* :func:`fork_safe` — whitelists a module-level function for transport
  to forked worker processes (reprolint R013 checks the static side:
  only whitelisted top-level callables may be handed to a process
  pool).

Everything is gated on the invariant layer's ``enabled()`` flag: with
checks off, a :class:`TrackedLock` costs one extra boolean test per
acquisition over a plain ``threading.RLock`` and :func:`note_access`
returns immediately.
"""

from __future__ import annotations

import sys
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from types import TracebackType
from typing import Any, Callable, Iterator, TypeVar

from .errors import InvariantViolation

__all__ = [
    "GLOBAL_LOCK_ORDER",
    "LockOrderViolation",
    "RaceViolation",
    "TrackedLock",
    "actor",
    "current_actor",
    "declare_lock_order",
    "declared_lock_order",
    "fork_safe",
    "guarded_by",
    "note_access",
    "reset_sanitizer",
    "tracked_lock",
]


class LockOrderViolation(InvariantViolation):
    """Two tracked locks were (or could be) acquired in inverted order."""


class RaceViolation(InvariantViolation):
    """Two actors touched guarded state without a happens-before edge."""


# The invariant package installs its ``enabled`` gate here after import
# (avoids a circular import between the package and this module).
_gate: Callable[[], bool] = lambda: False


def _set_gate(gate: Callable[[], bool]) -> None:
    global _gate
    _gate = gate


#: frames kept when a violation is being reported (rare, thorough)
_STACK_DEPTH = 8
#: frames kept on the per-operation hot path (every acquire / access)
_HOT_STACK_DEPTH = 4


def _capture_stack(
    skip: int = 2, depth: int = _STACK_DEPTH
) -> tuple[tuple[str, int, str], ...]:
    """A compact stack as raw ``(file, line, func)`` rows, cheapest capture.

    ``traceback.extract_stack`` touches ``linecache``; walking the frame
    objects directly — and deferring all string formatting to
    :func:`_format_stack`, which only runs when a violation is actually
    reported — keeps the armed overhead per tracked operation in the
    microsecond range.
    """
    frame = sys._getframe(skip)
    rows: list[tuple[str, int, str]] = []
    while frame is not None and len(rows) < depth:
        code = frame.f_code
        rows.append((code.co_filename, frame.f_lineno, code.co_name))
        frame = frame.f_back  # type: ignore[assignment]
    return tuple(rows)


def _format_stack(rows: tuple[tuple[str, int, str], ...]) -> str:
    return "\n".join(f"    {file}:{line} in {func}" for file, line, func in rows)


# ----------------------------------------------------------------------
# actors: logical threads of control
# ----------------------------------------------------------------------
_tls = threading.local()


def current_actor() -> str:
    """The name of the current logical actor (virtual or OS thread)."""
    stack: list[str] | None = getattr(_tls, "actors", None)
    if stack:
        return stack[-1]
    name: str | None = getattr(_tls, "default_name", None)
    if name is None:
        name = f"thread-{threading.get_ident()}"
        _tls.default_name = name
    return name


@contextmanager
def actor(name: str) -> Iterator[str]:
    """Run the body as the named virtual actor.

    Tests use two (or more) virtual actors driven from one OS thread by
    a seeded scheduler, so a racy interleaving — and the
    :class:`RaceViolation` it provokes — replays deterministically from
    the seed alone.
    """
    stack: list[str] | None = getattr(_tls, "actors", None)
    if stack is None:
        stack = []
        _tls.actors = stack
    stack.append(name)
    try:
        yield name
    finally:
        stack.pop()


def _held_stack() -> list[TrackedLock]:
    held: list[TrackedLock] | None = getattr(_tls, "held", None)
    if held is None:
        held = []
        _tls.held = held
    return held


# ----------------------------------------------------------------------
# global sanitizer state
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Access:
    actor: str
    clock: dict[str, int]
    write: bool
    stack: tuple[tuple[str, int, str], ...]
    sim_time: float | None


class _State:
    """Process-wide sanitizer bookkeeping, behind its own plain mutex."""

    def __init__(self) -> None:
        self.mutex = threading.Lock()
        self.actor_clocks: dict[str, dict[str, int]] = {}
        # (outer, inner) -> stack captured the first time the nesting
        # was observed; used for cycle detection and error reports.
        self.lock_edges: dict[tuple[str, str], tuple[tuple[str, int, str], ...]] = {}
        self.last_access: dict[tuple[int, str], _Access] = {}
        self.order_checks = 0
        self.race_checks = 0


_state = _State()

# Declared once by the engine (below); tests may re-declare.
_declared_order: tuple[str, ...] = ()


def declare_lock_order(*names: str) -> tuple[str, ...]:
    """Declare THE global lock order: earlier names may nest later ones.

    There is exactly one declaration per process (reprolint R011
    enforces exactly one per linted tree); re-declaring replaces the
    order, which tests use to exercise violations.
    """
    global _declared_order
    _declared_order = tuple(names)
    return _declared_order


def declared_lock_order() -> tuple[str, ...]:
    """The currently declared global lock order."""
    return _declared_order


def reset_sanitizer() -> None:
    """Drop all recorded clocks, edges and accesses (test isolation)."""
    with _state.mutex:
        _state.actor_clocks.clear()
        _state.lock_edges.clear()
        _state.last_access.clear()
        _state.order_checks = 0
        _state.race_checks = 0


def sanitizer_counters() -> dict[str, int]:
    """How many order/race checks have run (overhead accounting)."""
    with _state.mutex:
        return {
            "order_checks": _state.order_checks,
            "race_checks": _state.race_checks,
            "lock_edges": len(_state.lock_edges),
            "tracked_fields": len(_state.last_access),
        }


def _dominates(left: dict[str, int], right: dict[str, int]) -> bool:
    """True iff vector clock ``left`` >= ``right`` componentwise."""
    return all(left.get(key, 0) >= tick for key, tick in right.items())


def _actor_clock(name: str) -> dict[str, int]:
    """The named actor's vector clock; callable WITHOUT ``_state.mutex``.

    An actor's clock is only ever *mutated* by the thread currently
    running as that actor (lock acquire joins, lock release bumps);
    other threads never read it directly — they see snapshot copies
    published through :class:`TrackedLock` and :class:`_Access`.  Under
    the GIL the dict lookup is atomic, so only first-time creation takes
    the mutex (to keep the registry insert race-free).
    """
    clock = _state.actor_clocks.get(name)
    if clock is None:
        with _state.mutex:
            clock = _state.actor_clocks.setdefault(name, {name: 1})
    return clock


# ----------------------------------------------------------------------
# tracked locks
# ----------------------------------------------------------------------
class TrackedLock:
    """A named reentrant lock wired into the sanitizer.

    Checks off: one boolean test over a plain ``RLock``.  Checks on:
    every *outermost* acquisition is validated against the declared
    global order and the observed nesting graph **before** blocking (so
    an inversion raises instead of deadlocking), and release publishes
    the holder's vector clock to the lock, establishing the
    happens-before edge the race detector consumes.
    """

    __slots__ = ("name", "_lock", "_clock", "_acquire_stack")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.RLock()
        self._clock: dict[str, int] = {}
        self._acquire_stack: tuple[tuple[str, int, str], ...] = ()

    def __repr__(self) -> str:
        return f"TrackedLock({self.name!r})"

    # -- tracking -------------------------------------------------------
    def _before_acquire(self) -> None:
        held = _held_stack()
        if self in held:
            return  # reentrant re-acquisition: order already validated
        if not held:
            return
        outer = held[-1]
        with _state.mutex:
            _state.order_checks += 1
            order = _declared_order
            if self.name in order and outer.name in order:
                if order.index(outer.name) > order.index(self.name):
                    raise LockOrderViolation(
                        f"lock-order inversion: acquiring {self.name!r} "
                        f"while holding {outer.name!r}, but the declared "
                        f"global order is {order!r}\n"
                        f"  {outer.name!r} acquired at:\n"
                        f"{_format_stack(outer._acquire_stack)}\n"
                        f"  {self.name!r} requested at:\n"
                        f"{_format_stack(_capture_stack(skip=3))}"
                    )
            prior = _state.lock_edges.get((self.name, outer.name))
            if prior is not None:
                raise LockOrderViolation(
                    f"lock-order cycle: {outer.name!r} -> {self.name!r} "
                    f"observed now, but {self.name!r} -> {outer.name!r} "
                    f"was observed earlier\n"
                    f"  earlier {self.name!r} -> {outer.name!r} nesting:\n"
                    f"{_format_stack(prior)}\n"
                    f"  current {outer.name!r} -> {self.name!r} nesting:\n"
                    f"{_format_stack(_capture_stack(skip=3))}"
                )
            if (outer.name, self.name) not in _state.lock_edges:
                # stacks are only kept for the FIRST observation of each
                # edge (that is all the cycle report needs), so the
                # steady-state nested acquire never pays a capture
                _state.lock_edges[(outer.name, self.name)] = _capture_stack(
                    skip=3
                )

    def _after_acquire(self) -> None:
        held = _held_stack()
        held.append(self)
        self._acquire_stack = _capture_stack(skip=3, depth=_HOT_STACK_DEPTH)
        published = self._clock
        if not published:
            # never released yet: nothing to join.  The unlocked read is
            # safe — ``_clock`` is published in ``_before_release``
            # before the RLock is dropped, so any clock a previous
            # holder left is visible to us by lock acquisition order.
            return
        # joining mutates only the current actor's own clock: no mutex
        clock = _actor_clock(current_actor())
        for key, tick in published.items():
            if clock.get(key, 0) < tick:
                clock[key] = tick

    def _before_release(self) -> None:
        held = _held_stack()
        try:
            held.remove(self)
        except ValueError:
            return  # acquired while checks were off; nothing tracked
        if self in held:
            return  # still reentrantly held: publish on outermost release
        # snapshot-publish + bump touch only the current actor's own
        # clock and this lock's ``_clock`` reference (read by the next
        # holder, ordered by the RLock handoff itself): no mutex
        name = current_actor()
        clock = _actor_clock(name)
        self._clock = dict(clock)
        clock[name] = clock.get(name, 0) + 1

    # -- lock protocol --------------------------------------------------
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if not _gate():
            return self._lock.acquire(blocking, timeout)
        self._before_acquire()
        got = self._lock.acquire(blocking, timeout)
        if got:
            self._after_acquire()
        return got

    def release(self) -> None:
        # Also clean up tracking when the gate flipped off mid-section,
        # so a stale "held" entry cannot outlive the critical section.
        if _gate() or self in _held_stack():
            self._before_release()
        self._lock.release()

    def __enter__(self) -> TrackedLock:
        self.acquire()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.release()

    def held_by_current_thread(self) -> bool:
        """Whether this thread currently tracks the lock as held.

        Only meaningful while checks are armed (acquisitions made with
        checks off are not tracked).
        """
        return self in _held_stack()


def tracked_lock(name: str) -> TrackedLock:
    """Create the named :class:`TrackedLock` (declaration choke point).

    ``reprolint`` resolves lock *names* statically through this call,
    so every engine lock must be created here (or via the class
    directly) with a string-literal name from the declared order.
    """
    return TrackedLock(name)


# ----------------------------------------------------------------------
# guarded state registry + race detection
# ----------------------------------------------------------------------
_ClassT = TypeVar("_ClassT", bound=type)


def guarded_by(lock_attr: str, *fields: str) -> Callable[[_ClassT], _ClassT]:
    """Class decorator: the named fields mutate only under ``lock_attr``.

    Registers the mapping on the class (merged down the MRO) for both
    the static checker (reprolint R010 reads the decorator) and the
    runtime race detector (:func:`note_access` reads
    ``__guarded_by__``).
    """

    def wrap(cls: _ClassT) -> _ClassT:
        merged: dict[str, str] = {}
        for base in reversed(cls.__mro__):
            merged.update(getattr(base, "__guarded_by__", {}))
        merged.update({field: lock_attr for field in fields})
        cls.__guarded_by__ = merged  # type: ignore[attr-defined]
        return cls

    return wrap


def note_access(
    obj: Any,
    field: str,
    *,
    write: bool = True,
    sim_time: float | None = None,
) -> None:
    """Record one access to a guarded field; raise on a detected race.

    The check is happens-before on vector clocks: conflicting accesses
    (write/write or read/write) to the same field of the same object by
    *different* actors must be ordered — and the only sources of order
    are lock release/acquire edges on :class:`TrackedLock`.  Two
    critical sections under the declaring lock are therefore always
    ordered; an access that skips the lock has no edge and trips
    :class:`RaceViolation` with both stacks.
    """
    if not _gate():
        return
    guard_map: dict[str, str] = getattr(type(obj), "__guarded_by__", {})
    lock_attr = guard_map.get(field)
    if lock_attr is None:
        return
    lock = getattr(obj, lock_attr, None)
    protected = isinstance(lock, TrackedLock) and lock.held_by_current_thread()
    name = current_actor()
    stack = _capture_stack(skip=2, depth=_HOT_STACK_DEPTH)
    key = (id(obj), field)
    # snapshot our own clock before taking the mutex (own-thread only;
    # _actor_clock may itself take the mutex to create a fresh clock)
    clock = dict(_actor_clock(name))
    with _state.mutex:
        _state.race_checks += 1
        last = _state.last_access.get(key)
        if (
            last is not None
            and last.actor != name
            and (write or last.write)
            and not _dominates(clock, last.clock)
        ):
            kind = "write" if write else "read"
            prior = "write" if last.write else "read"
            raise RaceViolation(
                f"data race on {type(obj).__name__}.{field}: {kind} by "
                f"actor {name!r} (sim_time={sim_time}) is unordered with "
                f"the previous {prior} by actor {last.actor!r} "
                f"(sim_time={last.sim_time}); the field is declared "
                f"guarded by {lock_attr!r} "
                f"({'held' if protected else 'NOT held'} here)\n"
                f"  previous {prior} by {last.actor!r}:\n"
                f"{_format_stack(last.stack)}\n"
                f"  current {kind} by {name!r}:\n"
                f"{_format_stack(stack)}"
            )
        _state.last_access[key] = _Access(name, clock, write, stack, sim_time)


# ----------------------------------------------------------------------
# fork-transport whitelist
# ----------------------------------------------------------------------
_FuncT = TypeVar("_FuncT", bound=Callable[..., Any])


def fork_safe(func: _FuncT) -> _FuncT:
    """Whitelist a module-level function for process-pool transport.

    Forked workers receive callables by *reference* (module + qualname);
    lambdas, bound methods and closures either fail to pickle or drag
    unshareable state across the fork.  reprolint R013 statically
    requires every callable handed to a worker pool to carry this mark.
    """
    func.__fork_safe__ = True  # type: ignore[attr-defined]
    return func


# The engine's single declared order.  Rationale, outermost first:
# the thread executor's staging lock is held while faulting pages in
# (staging -> buffer-pool); the pool issues scheduler reads and notifies
# shm eviction observers while holding its own lock (buffer-pool ->
# io-scheduler, buffer-pool -> shm-store); the executor observer list
# never nests inside anything else.
GLOBAL_LOCK_ORDER = declare_lock_order(
    "executor-staging",
    "executor-observers",
    "buffer-pool",
    "io-scheduler",
    "shm-store",
)
