"""Buffer-pool accounting invariants.

The experiments' I/O numbers are only as trustworthy as the buffer
pool's bookkeeping: every lookup must be classified as exactly one hit
or miss, every miss must correspond to one disk fetch issued by the
pool, dirty pages must still be resident, and the pool must never hold
more frames than its capacity.  :class:`repro.storage.buffer.BufferPool`
maintains the ``lookups`` / ``disk_fetches`` shadow counters this
validator cross-checks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .errors import check

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..storage.buffer import BufferPool


def validate_buffer_pool(pool: "BufferPool") -> None:
    """O(dirty-set) accounting contract of one buffer pool."""
    check(
        pool.hits + pool.misses == pool.lookups,
        f"buffer accounting broken: {pool.hits} hits + {pool.misses} misses "
        f"!= {pool.lookups} lookups",
    )
    check(
        pool.misses == pool.disk_fetches,
        f"buffer accounting broken: {pool.misses} misses but "
        f"{pool.disk_fetches} disk fetches issued",
    )
    check(
        len(pool) <= pool.capacity,
        f"buffer pool holds {len(pool)} frames, over its capacity of "
        f"{pool.capacity}",
    )
    resident = pool._frames.keys()
    stray = [page_id for page_id in pool._dirty if page_id not in resident]
    check(
        not stray,
        f"dirty set references evicted pages {stray}; write-back was lost",
    )
