"""Buffer-pool accounting invariants.

The experiments' I/O numbers are only as trustworthy as the buffer
pool's bookkeeping: every lookup must be classified as exactly one hit,
one miss or one quarantine rejection; the disk fetches issued by the
pool must equal its misses plus the retry attempts its retry policy
authorized plus the async prefetches it issued (so prefetching cannot
silently double-count I/O); every issued prefetch must be claimed,
cancelled or still pending; pending prefetched pages must be resident
and clean; dirty pages must still be resident; the pool must never hold
more frames than its capacity; and a quarantined page must be neither
resident nor dirty.  :class:`repro.storage.buffer.BufferPool` maintains
the ``lookups`` / ``disk_fetches`` / ``rejected`` / ``retry_attempts``
/ ``prefetch_issued`` / ``prefetch_claimed`` / ``prefetch_cancelled``
shadow counters this validator cross-checks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .errors import check

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..kernels.shm import SharedColumnStore
    from ..storage.buffer import BufferPool


def validate_buffer_pool(pool: "BufferPool") -> None:
    """O(dirty-set + quarantine-set) accounting contract of one pool."""
    check(
        pool.hits + pool.misses + pool.rejected == pool.lookups,
        f"buffer accounting broken: {pool.hits} hits + {pool.misses} misses "
        f"+ {pool.rejected} rejected != {pool.lookups} lookups",
    )
    check(
        pool.disk_fetches
        == pool.misses + pool.retry_attempts + pool.prefetch_issued,
        f"buffer accounting broken: {pool.disk_fetches} disk fetches != "
        f"{pool.misses} misses + {pool.retry_attempts} retry attempts "
        f"+ {pool.prefetch_issued} prefetches issued",
    )
    pending = pool.prefetch_pending
    check(
        pool.prefetch_issued
        == pool.prefetch_claimed + pool.prefetch_cancelled + len(pending),
        f"prefetch ledger broken: {pool.prefetch_issued} issued != "
        f"{pool.prefetch_claimed} claimed + {pool.prefetch_cancelled} "
        f"cancelled + {len(pending)} pending",
    )
    check(
        len(pool) <= pool.capacity,
        f"buffer pool holds {len(pool)} frames, over its capacity of "
        f"{pool.capacity}",
    )
    resident = pool._frames.keys()
    stray = [page_id for page_id in pool._dirty if page_id not in resident]
    check(
        not stray,
        f"dirty set references evicted pages {stray}; write-back was lost",
    )
    lost_pending = [page_id for page_id in pending if page_id not in resident]
    check(
        not lost_pending,
        f"pending prefetched pages {lost_pending} are not resident; their "
        "claims would re-fetch and double-count",
    )
    dirty_pending = [page_id for page_id in pending if page_id in pool._dirty]
    check(
        not dirty_pending,
        f"pending prefetched pages {dirty_pending} are marked dirty; an "
        "unclaimed async read must never carry modifications",
    )
    quarantined = pool.quarantined_pages
    cached = [page_id for page_id in quarantined if page_id in resident]
    check(
        not cached,
        f"quarantined pages {cached} are still cached; suspect content "
        "could be served",
    )
    dirty_quarantined = [page_id for page_id in quarantined if page_id in pool._dirty]
    check(
        not dirty_quarantined,
        f"quarantined pages {dirty_quarantined} are marked dirty",
    )
    over_budget = [
        page_id
        for page_id, count in pool._failures.items()
        if count >= pool.quarantine_threshold and page_id not in quarantined
    ]
    check(
        not over_budget,
        f"pages {over_budget} exceeded the failure budget of "
        f"{pool.quarantine_threshold} but were not quarantined",
    )


def validate_shm_store(store: "SharedColumnStore") -> None:
    """Segment ledger of one shared-memory column store.

    The leak contract in numbers: every created segment is either live or
    retired, every retired segment was unlinked, and a closed store keeps
    nothing live.  :class:`repro.kernels.shm.SharedColumnStore` calls
    this after every registry mutation when checks are enabled.
    """
    stats = store.stats
    check(
        stats.created == store.live_segments + stats.retired,
        f"shm ledger broken: {stats.created} created != "
        f"{store.live_segments} live + {stats.retired} retired",
    )
    check(
        stats.unlinked == stats.retired,
        f"shm ledger broken: {stats.unlinked} unlinked != "
        f"{stats.retired} retired; a retired segment would leak its name",
    )
    check(
        not store.closed or store.live_segments == 0,
        f"closed shm store still holds {store.live_segments} live segments",
    )
