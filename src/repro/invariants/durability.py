"""Durability-layer invariants: WAL structure and replica consistency.

The write-ahead log and the replica store are only useful if their own
bookkeeping is beyond suspicion — recovery replays whatever the log says,
and repair restores whatever the replica says.  These validators run at
every batch boundary / repair (under ``REPRO_CHECKS=1``) and pin down:

* the log is a well-formed interleaving: LSNs are dense and increasing,
  every record belongs to a ``begin``-opened transaction, at most one
  transaction is ever *actively mutating* (batches are serial), closed
  transactions are closed exactly once, page-image records only appear
  between their transaction's ``begin`` and its close, and a
  ``prepare`` moves its transaction into the in-doubt set — whose
  members may be closed out of serial order, but only once, and must
  carry the global transaction id the coordinator decided under;
* the in-memory mirror and the durable log-device pages agree record for
  record (the mirror is what recovery reads; the device is what priced
  the forces);
* every replica slot holds exactly ``copies`` copies, and no replica is
  kept for a page the disk no longer knows (a leaked slot would let a
  freed address "repair" a future reallocation with stale content).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .errors import check

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..storage.replica import ReplicatedDisk
    from ..storage.wal import WriteAheadLog

_OPENERS = frozenset({"begin"})
_CLOSERS = frozenset({"commit", "abort"})
_MEMBERS = frozenset({"alloc", "undo", "image", "free"})


def validate_wal(wal: "WriteAheadLog") -> None:
    """O(log-records) structural contract of one write-ahead log."""
    records = wal.records
    for position, record in enumerate(records):
        check(
            record.lsn == position,
            f"WAL LSNs are not dense: record #{position} carries "
            f"lsn={record.lsn}",
        )
    open_txn: int | None = None
    closed: set[int] = set()
    prepared: set[int] = set()
    for record in records:
        if record.kind in _OPENERS:
            check(
                open_txn is None,
                f"WAL batch {record.txn} begins while batch {open_txn} "
                "is still open; batches must be serial",
            )
            check(
                record.txn not in closed and record.txn not in prepared,
                f"WAL transaction id {record.txn} was reused after closing",
            )
            open_txn = record.txn
        elif record.kind == "prepare":
            check(
                open_txn == record.txn,
                f"WAL prepare for transaction {record.txn} but open "
                f"transaction is {open_txn}",
            )
            check(
                bool(record.label),
                f"WAL prepare record (lsn {record.lsn}) carries no global "
                "transaction id; recovery could never match a decision",
            )
            prepared.add(record.txn)
            open_txn = None
        elif record.kind in _CLOSERS:
            check(
                open_txn == record.txn or record.txn in prepared,
                f"WAL {record.kind} for transaction {record.txn} but "
                f"open transaction is {open_txn} and {record.txn} is "
                "not in-doubt",
            )
            closed.add(record.txn)
            if record.txn in prepared:
                prepared.discard(record.txn)
            else:
                open_txn = None
        elif record.kind in _MEMBERS:
            check(
                open_txn == record.txn,
                f"WAL {record.kind} record (lsn {record.lsn}) belongs to "
                f"transaction {record.txn} but open transaction is {open_txn}",
            )
            check(
                record.page_id is not None,
                f"WAL {record.kind} record (lsn {record.lsn}) names no page",
            )
        else:
            check(False, f"unknown WAL record kind {record.kind!r}")
    # the durable pages must mirror the in-memory log exactly
    durable = [record for page in wal._log_pages for record in page.records]
    check(
        len(durable) == len(records),
        f"WAL mirror/device divergence: {len(records)} records in memory, "
        f"{len(durable)} on the log device",
    )
    for in_memory, on_device in zip(records, durable):
        check(
            in_memory is on_device,
            f"WAL mirror/device divergence at lsn {in_memory.lsn}",
        )


def validate_replicated_disk(disk: "ReplicatedDisk") -> None:
    """O(replica-slots) consistency contract of one replicated disk."""
    check(
        disk.copies >= 1,
        f"ReplicatedDisk claims {disk.copies} copies; at least one required",
    )
    for page_id, slots in disk._replicas.items():
        check(
            len(slots) == disk.copies,
            f"replica slot for page {page_id} holds {len(slots)} copies, "
            f"expected {disk.copies}",
        )
        check(
            disk.inner.page_exists(page_id),
            f"replica slot leaked for freed page {page_id}; a future "
            "reallocation of that address could be 'repaired' with stale "
            "content",
        )
