"""Output-stream invariants of the Tetris sweep.

Theorem-level contract of Section 3: the Tetris algorithm delivers
exactly the qualifying tuples, in nondecreasing (or, for descending
scans, nonincreasing) order of the sort attribute(s).  The
:class:`StreamChecker` observes every emitted tuple and raises on the
first violation — which localizes a corruption to the page or slice
that produced it instead of letting it surface as a wrong query answer
much later.
"""

from __future__ import annotations

from typing import Sequence, TYPE_CHECKING

from .errors import check

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..core.query_space import QuerySpace


class StreamChecker:
    """Validates one Tetris output stream tuple-by-tuple."""

    __slots__ = ("sort_dims", "descending", "space", "_previous", "_count")

    def __init__(
        self,
        sort_dims: Sequence[int],
        descending: bool,
        space: "QuerySpace",
    ) -> None:
        self.sort_dims = tuple(sort_dims)
        self.descending = descending
        self.space = space
        self._previous: tuple[int, ...] | None = None
        self._count = 0

    def observe(self, point: Sequence[int]) -> None:
        """Check the next emitted tuple's point against the contract."""
        self._count += 1
        check(
            self.space.contains_point(point),
            f"Tetris emitted tuple #{self._count} at {tuple(point)}, which "
            "is outside the query space",
        )
        key = tuple(point[dim] for dim in self.sort_dims)
        previous = self._previous
        if previous is not None:
            in_order = key <= previous if self.descending else key >= previous
            direction = "nonincreasing" if self.descending else "nondecreasing"
            check(
                in_order,
                f"Tetris output not {direction} in the sort dimension(s) "
                f"{self.sort_dims}: tuple #{self._count} has key {key} after "
                f"{previous}",
            )
        self._previous = key
