"""The invariant-violation error type and the unconditional check helper."""

from __future__ import annotations


class InvariantViolation(AssertionError):
    """A stated engine contract does not hold on the live data structures.

    Subclasses ``AssertionError`` so existing callers of the
    ``check_invariants()`` debug entry points keep catching the same
    exception type — but unlike an ``assert`` statement, raising it is
    never stripped by ``python -O``.
    """


def check(condition: object, message: str) -> None:
    """Raise :class:`InvariantViolation` when ``condition`` is falsy.

    This helper is *unconditional* — gating on ``REPRO_CHECKS`` happens
    at the validator call sites, so a validator that runs always means
    what it says.
    """
    if not condition:
        raise InvariantViolation(message)
