"""Cross-backend kernel parity spot checks.

The kernel contract (:mod:`repro.kernels.base`) demands the NumPy and
pure-Python backends be **observationally identical**.  The test suite
asserts this over randomized workloads; with ``REPRO_CHECKS=1`` the
engine additionally re-runs every page kernel it actually executes on
the *other* backend and compares results in place — so a divergence
(say, a stale columnar cache after a missed ``Page.version`` bump)
raises at the exact page that produced it.
"""

from __future__ import annotations

from typing import Any, Sequence, TYPE_CHECKING

from .errors import check

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..core.query_space import QuerySpace
    from ..kernels.base import KernelBackend
    from ..storage.page import Page

_PageResult = tuple[int, Sequence[int], Sequence[Sequence[int]]]


def _normalize(result: _PageResult) -> tuple[int, list[int], list[list[int]]]:
    count, selected, entries = result
    return (
        int(count),
        [int(index) for index in selected],
        [[int(value) for value in entry] for entry in entries],
    )


def spot_check_scan_page(
    active: "KernelBackend",
    curve: Any,
    space: "QuerySpace",
    page: "Page",
    base: int,
    result: _PageResult,
) -> None:
    """Compare one ``scan_page`` result against the other backend.

    ``result`` is what ``active`` returned; the reference value is
    computed by the first *other* registered backend over the page's
    materialized points (bypassing any per-page caches, so a stale
    memoized view on the active backend cannot hide itself).  No-op when
    only one backend is available.
    """
    from .. import kernels

    others = [name for name in kernels.available_backends() if name != active.name]
    if not others:
        return
    reference = kernels.backend(others[0])
    points = [record[1][0] for record in page.records]
    expected = _normalize(reference.page_entries(curve, space, points, base))
    got = _normalize(result)
    check(
        got == expected,
        f"kernel backends diverge on page {page.page_id}: "
        f"`{active.name}`.scan_page returned {got[0]} tuples "
        f"(selected={got[1][:8]}...), `{reference.name}` says {expected[0]} "
        f"(selected={expected[1][:8]}...); if the page was mutated, check "
        "for a missing Page.version bump",
    )
