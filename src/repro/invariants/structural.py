"""Structural validators: B+-tree shape and UB-Tree Z-region tiling.

These are the invariants the paper's algorithms *assume* rather than
re-derive: separator keys bound their subtrees, all leaves sit at the
same depth, and the Z-regions recovered from the separators tile the
universe disjointly — the property that makes the Tetris sweep's static
region keys valid (Section 3.3: "the UB-Tree partitions the
multidimensional space into Z-regions").

Everything here works duck-typed against :class:`repro.btree.bptree.
BPlusTree` and :class:`repro.core.ubtree.UBTree` so the package has no
import cycle back into the engine.
"""

from __future__ import annotations

from typing import Any, TYPE_CHECKING

from .errors import InvariantViolation, check

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..btree.bptree import BPlusTree
    from ..core.ubtree import UBTree
    from ..storage.page import Page


def validate_leaf(
    tree: "BPlusTree", leaf: "Page", low: Any = None, high: Any = None
) -> None:
    """Local leaf contract: sorted records, bounded by separators.

    Cheap enough (O(page)) to run after every insert/delete when checks
    are enabled; ``low``/``high`` are the covering separator interval
    ``(low, high]`` when the caller knows it (``None`` = unbounded).
    """
    keys = [record[0] for record in leaf.records]
    for previous, current in zip(keys, keys[1:]):
        check(
            not current < previous,
            f"leaf {leaf.page_id} records out of key order",
        )
    if keys:
        if low is not None:
            check(
                keys[0] > low,
                f"leaf {leaf.page_id} holds key {keys[0]!r} at or below its "
                f"lower separator bound {low!r}",
            )
        if high is not None:
            check(
                keys[-1] <= high,
                f"leaf {leaf.page_id} holds key {keys[-1]!r} above its upper "
                f"separator bound {high!r}",
            )
    if len(leaf.records) > leaf.capacity:
        # legal only for an overflow page (equal-key run kept together)
        check(
            tree.overflow_pages > 0,
            f"leaf {leaf.page_id} exceeds its capacity "
            f"({len(leaf.records)}/{leaf.capacity}) but the tree reports no "
            "overflow pages",
        )


def validate_bptree(tree: "BPlusTree") -> None:
    """Full B+-tree contract: ordering, containment, arity, balance,
    occupancy and leaf-chain completeness.

    O(n); run after bulk loads and from debug entry points, not per
    operation.
    """
    leaf_depths: set[int] = set()
    over_capacity = 0
    chain_expected: list[int] = []

    def walk(page_id: int, low: Any, high: Any, depth: int) -> None:
        nonlocal over_capacity
        page = tree.disk.peek(page_id)
        if tree._is_leaf(page):
            leaf_depths.add(depth)
            validate_leaf(tree, page, low, high)
            if len(page.records) > page.capacity:
                over_capacity += 1
            chain_expected.append(page.page_id)
            return
        node = page.payload
        keys = node.keys
        for previous, current in zip(keys, keys[1:]):
            check(
                not current < previous,
                f"inner node {page_id} separator keys out of order",
            )
        check(
            len(node.children) == len(keys) + 1,
            f"inner node {page_id} arity mismatch: {len(node.children)} "
            f"children for {len(keys)} separators",
        )
        check(
            len(keys) <= tree.fanout,
            f"inner node {page_id} holds {len(keys)} separators, over the "
            f"fanout of {tree.fanout}",
        )
        bounds = [low, *keys, high]
        for index, child in enumerate(node.children):
            walk(child, bounds[index], bounds[index + 1], depth + 1)

    walk(tree.root_id, None, None, 1)

    check(
        leaf_depths == {tree.height},
        f"tree is unbalanced: leaves at depths {sorted(leaf_depths)}, "
        f"height says {tree.height}",
    )
    check(
        over_capacity <= tree.overflow_pages,
        f"{over_capacity} leaves exceed their capacity but only "
        f"{tree.overflow_pages} overflow pages are accounted for",
    )
    check(
        len(chain_expected) == tree.leaf_count,
        f"tree holds {len(chain_expected)} leaves, leaf_count says "
        f"{tree.leaf_count}",
    )

    # the sibling chain must visit exactly the in-order leaves
    chain_seen: list[int] = []
    previous_key: Any = None
    records = 0
    page_id: int | None = tree.first_leaf_id
    while page_id is not None:
        leaf = tree.disk.peek(page_id)
        chain_seen.append(page_id)
        for key, _ in leaf.records:
            check(
                previous_key is None or not key < previous_key,
                f"leaf chain key order broken at page {page_id}",
            )
            previous_key = key
            records += 1
        if len(chain_seen) > len(chain_expected):
            raise InvariantViolation("leaf chain is longer than the tree (cycle?)")
        page_id = leaf.payload["next"]
    check(
        chain_seen == chain_expected,
        "leaf sibling chain disagrees with the tree's in-order leaves",
    )
    check(
        records == tree.record_count,
        f"leaf chain holds {records} records, record_count says "
        f"{tree.record_count}",
    )


def validate_ubtree(ubtree: "UBTree") -> None:
    """Z-region partitioning contract plus the underlying tree's.

    The regions recovered from the separator keys must tile
    ``[0, address_max]`` disjointly and completely, every stored tuple
    must lie inside its region, and its stored Z-address must re-derive
    from its point — the invariants the Tetris sweep's "regions are
    disjoint, so region keys are static" argument rests on.
    """
    validate_bptree(ubtree.tree)
    total = 0
    previous_last = -1
    for region in ubtree.regions():
        check(
            region.first == previous_last + 1,
            f"Z-regions do not tile the universe: region starts at "
            f"{region.first}, previous ended at {previous_last}",
        )
        previous_last = region.last
        page = ubtree.tree.buffer.disk.peek(region.page_id)
        for z_address, (point, _) in page.records:
            check(
                region.contains(z_address),
                f"tuple with Z-address {z_address} stored outside its "
                f"Z-region [{region.first}:{region.last}]",
            )
            check(
                ubtree.space.z_address(point) == z_address,
                f"stored Z-address {z_address} inconsistent with point "
                f"{point}",
            )
            total += 1
    check(
        previous_last == ubtree.space.address_max,
        f"Z-regions do not cover the universe: last region ends at "
        f"{previous_last}, universe at {ubtree.space.address_max}",
    )
    check(
        total == len(ubtree),
        f"Z-region pages hold {total} tuples, the tree counts {len(ubtree)}",
    )
