"""Two-phase-commit invariants: decision-log structure and cross-log
agreement.

The decision log is the protocol's ground truth — recovery drives every
shard to whatever it says — so its own shape must be beyond suspicion,
and the participant WALs must never contradict it.  These validators run
after every transaction and every recovery pass (under
``REPRO_CHECKS=1``) and pin down:

* each global transaction appears in the decision log as at most one
  ``prepare``, at most one ``decision`` and at most one ``ack``, in that
  order, with a non-empty participant roster and a verdict from the
  legal set;
* **no unilateral commit**: a participant WAL that holds both a
  ``prepare`` record for a gid *and* the commit closing that in-doubt
  transaction requires a durable ``commit`` verdict in the decision log
  for the same gid.  (The converse is legal mid-recovery: a durable
  commit whose participants have not applied yet is exactly the
  in-doubt window recovery exists to close.)
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .errors import check

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..txn.coordinator import TransactionCoordinator

_VERDICTS = frozenset({"commit", "abort"})


def validate_txn_log(coordinator: "TransactionCoordinator") -> None:
    """O(decision-records + participant-log-records) 2PC contract."""
    log = coordinator.log
    prepares: dict[str, int] = {}
    decisions: dict[str, str] = {}
    acks: set[str] = set()
    for record in log.records:
        gid = record.label or ""
        check(
            bool(gid),
            f"decision-log record (lsn {record.lsn}) carries no global "
            "transaction id",
        )
        if record.kind == "prepare":
            check(
                gid not in prepares,
                f"transaction {gid!r} has two prepare records in the "
                "decision log",
            )
            check(
                bool(record.records),
                f"transaction {gid!r} prepared with an empty participant "
                "roster",
            )
            prepares[gid] = record.lsn
        elif record.kind == "decision":
            check(
                gid in prepares,
                f"decision for {gid!r} precedes its prepare record",
            )
            check(
                gid not in decisions,
                f"transaction {gid!r} has two decision records",
            )
            verdict = str(record.records[0]) if record.records else ""
            check(
                verdict in _VERDICTS,
                f"transaction {gid!r} decided illegal verdict {verdict!r}",
            )
            decisions[gid] = verdict
        elif record.kind == "ack":
            check(
                gid in decisions,
                f"ack for {gid!r} without a decision record",
            )
            check(
                gid not in acks,
                f"transaction {gid!r} has two ack records",
            )
            acks.add(gid)
        else:
            check(
                False, f"unknown decision-log record kind {record.kind!r}"
            )
    # cross-check: no participant committed a gid the log did not decide
    sdb = coordinator.sdb
    for pid in sdb.participant_ids():
        committed_txns: set[int] = set()
        gid_of_txn: dict[int, str] = {}
        for record in sdb.participant_wal_records(pid):
            if record.kind == "prepare" and record.label:
                gid_of_txn[record.txn] = record.label
            elif record.kind == "commit" and record.txn in gid_of_txn:
                committed_txns.add(record.txn)
        for txn in committed_txns:
            gid = gid_of_txn[txn]
            check(
                decisions.get(gid) == "commit",
                f"participant {sdb.participant_name(pid)} committed "
                f"prepared transaction {gid!r} but the decision log says "
                f"{decisions.get(gid)!r} — a unilateral commit",
            )
