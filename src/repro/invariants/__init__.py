"""Runtime contract layer: the engine's invariants as executable checks.

The paper states correctness properties the code must uphold — Z-regions
partition the universe disjointly (Section 3.3), the Tetris sweep emits
tuples in nondecreasing sort-key order (Section 3.1), each overlapping
page is read exactly once — and the engine adds its own: B+-tree
structure, buffer-pool accounting, and observational identity of the two
kernel backends.  This package turns those contracts into validators
that run *inside* the engine when ``REPRO_CHECKS=1`` is set, and cost
one cheap boolean test per call site when disabled.

Gate
----
``enabled()`` is the single gate every call site consults::

    from .. import invariants
    ...
    if invariants.enabled():
        invariants.validate_bptree(self)

The flag is read once from the environment at import; tests flip it
programmatically with :func:`set_enabled` or the :func:`checks` context
manager.  Validators raise :class:`InvariantViolation` (a subclass of
``AssertionError`` for compatibility with older callers) and are *never*
stripped by ``python -O`` — that is the point: ``reprolint`` rule R005
bans bare ``assert`` for data-dependent invariants, and this layer is
the sanctioned replacement.

Validators
----------
* :func:`validate_bptree` / :func:`validate_leaf` — key ordering,
  separator containment, arity, balance, occupancy, leaf-chain
  completeness (:mod:`repro.invariants.structural`).
* :func:`validate_ubtree` — Z-region disjointness and coverage of the
  universe, stored-address consistency, record-count bijection.
* :func:`validate_buffer_pool` — hit/miss/lookup accounting, dirty-set
  ⊆ frames, frame count ≤ capacity (:mod:`repro.invariants.accounting`).
* :func:`validate_shm_store` — shared-memory segment ledger: created =
  live + retired, retired = unlinked, closed ⇒ nothing live
  (:mod:`repro.invariants.accounting`).
* :class:`StreamChecker` — Tetris output monotonicity in the sort
  dimension(s) and query-space membership
  (:mod:`repro.invariants.streams`).
* :func:`spot_check_scan_page` — re-runs a page kernel on the *other*
  backend and compares results (:mod:`repro.invariants.parity`).
* :func:`validate_wal` / :func:`validate_replicated_disk` — write-ahead
  log structure (dense LSNs, serial batches, mirror/device agreement)
  and replica-store consistency (:mod:`repro.invariants.durability`).
* :func:`validate_sharded_database` — shard slabs partition the shard
  dimension and every copy of a shard holds the same rows
  (:mod:`repro.invariants.sharding`).
* :func:`validate_txn_log` — 2PC decision-log structure (prepare →
  decision → ack, once each, legal verdicts) and the no-unilateral-
  commit cross-check against every participant WAL
  (:mod:`repro.invariants.txn`).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Iterator, TypeVar

from . import sanitizer as sanitizer
from .accounting import validate_buffer_pool, validate_shm_store
from .durability import validate_replicated_disk, validate_wal
from .errors import InvariantViolation, check
from .parity import spot_check_scan_page
from .sanitizer import (
    GLOBAL_LOCK_ORDER,
    LockOrderViolation,
    RaceViolation,
    TrackedLock,
    actor,
    declare_lock_order,
    declared_lock_order,
    fork_safe,
    guarded_by,
    note_access,
    reset_sanitizer,
    tracked_lock,
)
from .sharding import validate_sharded_database
from .streams import StreamChecker
from .structural import validate_bptree, validate_leaf, validate_ubtree
from .txn import validate_txn_log

__all__ = [
    "GLOBAL_LOCK_ORDER",
    "InvariantViolation",
    "LockOrderViolation",
    "RaceViolation",
    "StreamChecker",
    "TrackedLock",
    "actor",
    "check",
    "checks",
    "declare_lock_order",
    "declared_lock_order",
    "enabled",
    "fork_safe",
    "guarded_by",
    "note_access",
    "require_instance",
    "reset_sanitizer",
    "sanitizer",
    "set_enabled",
    "spot_check_scan_page",
    "tracked_lock",
    "validate_bptree",
    "validate_buffer_pool",
    "validate_leaf",
    "validate_replicated_disk",
    "validate_sharded_database",
    "validate_shm_store",
    "validate_txn_log",
    "validate_ubtree",
    "validate_wal",
]

_TRUTHY = frozenset({"1", "true", "on", "yes"})

_enabled: bool = os.environ.get("REPRO_CHECKS", "").strip().lower() in _TRUTHY


def enabled() -> bool:
    """Whether runtime invariant checking is on (``REPRO_CHECKS=1``)."""
    return _enabled


def set_enabled(flag: bool) -> bool:
    """Turn checking on/off programmatically; returns the previous state."""
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


@contextmanager
def checks(flag: bool = True) -> Iterator[None]:
    """Temporarily enable (or disable) invariant checking."""
    previous = set_enabled(flag)
    try:
        yield
    finally:
        set_enabled(previous)


# The sanitizer consults the same gate as every other validator; it is
# installed after ``enabled`` exists to avoid a circular import.
sanitizer._set_gate(enabled)


_T = TypeVar("_T")


def require_instance(obj: Any, cls: type[_T], context: str) -> _T:
    """``obj`` narrowed to ``cls``, or a ``TypeError`` naming the contract.

    The explicit replacement for dispatch-guard ``assert isinstance``
    statements (reprolint R005): survives ``python -O`` and tells the
    caller which plan/operator contract was broken.
    """
    if not isinstance(obj, cls):
        raise TypeError(
            f"{context} requires a {cls.__name__}, got {type(obj).__name__}"
        )
    return obj
