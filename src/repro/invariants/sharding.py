"""Coordinator-level invariants of the range-sharded engine.

The sharded scan's bit-identity argument leans on two structural facts:
the shard slabs *partition* the shard dimension (disjoint, contiguous,
covering — so every tuple lives in exactly one shard), and every copy
of a shard holds exactly the same rows (so failover and cross-copy
repair change nothing observable).  This validator pins both down in
O(shards × copies), cheap enough to run at every load and scan under
``REPRO_CHECKS=1``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .errors import check

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..shard.coordinator import ShardedDatabase


def validate_sharded_database(sdb: "ShardedDatabase") -> None:
    """Structural contract of one :class:`ShardedDatabase`."""
    coord_max = sdb.space.coord_max[sdb.shard_dim]
    expected_lo = 0
    for shard in sdb.shards:
        slab = shard.slab
        check(
            slab.lo == expected_lo,
            f"shard slabs do not tile the domain: shard {shard.index} "
            f"starts at {slab.lo}, expected {expected_lo}",
        )
        check(
            slab.lo <= slab.hi,
            f"shard {shard.index} has an empty slab [{slab.lo}, {slab.hi}]",
        )
        expected_lo = slab.hi + 1
        check(
            len(shard.copies) >= 1,
            f"shard {shard.index} has no copies",
        )
        loaded = sdb.rows_loaded[shard.index]
        for copy in shard.copies:
            check(
                len(copy.table) == loaded,
                f"shard {shard.index} copy {copy.copy_index} holds "
                f"{len(copy.table)} rows but the shard ledger says {loaded}; "
                "copies must stay bit-identical",
            )
    check(
        expected_lo == coord_max + 1,
        f"shard slabs cover [0, {expected_lo - 1}] but the shard dimension "
        f"domain is [0, {coord_max}]",
    )
    check(
        sdb.total_rows == sum(sdb.rows_loaded),
        "total_rows disagrees with the per-shard ledger",
    )
