"""Cost-based access-path selection (the paper's future-work optimizer)."""

from .executor import (
    DegradationEvent,
    ExecutablePlan,
    PhysicalDesign,
    PlanExhaustedError,
    QueryResult,
    execute_sorted_query,
    plan_sorted_query,
    register_degradation_observer,
    unregister_degradation_observer,
)
from .optimizer import CandidatePlan, RelationStats, choose_plan, enumerate_plans
from .parallel import (
    ExecutorFallbackEvent,
    ParallelScanResult,
    SweepSlab,
    parallel_tetris_scan,
    plan_slabs,
    register_fallback_observer,
    select_executor,
    unregister_fallback_observer,
)
from .statistics import AttributeHistogram, TableStatistics

__all__ = [
    "AttributeHistogram",
    "CandidatePlan",
    "DegradationEvent",
    "ExecutablePlan",
    "ExecutorFallbackEvent",
    "ParallelScanResult",
    "PhysicalDesign",
    "PlanExhaustedError",
    "QueryResult",
    "RelationStats",
    "SweepSlab",
    "choose_plan",
    "TableStatistics",
    "enumerate_plans",
    "execute_sorted_query",
    "parallel_tetris_scan",
    "plan_slabs",
    "plan_sorted_query",
    "register_degradation_observer",
    "register_fallback_observer",
    "select_executor",
    "unregister_degradation_observer",
    "unregister_fallback_observer",
]
