"""Cost-based access-path selection (the paper's future-work optimizer)."""

from .executor import ExecutablePlan, PhysicalDesign, plan_sorted_query
from .optimizer import CandidatePlan, RelationStats, choose_plan, enumerate_plans
from .statistics import AttributeHistogram, TableStatistics

__all__ = [
    "AttributeHistogram",
    "CandidatePlan",
    "ExecutablePlan",
    "PhysicalDesign",
    "RelationStats",
    "choose_plan",
    "TableStatistics",
    "enumerate_plans",
    "plan_sorted_query",
]
