"""Cost-based access-path selection (the paper's future-work optimizer)."""

from .executor import (
    DegradationEvent,
    ExecutablePlan,
    PhysicalDesign,
    PlanExhaustedError,
    QueryResult,
    execute_sorted_query,
    plan_sorted_query,
)
from .optimizer import CandidatePlan, RelationStats, choose_plan, enumerate_plans
from .statistics import AttributeHistogram, TableStatistics

__all__ = [
    "AttributeHistogram",
    "CandidatePlan",
    "DegradationEvent",
    "ExecutablePlan",
    "PhysicalDesign",
    "PlanExhaustedError",
    "QueryResult",
    "RelationStats",
    "choose_plan",
    "TableStatistics",
    "enumerate_plans",
    "execute_sorted_query",
    "plan_sorted_query",
]
