"""Data statistics for the optimizer: histograms and quantile mapping.

The Section 4 cost model takes restrictions as *normalized positions*
``(y_j, z_j) ⊆ [0, 1]`` and assumes uniformly distributed data.  Real
UB-Trees split full regions at median Z-addresses, so region boundaries
follow the **data's quantiles**, not the domain's arithmetic midpoints.
On skewed data the uniform assumption misprices every plan; mapping a
value range through the empirical CDF (``y = F(lo), z = F(hi)``)
restores the model's accuracy — the classic histogram trick, applied to
the region-count formula.

:class:`AttributeHistogram` is a plain equi-width histogram over the
*encoded* attribute domain; :class:`TableStatistics` bundles one per
attribute plus helpers that the plan executor consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from ..relational.schema import Schema


@dataclass
class AttributeHistogram:
    """Equi-width histogram over an encoded attribute domain ``[0, max]``."""

    code_max: int
    bucket_count: int
    counts: list[int]
    total: int

    @classmethod
    def build(
        cls, codes: Iterable[int], code_max: int, bucket_count: int = 64
    ) -> "AttributeHistogram":
        bucket_count = max(1, min(bucket_count, code_max + 1))
        counts = [0] * bucket_count
        total = 0
        width = (code_max + 1) / bucket_count
        for code in codes:
            if not 0 <= code <= code_max:
                raise ValueError(f"code {code} outside [0, {code_max}]")
            counts[min(bucket_count - 1, int(code / width))] += 1
            total += 1
        return cls(code_max, bucket_count, counts, total)

    def _bucket_width(self) -> float:
        return (self.code_max + 1) / self.bucket_count

    def cdf(self, code: float) -> float:
        """Fraction of rows with encoded value ``<= code`` (interpolated)."""
        if self.total == 0:
            # no data: fall back to the uniform assumption
            return min(1.0, max(0.0, (code + 1) / (self.code_max + 1)))
        if code < 0:
            return 0.0
        if code >= self.code_max:
            return 1.0
        width = self._bucket_width()
        bucket = min(self.bucket_count - 1, int(code / width))
        below = sum(self.counts[:bucket])
        inside = self.counts[bucket] * ((code + 1 - bucket * width) / width)
        return min(1.0, (below + inside) / self.total)

    def selectivity(self, lo_code: int, hi_code: int) -> float:
        """Estimated fraction of rows with ``lo_code <= value <= hi_code``."""
        if lo_code > hi_code:
            return 0.0
        return max(0.0, self.cdf(hi_code) - self.cdf(lo_code - 1))

    def normalized_range(self, lo_code: int, hi_code: int) -> tuple[float, float]:
        """Quantile positions ``(F(lo-1), F(hi))`` for the cost model."""
        lo = self.cdf(lo_code - 1)
        hi = self.cdf(hi_code)
        return (min(lo, hi), hi)


class TableStatistics:
    """Per-attribute histograms over one relation's rows."""

    def __init__(self, schema: Schema, histograms: dict[str, AttributeHistogram]) -> None:
        self.schema = schema
        self.histograms = histograms

    @classmethod
    def gather(
        cls,
        schema: Schema,
        rows: Iterable[tuple],
        attributes: Sequence[str],
        bucket_count: int = 64,
    ) -> "TableStatistics":
        """Scan ``rows`` once, building a histogram per listed attribute."""
        positions = {attr: schema.position(attr) for attr in attributes}
        encoders = {attr: schema.attribute(attr).encoder for attr in attributes}
        codes: dict[str, list[int]] = {attr: [] for attr in attributes}
        for row in rows:
            for attr in attributes:
                codes[attr].append(encoders[attr].encode(row[positions[attr]]))
        histograms = {
            attr: AttributeHistogram.build(
                codes[attr], encoders[attr].code_max, bucket_count
            )
            for attr in attributes
        }
        return cls(schema, histograms)

    def normalized_range(
        self, attr: str, lo_value: Any, hi_value: Any
    ) -> tuple[float, float]:
        """Value-level range to quantile positions through the histogram."""
        encoder = self.schema.attribute(attr).encoder
        histogram = self.histograms[attr]
        lo_code = encoder.encode(lo_value) if lo_value is not None else 0
        hi_code = (
            encoder.encode(hi_value) if hi_value is not None else encoder.code_max
        )
        return histogram.normalized_range(lo_code, hi_code)

    def selectivity(self, attr: str, lo_value: Any, hi_value: Any) -> float:
        lo, hi = self.normalized_range(attr, lo_value, hi_value)
        return hi - lo
