"""From chosen plan to running operators.

:mod:`repro.planner.optimizer` prices candidate access paths with the
Section 4 cost model; this module closes the loop: it derives the
model's inputs (page counts, normalized selectivities) from actual
table instances, asks the optimizer for the cheapest plan and builds
the corresponding operator tree — the full
"restriction + sort" query service the paper envisions for a DBMS
kernel with multidimensional indexes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterator

from ..costmodel.model import CostParameters
from ..telemetry import ObserverRegistry, TelemetryEvent
from ..relational.operators import (
    ExternalMergeSort,
    FirstTupleTimer,
    FullTableScan,
    IOTScan,
    Operator,
    Select,
    TetrisOperator,
)
from ..relational.schema import Schema
from ..relational.table import HeapTable, IOTTable, UBTable
from ..storage.buffer import BufferPool
from ..storage.errors import StorageError
from .optimizer import CandidatePlan, RelationStats, choose_plan
from .statistics import TableStatistics

ValueRange = tuple[Any, Any]


@dataclass
class PhysicalDesign:
    """The physical instances available for one logical relation.

    All instances must share the same schema and contents.  ``attributes``
    lists the index-relevant attributes (the UB-Tree dimension order when
    a UB instance exists).
    """

    attributes: tuple[str, ...]
    heap: HeapTable | None = None
    iots: dict[str, IOTTable] = field(default_factory=dict)  #: leading attr -> table
    ub: UBTable | None = None

    def __post_init__(self) -> None:
        if self.heap is None and not self.iots and self.ub is None:
            raise ValueError("a physical design needs at least one instance")
        for leading, table in self.iots.items():
            if table.key_attrs[0] != leading:
                raise ValueError(
                    f"IOT registered under {leading!r} leads with "
                    f"{table.key_attrs[0]!r}"
                )
        if self.ub is not None and tuple(self.ub.dims) != self.attributes:
            raise ValueError("UB instance dimensions must match `attributes`")

    @property
    def schema(self) -> Schema:
        for table in self._instances():
            return table.schema
        raise AssertionError("unreachable: design has at least one instance")

    def _instances(self) -> Iterator[HeapTable | IOTTable | UBTable]:
        if self.heap is not None:
            yield self.heap
        yield from self.iots.values()
        if self.ub is not None:
            yield self.ub

    def shared_buffer(self) -> "BufferPool":
        """The buffer pool all instances run on (they share one database)."""
        for table in self._instances():
            return table.db.buffer
        raise AssertionError("unreachable: design has at least one instance")

    def relation_stats(self) -> RelationStats:
        """Model inputs derived from the actual instances."""
        if self.heap is not None:
            pages = self.heap.page_count
        else:
            pages = min(table.page_count for table in self._instances())
        ub_fill = self.ub.page_count / pages if self.ub is not None else 1.4
        return RelationStats(
            pages=pages,
            attributes=self.attributes,
            heap_instance=self.heap.name if self.heap is not None else None,
            iot_instances=tuple(
                (leading, table.name) for leading, table in self.iots.items()
            ),
            ub_instance=self.ub.name if self.ub is not None else None,
            ub_fill_factor=ub_fill,
        )

    def normalized_restrictions(
        self,
        restrictions: dict[str, ValueRange] | None,
        statistics: "TableStatistics | None" = None,
    ) -> dict[str, tuple[float, float]]:
        """Value-level ranges to the model's normalized ``(y, z)`` pairs.

        Without ``statistics`` the mapping assumes a uniform domain (the
        paper's Section 4 assumption); with gathered
        :class:`~repro.planner.statistics.TableStatistics` the range is
        mapped through the empirical CDF instead — UB-Tree regions split
        at data medians, so quantile positions are what the region-count
        model actually responds to.
        """
        result: dict[str, tuple[float, float]] = {}
        schema = self.schema
        for attr, (lo, hi) in (restrictions or {}).items():
            if statistics is not None and attr in statistics.histograms:
                result[attr] = statistics.normalized_range(attr, lo, hi)
                continue
            encoder = schema.attribute(attr).encoder
            domain = encoder.code_max + 1
            lo_code = encoder.encode(lo) if lo is not None else 0
            hi_code = encoder.encode(hi) if hi is not None else encoder.code_max
            result[attr] = (lo_code / domain, (hi_code + 1) / domain)
        return result


def _predicate(
    schema: Schema, restrictions: dict[str, ValueRange] | None
) -> "Callable[[tuple], bool] | None":
    """Residual tuple predicate re-checking every value-level range."""
    if not restrictions:
        return None
    checks = [
        (schema.position(attr), lo, hi)
        for attr, (lo, hi) in restrictions.items()
    ]

    def passes(row: tuple) -> bool:
        for position, lo, hi in checks:
            value = row[position]
            if lo is not None and value < lo:
                return False
            if hi is not None and value > hi:
                return False
        return True

    return passes


@dataclass
class ExecutablePlan:
    """The optimizer's pick, bound to a runnable operator tree."""

    choice: CandidatePlan
    operator: Operator


def plan_sorted_query(
    design: PhysicalDesign,
    restrictions: dict[str, ValueRange] | None,
    sort_attr: str,
    params: CostParameters,
    *,
    descending: bool = False,
    require_pipelined: bool = False,
    statistics: "TableStatistics | None" = None,
) -> ExecutablePlan:
    """Choose and build the cheapest plan for a sort+restriction query.

    Returns the costed choice plus an operator tree that streams the
    restricted relation in ``sort_attr`` order.  Pass gathered
    ``statistics`` to price restrictions by data quantiles instead of
    the uniform-domain assumption.
    """
    schema = design.schema
    stats = design.relation_stats()
    normalized = design.normalized_restrictions(restrictions, statistics)
    choice = choose_plan(
        stats, normalized, sort_attr, params, require_pipelined=require_pipelined
    )
    predicate = _predicate(schema, restrictions)
    sort_position = schema.position(sort_attr)
    sort_key = lambda row: row[sort_position]  # noqa: E731

    if choice.method == "tetris":
        if design.ub is None:
            raise RuntimeError(
                "optimizer chose 'tetris' for a design without a UB instance"
            )
        index_restrictions = {
            attr: bounds
            for attr, bounds in (restrictions or {}).items()
            if attr in design.ub.dims
        }
        operator: Operator = TetrisOperator(
            design.ub,
            index_restrictions or None,
            sort_attr,
            descending=descending,
            predicate=predicate,
        )
    elif choice.method == "fts-sort":
        if design.heap is None:
            raise RuntimeError(
                "optimizer chose 'fts-sort' for a design without a heap instance"
            )
        operator = ExternalMergeSort(
            FullTableScan(design.heap, predicate=predicate),
            key=sort_key,
            disk=design.heap.db.disk,
            memory_pages=params.memory_pages,
            page_capacity=design.heap.page_capacity,
            merge_degree=params.merge_degree,
            descending=descending,
        )
    elif choice.method in ("iot-sort", "iot-presorted"):
        leading = next(
            attr for attr, table in design.iots.items()
            if table.name == choice.instance
        )
        table = design.iots[leading]
        bounds = (restrictions or {}).get(leading, (None, None))
        scan = IOTScan(
            table, leading_lo=bounds[0], leading_hi=bounds[1], predicate=predicate
        )
        if choice.method == "iot-presorted" and not descending:
            operator = scan
        else:
            operator = ExternalMergeSort(
                scan,
                key=sort_key,
                disk=table.db.disk,
                memory_pages=params.memory_pages,
                page_capacity=table.page_capacity,
                merge_degree=params.merge_degree,
                descending=descending,
            )
    else:  # pragma: no cover - enumerate_plans only emits the above
        raise ValueError(f"unknown method {choice.method!r}")

    return ExecutablePlan(choice=choice, operator=operator)


# ----------------------------------------------------------------------
# graceful degradation
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DegradationEvent(TelemetryEvent):
    """One plan abort-and-replan step, reported to the caller.

    ``fallback_method``/``fallback_instance`` name the plan the query
    continued with, or ``None`` when the failure exhausted the design.
    ``repaired_pages`` lists pages healed from replicas in response to
    this failure — when non-empty, the failed instance stayed in the
    design and the retry ran on the *same* (now repaired) instance.
    """

    method: str
    instance: str
    error_type: str
    error: str
    fallback_method: str | None = None
    fallback_instance: str | None = None
    repaired_pages: tuple[int, ...] = ()

    def describe(self) -> str:
        if self.repaired_pages:
            healed = ", ".join(str(page) for page in self.repaired_pages)
            return (
                f"{self.method} on {self.instance} aborted with "
                f"{self.error_type} ({self.error}); repaired page(s) "
                f"{healed} from replicas and re-planned on the full design"
            )
        target = (
            f"fell back to {self.fallback_method} on {self.fallback_instance}"
            if self.fallback_method is not None
            else "no fallback remained"
        )
        return (
            f"{self.method} on {self.instance} aborted with "
            f"{self.error_type} ({self.error}); {target}"
        )


#: subscribers to plan-degradation events, mirroring the parallel
#: executor's fallback registry (same :class:`~repro.telemetry
#: .ObserverRegistry`, same delivered-outside-the-lock discipline)
_degradation_registry: ObserverRegistry[DegradationEvent] = ObserverRegistry()


def register_degradation_observer(
    observer: "Callable[[DegradationEvent], Any]",
) -> None:
    """Subscribe to plan-degradation events (serving-layer telemetry).

    Each degradation step of a query is delivered exactly once, in
    order, when the query settles — on success (possibly degraded) or
    on :class:`PlanExhaustedError` — so observers always see the
    *finalized* event, with its fallback plan filled in.
    """
    _degradation_registry.register(observer)


def unregister_degradation_observer(
    observer: "Callable[[DegradationEvent], Any]",
) -> None:
    """Drop a subscription added by :func:`register_degradation_observer`."""
    _degradation_registry.unregister(observer)


def _emit_degradations(events: "list[DegradationEvent]") -> None:
    for event in events:
        _degradation_registry.emit(event)


class PlanExhaustedError(StorageError):
    """Every physical instance of the design failed for this query.

    Carries the full degradation trail so callers can report *why*
    the relation became unreadable.
    """

    def __init__(self, message: str, degradations: tuple[DegradationEvent, ...]):
        super().__init__(message)
        self.degradations = degradations


@dataclass
class QueryResult:
    """Materialized rows plus the (possibly degraded) plan that made them.

    ``time_to_first`` is the simulated seconds between starting the
    winning (final) plan and its first output tuple — the paper's
    time-to-first-result metric, ``None`` for an empty result.  Aborted
    plans earlier on the degradation ladder do not count against it.
    """

    rows: list[tuple]
    plan: ExecutablePlan
    degradations: tuple[DegradationEvent, ...] = ()
    time_to_first: float | None = None

    @property
    def degraded(self) -> bool:
        return bool(self.degradations)


def _design_without(
    design: PhysicalDesign, choice: CandidatePlan
) -> PhysicalDesign | None:
    """The design minus the instance ``choice`` ran on, or ``None``.

    Removing the failed instance and re-running the optimizer *is* the
    degradation ladder: the cost model ranks whatever survives, with
    FTS + external sort the universal last resort because it needs no
    index structure at all.
    """
    heap = design.heap
    iots = dict(design.iots)
    ub = design.ub
    if choice.method == "tetris":
        ub = None
    elif choice.method == "fts-sort":
        heap = None
    elif choice.method in ("iot-sort", "iot-presorted"):
        iots = {
            leading: table
            for leading, table in iots.items()
            if table.name != choice.instance
        }
    else:  # pragma: no cover - enumerate_plans only emits the above
        raise ValueError(f"unknown method {choice.method!r}")
    if heap is None and not iots and ub is None:
        return None
    return PhysicalDesign(
        attributes=design.attributes, heap=heap, iots=iots, ub=ub
    )


def execute_sorted_query(
    design: PhysicalDesign,
    restrictions: dict[str, ValueRange] | None,
    sort_attr: str,
    params: CostParameters,
    *,
    descending: bool = False,
    require_pipelined: bool = False,
    statistics: "TableStatistics | None" = None,
    max_degradations: int = 8,
) -> QueryResult:
    """Run a sort+restriction query, degrading across instances on failure.

    When the chosen operator hits a typed :class:`StorageError`
    (quarantined page, unhealable corruption, retry exhaustion), the
    partial output is discarded, the failed physical instance is removed
    from the design, and the optimizer re-plans against the survivors —
    down to FTS + external sort as the last resort.  The result carries
    a :class:`DegradationEvent` per abort, so the caller always gets
    either rows that are *correct for the full query* or a typed
    :class:`PlanExhaustedError` — never silently truncated output.

    ``require_pipelined`` is honoured only for the initial plan; a
    degraded query prefers a correct blocking plan over no plan.
    """
    events: list[DegradationEvent] = []
    pipelined = require_pipelined
    current: PhysicalDesign | None = design
    while True:
        if current is None:
            _emit_degradations(events)
            raise PlanExhaustedError(
                f"no physical instance of the design can serve the query "
                f"after {len(events)} failure(s): "
                + "; ".join(event.describe() for event in events),
                tuple(events),
            )
        if len(events) > max_degradations:
            _emit_degradations(events)
            raise PlanExhaustedError(
                f"gave up after {len(events)} degradations: "
                + "; ".join(event.describe() for event in events),
                tuple(events),
            )
        try:
            plan = plan_sorted_query(
                current,
                restrictions,
                sort_attr,
                params,
                descending=descending,
                require_pipelined=pipelined,
                statistics=statistics,
            )
        except ValueError as exc:
            # the optimizer found no candidate on the surviving instances
            # (e.g. only a pipelined plan was admissible and it is gone)
            if pipelined and not events:
                raise
            _emit_degradations(events)
            raise PlanExhaustedError(
                f"re-planning failed after {len(events)} degradation(s): {exc}",
                tuple(events),
            ) from exc
        if events and events[-1].fallback_method is None:
            events[-1] = replace(
                events[-1],
                fallback_method=plan.choice.method,
                fallback_instance=plan.choice.instance,
            )
        timer = FirstTupleTimer(plan.operator, current.shared_buffer().disk)
        try:
            rows = list(timer)
        except StorageError as exc:
            # before dropping the instance, try replica-driven repair of
            # every quarantined page: a healed instance stays eligible
            # and the optimizer re-ranks the *full* surviving design
            repaired = current.shared_buffer().repair_quarantined()
            events.append(
                DegradationEvent(
                    method=plan.choice.method,
                    instance=plan.choice.instance,
                    error_type=type(exc).__name__,
                    error=str(exc),
                    repaired_pages=tuple(repaired),
                )
            )
            if not repaired:
                current = _design_without(current, plan.choice)
            # degraded plans may block; correctness outranks pipelining
            pipelined = False
            continue
        _emit_degradations(events)
        return QueryResult(
            rows=rows,
            plan=plan,
            degradations=tuple(events),
            time_to_first=timer.time_to_first,
        )
