"""From chosen plan to running operators.

:mod:`repro.planner.optimizer` prices candidate access paths with the
Section 4 cost model; this module closes the loop: it derives the
model's inputs (page counts, normalized selectivities) from actual
table instances, asks the optimizer for the cheapest plan and builds
the corresponding operator tree — the full
"restriction + sort" query service the paper envisions for a DBMS
kernel with multidimensional indexes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from ..costmodel.model import CostParameters
from ..relational.operators import (
    ExternalMergeSort,
    FullTableScan,
    IOTScan,
    Operator,
    Select,
    TetrisOperator,
)
from ..relational.schema import Schema
from ..relational.table import HeapTable, IOTTable, UBTable
from .optimizer import CandidatePlan, RelationStats, choose_plan
from .statistics import TableStatistics

ValueRange = tuple[Any, Any]


@dataclass
class PhysicalDesign:
    """The physical instances available for one logical relation.

    All instances must share the same schema and contents.  ``attributes``
    lists the index-relevant attributes (the UB-Tree dimension order when
    a UB instance exists).
    """

    attributes: tuple[str, ...]
    heap: HeapTable | None = None
    iots: dict[str, IOTTable] = field(default_factory=dict)  #: leading attr -> table
    ub: UBTable | None = None

    def __post_init__(self) -> None:
        if self.heap is None and not self.iots and self.ub is None:
            raise ValueError("a physical design needs at least one instance")
        for leading, table in self.iots.items():
            if table.key_attrs[0] != leading:
                raise ValueError(
                    f"IOT registered under {leading!r} leads with "
                    f"{table.key_attrs[0]!r}"
                )
        if self.ub is not None and tuple(self.ub.dims) != self.attributes:
            raise ValueError("UB instance dimensions must match `attributes`")

    @property
    def schema(self) -> Schema:
        for table in self._instances():
            return table.schema
        raise AssertionError("unreachable: design has at least one instance")

    def _instances(self) -> Iterator[HeapTable | IOTTable | UBTable]:
        if self.heap is not None:
            yield self.heap
        yield from self.iots.values()
        if self.ub is not None:
            yield self.ub

    def relation_stats(self) -> RelationStats:
        """Model inputs derived from the actual instances."""
        if self.heap is not None:
            pages = self.heap.page_count
        else:
            pages = min(table.page_count for table in self._instances())
        ub_fill = self.ub.page_count / pages if self.ub is not None else 1.4
        return RelationStats(
            pages=pages,
            attributes=self.attributes,
            heap_instance=self.heap.name if self.heap is not None else None,
            iot_instances=tuple(
                (leading, table.name) for leading, table in self.iots.items()
            ),
            ub_instance=self.ub.name if self.ub is not None else None,
            ub_fill_factor=ub_fill,
        )

    def normalized_restrictions(
        self,
        restrictions: dict[str, ValueRange] | None,
        statistics: "TableStatistics | None" = None,
    ) -> dict[str, tuple[float, float]]:
        """Value-level ranges to the model's normalized ``(y, z)`` pairs.

        Without ``statistics`` the mapping assumes a uniform domain (the
        paper's Section 4 assumption); with gathered
        :class:`~repro.planner.statistics.TableStatistics` the range is
        mapped through the empirical CDF instead — UB-Tree regions split
        at data medians, so quantile positions are what the region-count
        model actually responds to.
        """
        result: dict[str, tuple[float, float]] = {}
        schema = self.schema
        for attr, (lo, hi) in (restrictions or {}).items():
            if statistics is not None and attr in statistics.histograms:
                result[attr] = statistics.normalized_range(attr, lo, hi)
                continue
            encoder = schema.attribute(attr).encoder
            domain = encoder.code_max + 1
            lo_code = encoder.encode(lo) if lo is not None else 0
            hi_code = encoder.encode(hi) if hi is not None else encoder.code_max
            result[attr] = (lo_code / domain, (hi_code + 1) / domain)
        return result


def _predicate(
    schema: Schema, restrictions: dict[str, ValueRange] | None
) -> "Callable[[tuple], bool] | None":
    """Residual tuple predicate re-checking every value-level range."""
    if not restrictions:
        return None
    checks = [
        (schema.position(attr), lo, hi)
        for attr, (lo, hi) in restrictions.items()
    ]

    def passes(row: tuple) -> bool:
        for position, lo, hi in checks:
            value = row[position]
            if lo is not None and value < lo:
                return False
            if hi is not None and value > hi:
                return False
        return True

    return passes


@dataclass
class ExecutablePlan:
    """The optimizer's pick, bound to a runnable operator tree."""

    choice: CandidatePlan
    operator: Operator


def plan_sorted_query(
    design: PhysicalDesign,
    restrictions: dict[str, ValueRange] | None,
    sort_attr: str,
    params: CostParameters,
    *,
    descending: bool = False,
    require_pipelined: bool = False,
    statistics: "TableStatistics | None" = None,
) -> ExecutablePlan:
    """Choose and build the cheapest plan for a sort+restriction query.

    Returns the costed choice plus an operator tree that streams the
    restricted relation in ``sort_attr`` order.  Pass gathered
    ``statistics`` to price restrictions by data quantiles instead of
    the uniform-domain assumption.
    """
    schema = design.schema
    stats = design.relation_stats()
    normalized = design.normalized_restrictions(restrictions, statistics)
    choice = choose_plan(
        stats, normalized, sort_attr, params, require_pipelined=require_pipelined
    )
    predicate = _predicate(schema, restrictions)
    sort_position = schema.position(sort_attr)
    sort_key = lambda row: row[sort_position]  # noqa: E731

    if choice.method == "tetris":
        if design.ub is None:
            raise RuntimeError(
                "optimizer chose 'tetris' for a design without a UB instance"
            )
        index_restrictions = {
            attr: bounds
            for attr, bounds in (restrictions or {}).items()
            if attr in design.ub.dims
        }
        operator: Operator = TetrisOperator(
            design.ub,
            index_restrictions or None,
            sort_attr,
            descending=descending,
            predicate=predicate,
        )
    elif choice.method == "fts-sort":
        if design.heap is None:
            raise RuntimeError(
                "optimizer chose 'fts-sort' for a design without a heap instance"
            )
        operator = ExternalMergeSort(
            FullTableScan(design.heap, predicate=predicate),
            key=sort_key,
            disk=design.heap.db.disk,
            memory_pages=params.memory_pages,
            page_capacity=design.heap.page_capacity,
            merge_degree=params.merge_degree,
            descending=descending,
        )
    elif choice.method in ("iot-sort", "iot-presorted"):
        leading = next(
            attr for attr, table in design.iots.items()
            if table.name == choice.instance
        )
        table = design.iots[leading]
        bounds = (restrictions or {}).get(leading, (None, None))
        scan = IOTScan(
            table, leading_lo=bounds[0], leading_hi=bounds[1], predicate=predicate
        )
        if choice.method == "iot-presorted" and not descending:
            operator = scan
        else:
            operator = ExternalMergeSort(
                scan,
                key=sort_key,
                disk=table.db.disk,
                memory_pages=params.memory_pages,
                page_capacity=table.page_capacity,
                merge_degree=params.merge_degree,
                descending=descending,
            )
    else:  # pragma: no cover - enumerate_plans only emits the above
        raise ValueError(f"unknown method {choice.method!r}")

    return ExecutablePlan(choice=choice, operator=operator)
