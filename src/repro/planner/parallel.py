"""Slab-parallel Tetris execution: partition the sweep, keep the order.

The Tetris curve places the sort attribute's bits most significantly
(:meth:`repro.core.zorder.ZSpace.tetris`), so Tetris addresses are
ordered first by the sort value: any partition of the sort dimension
into disjoint, contiguous value intervals — *sweep slabs* — partitions
the output stream into contiguous chunks.  Running one independent
Tetris sweep per slab and concatenating the per-slab streams in slab
order therefore reproduces the serial stream **bit for bit**:

* every tuple lands in exactly one slab (the intervals cover the query
  box's sort range and are disjoint);
* across slabs, every Tetris key in slab ``i`` is smaller than every key
  in slab ``i+1`` (the sort value majorizes the key);
* within a slab, the restricted sweep visits the slab's regions in the
  same relative order as the global sweep (region keys are static), and
  duplicates of one point live on one Z-region page, so even the
  arrival-order tiebreak is preserved.

Workers are plain ``fork``-started processes: each child inherits the
in-memory simulated database copy-on-write and runs an ordinary
:class:`~repro.core.tetris.TetrisScan` over its slab, with all engine
contracts (stream checking under ``REPRO_CHECKS``, fault injection,
quarantine, WAL state) intact because it is literally the same code on
the same data.  Where ``fork`` is unavailable the slabs run inline, so
results never depend on the platform.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Any, Iterator, Sequence

from ..core.query_space import QueryBox, QuerySpace, box_is_empty
from ..core.tetris import SortedTuple, TetrisScan
from ..relational.table import UBTable

__all__ = [
    "ParallelScanResult",
    "SweepSlab",
    "parallel_tetris_scan",
    "plan_slabs",
]


@dataclass(frozen=True)
class SweepSlab:
    """One contiguous sort-value interval of a partitioned sweep."""

    index: int
    lo: int  #: inclusive encoded lower bound on the sort attribute
    hi: int  #: inclusive encoded upper bound on the sort attribute

    @property
    def width(self) -> int:
        return self.hi - self.lo + 1


@dataclass
class ParallelScanResult:
    """The concatenated, order-exact stream of a slab-parallel sweep."""

    slabs: list[SweepSlab]
    per_slab_counts: list[int]
    rows: list[SortedTuple]
    workers: int  #: worker processes actually used (1 = ran inline)

    def __iter__(self) -> Iterator[SortedTuple]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)


def plan_slabs(
    space: QuerySpace, sort_dim: int, coord_max: Sequence[int], slabs: int
) -> list[SweepSlab]:
    """Split the query's sort-dimension range into ``slabs`` intervals.

    The intervals are disjoint, contiguous and cover the bounding box's
    sort range exactly; fewer than ``slabs`` come back when the range is
    narrower than the requested slab count.  An empty query yields no
    slabs.
    """
    if slabs < 1:
        raise ValueError("slab count must be >= 1")
    box = space.bounding_box()
    if box is None:
        lo, hi = 0, coord_max[sort_dim]
    else:
        if box_is_empty(box):
            return []
        lo, hi = box[0][sort_dim], box[1][sort_dim]
    span = hi - lo + 1
    count = min(slabs, span)
    width = -(-span // count)
    planned: list[SweepSlab] = []
    start = lo
    for index in range(count):
        end = min(start + width - 1, hi)
        planned.append(SweepSlab(index, start, end))
        if end >= hi:
            break
        start = end + 1
    return planned


def _slab_space(
    space: QuerySpace, slab: SweepSlab, sort_dim: int, coord_max: Sequence[int]
) -> QuerySpace:
    """The query space restricted to one slab's sort-value interval."""
    if isinstance(space, QueryBox):
        return space.restricted(sort_dim, slab.lo, slab.hi)
    return space.intersect(
        QueryBox.with_range(coord_max, sort_dim, slab.lo, slab.hi)
    )


#: fork-inherited context of the in-flight parallel scan; children read
#: it copy-on-write, the parent clears it once the pool is done
_WORKER_STATE: dict[str, Any] = {}


def _run_slab(index: int) -> list[SortedTuple]:
    """Execute one slab's Tetris sweep (in a worker or inline)."""
    table: UBTable = _WORKER_STATE["table"]
    spaces: list[QuerySpace] = _WORKER_STATE["spaces"]
    scan = TetrisScan(
        table.ubtree,
        spaces[index],
        _WORKER_STATE["sort_dims"],
        descending=_WORKER_STATE["descending"],
        strategy=_WORKER_STATE["strategy"],
    )
    return list(scan)


def parallel_tetris_scan(
    table: UBTable,
    space: "QuerySpace | dict[str, tuple[Any, Any]] | None",
    sort_attr: "str | Sequence[str]",
    *,
    workers: int = 2,
    slabs: int | None = None,
    descending: bool = False,
    strategy: str = "eager",
) -> ParallelScanResult:
    """Run a Tetris sweep as ``slabs`` independent slab sweeps.

    Parameters mirror :meth:`~repro.relational.table.UBTable.tetris_scan`
    plus the parallel knobs: ``workers`` processes execute ``slabs``
    sweep slabs (default: one per worker) and the per-slab streams are
    concatenated in slab order — ascending slabs for an ascending sort,
    descending slabs (each internally descending) otherwise.  The result
    is bit-identical to the serial scan's stream.

    Workers need the ``fork`` start method (copy-on-write inheritance of
    the in-memory simulated database); elsewhere, or with ``workers <=
    1``, the slabs run inline in slab order.
    """
    if workers < 1:
        raise ValueError("worker count must be >= 1")
    if space is None or isinstance(space, dict):
        space = table.build_query_box(space)
    sort_names = (sort_attr,) if isinstance(sort_attr, str) else tuple(sort_attr)
    if not sort_names:
        raise ValueError("at least one sort attribute required")
    sort_dims = tuple(table.dims.index(attr) for attr in sort_names)
    primary = sort_dims[0]
    coord_max = table.space.coord_max

    planned = plan_slabs(space, primary, coord_max, slabs or workers)
    if descending:
        planned = [
            SweepSlab(position, slab.lo, slab.hi)
            for position, slab in enumerate(reversed(planned))
        ]
    if not planned:
        return ParallelScanResult([], [], [], workers=1)
    spaces = [_slab_space(space, slab, primary, coord_max) for slab in planned]

    use_pool = (
        workers > 1
        and len(planned) > 1
        and "fork" in multiprocessing.get_all_start_methods()
    )
    _WORKER_STATE.update(
        table=table,
        spaces=spaces,
        sort_dims=sort_dims,
        descending=descending,
        strategy=strategy,
    )
    try:
        if use_pool:
            pool_size = min(workers, len(planned))
            context = multiprocessing.get_context("fork")
            with context.Pool(pool_size) as pool:
                per_slab = pool.map(_run_slab, range(len(planned)))
        else:
            pool_size = 1
            per_slab = [_run_slab(index) for index in range(len(planned))]
    finally:
        _WORKER_STATE.clear()

    rows: list[SortedTuple] = []
    for chunk in per_slab:
        rows.extend(chunk)
    return ParallelScanResult(
        slabs=planned,
        per_slab_counts=[len(chunk) for chunk in per_slab],
        rows=rows,
        workers=pool_size,
    )
