"""Slab-parallel Tetris execution: partition the sweep, keep the order.

The Tetris curve places the sort attribute's bits most significantly
(:meth:`repro.core.zorder.ZSpace.tetris`), so Tetris addresses are
ordered first by the sort value: any partition of the sort dimension
into disjoint, contiguous value intervals — *sweep slabs* — partitions
the output stream into contiguous chunks.  Running one independent
Tetris sweep per slab and concatenating the per-slab streams in slab
order therefore reproduces the serial stream **bit for bit**:

* every tuple lands in exactly one slab (the intervals cover the query
  box's sort range and are disjoint);
* across slabs, every Tetris key in slab ``i`` is smaller than every key
  in slab ``i+1`` (the sort value majorizes the key);
* within a slab, the restricted sweep visits the slab's regions in the
  same relative order as the global sweep (region keys are static), and
  duplicates of one point live on one Z-region page, so even the
  arrival-order tiebreak is preserved.

Executors
---------
Three ways to run the slabs, selected by :func:`select_executor` (policy
``auto``, overridable via the ``REPRO_PARALLEL_EXECUTOR`` environment
variable or the ``executor=`` argument):

``threads``
    One ``ThreadPoolExecutor`` task per slab, *whole-slab batched*: the
    coordinator stages a slab's pages under a lock (the buffer pool is
    not thread-safe), then the worker runs one
    :func:`repro.kernels.scan_block` call over the entire slab.  The
    NumPy backend's big-array kernels release the GIL, so slabs overlap
    on real cores with zero serialization and zero data copies.  The
    default for the ``numpy`` backend.

``fork``
    One ``fork``-started process per slab batch; children inherit the
    in-memory simulated database copy-on-write and run an ordinary
    :class:`~repro.core.tetris.TetrisScan`, with all engine contracts
    (stream checking, fault injection, quarantine, WAL state) intact.
    Pages are **never pickled**: they arrive by COW inheritance, and
    with the NumPy backend the coordinator pre-stages the columnar page
    cache in ``multiprocessing.shared_memory``
    (:mod:`repro.kernels.shm`), so children attach read-only views
    instead of rebuilding arrays.  The default for the ``python``
    backend.

``inline``
    The slabs run sequentially in the caller (still whole-slab batched).
    Selected by ``auto`` for ``workers <= 1`` and as the fallback when a
    requested parallel executor cannot run (``fork`` unavailable, fewer
    than two workers, a single planned slab) — every downgrade is
    recorded as a structured :class:`ExecutorFallbackEvent` on the
    result and pushed to :func:`register_fallback_observer` subscribers,
    mirroring the plan-degradation events of
    :mod:`repro.planner.executor`; nothing falls back silently.

Whichever executor runs, the concatenated stream is bit-identical; only
wall-clock time and observability differ.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

from .. import invariants, kernels
from ..core.query_space import QueryBox, QuerySpace, box_is_empty
from ..core.tetris import SortedTuple, TetrisScan
from ..invariants.sanitizer import fork_safe, tracked_lock
from ..kernels import shm
from ..relational.table import UBTable
from ..telemetry import ObserverRegistry, TelemetryEvent

__all__ = [
    "EXECUTOR_ENV_VAR",
    "ExecutorFallbackEvent",
    "ParallelScanResult",
    "SweepSlab",
    "aligned_shard_slabs",
    "parallel_tetris_scan",
    "plan_slabs",
    "register_fallback_observer",
    "select_executor",
    "unregister_fallback_observer",
]

#: environment override for the executor policy ("auto", "threads",
#: "fork", "inline"); an explicit ``executor=`` argument wins over it
EXECUTOR_ENV_VAR = "REPRO_PARALLEL_EXECUTOR"

_EXECUTORS = ("auto", "threads", "fork", "inline")

#: "all of them" for region projections (LookaheadCursor.peek is lazy
#: and stops at exhaustion, so an over-ask costs nothing)
_ALL_REGIONS = 1 << 30


@dataclass(frozen=True)
class SweepSlab:
    """One contiguous sort-value interval of a partitioned sweep."""

    index: int
    lo: int  #: inclusive encoded lower bound on the sort attribute
    hi: int  #: inclusive encoded upper bound on the sort attribute

    @property
    def width(self) -> int:
        return self.hi - self.lo + 1


@dataclass(frozen=True)
class ExecutorFallbackEvent(TelemetryEvent):
    """One executor-selection downgrade, reported to the caller.

    Mirrors :class:`repro.planner.executor.DegradationEvent` (both
    extend :class:`repro.telemetry.TelemetryEvent`): a structured
    record that a requested execution mode was not honoured, observable
    on the :class:`ParallelScanResult` and through
    :func:`register_fallback_observer` — never a silent downgrade.
    """

    requested: str  #: executor asked for ("fork", "auto", ...)
    selected: str  #: executor actually used
    reason: str  #: why the requested one was not honoured
    backend: str  #: kernel backend name at selection time
    workers: int  #: workers requested

    def describe(self) -> str:
        return (
            f"parallel scan requested the {self.requested!r} executor but "
            f"ran {self.selected!r} ({self.reason}; backend "
            f"{self.backend!r}, {self.workers} workers)"
        )


_fallback_registry: ObserverRegistry[ExecutorFallbackEvent] = ObserverRegistry()


def register_fallback_observer(
    observer: Callable[[ExecutorFallbackEvent], Any],
) -> None:
    """Subscribe to executor fallback events (serving-layer telemetry)."""
    _fallback_registry.register(observer)


def unregister_fallback_observer(
    observer: Callable[[ExecutorFallbackEvent], Any],
) -> None:
    """Drop a subscription added by :func:`register_fallback_observer`."""
    _fallback_registry.unregister(observer)


def _emit_fallback(event: ExecutorFallbackEvent) -> None:
    _fallback_registry.emit(event)


def select_executor(
    requested: str, backend_name: str, workers: int
) -> "tuple[str, ExecutorFallbackEvent | None]":
    """Resolve the executor policy to a concrete executor.

    ``auto`` picks ``threads`` for the NumPy backend (vectorized kernels
    release the GIL) and ``fork`` for the pure backend (true parallelism
    needs processes there).  A request that cannot be honoured —
    ``fork`` on a platform without the fork start method, or an explicit
    ``threads``/``fork`` request with fewer than two workers — degrades
    to ``inline`` and returns the :class:`ExecutorFallbackEvent`
    describing the downgrade.  ``auto`` with ``workers <= 1`` selects
    ``inline`` silently (that is the policy deciding, not a fallback;
    explicit requests are never downgraded silently).
    """
    if requested not in _EXECUTORS:
        raise ValueError(
            f"unknown executor {requested!r}; expected one of "
            f"{', '.join(_EXECUTORS)}"
        )
    if requested == "inline" or (requested == "auto" and workers <= 1):
        return "inline", None
    if workers <= 1:
        return "inline", ExecutorFallbackEvent(
            requested=requested,
            selected="inline",
            reason="parallel execution needs at least 2 workers",
            backend=backend_name,
            workers=workers,
        )
    if requested == "threads":
        return "threads", None
    fork_available = "fork" in multiprocessing.get_all_start_methods()
    if requested == "fork":
        if fork_available:
            return "fork", None
        return "inline", ExecutorFallbackEvent(
            requested="fork",
            selected="inline",
            reason="the fork start method is unavailable on this platform",
            backend=backend_name,
            workers=workers,
        )
    # auto
    if backend_name == "numpy":
        return "threads", None
    if fork_available:
        return "fork", None
    return "inline", ExecutorFallbackEvent(
        requested="auto",
        selected="inline",
        reason=(
            "the pure backend parallelizes via fork, and the fork start "
            "method is unavailable on this platform"
        ),
        backend=backend_name,
        workers=workers,
    )


@dataclass
class ParallelScanResult:
    """The concatenated, order-exact stream of a slab-parallel sweep."""

    slabs: list[SweepSlab]
    per_slab_counts: list[int]
    rows: list[SortedTuple]
    workers: int  #: workers actually used (1 = ran inline)
    executor: str = "inline"  #: executor that ran ("threads"/"fork"/"inline")
    fallbacks: tuple[ExecutorFallbackEvent, ...] = ()
    #: pickled bytes shipped per slab on the process transport; zero for
    #: the zero-copy executors, ``None`` when not measured
    serialized_bytes_per_slab: "list[int] | None" = None

    def __iter__(self) -> Iterator[SortedTuple]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)


def plan_slabs(
    space: QuerySpace, sort_dim: int, coord_max: Sequence[int], slabs: int
) -> list[SweepSlab]:
    """Split the query's sort-dimension range into ``slabs`` intervals.

    The intervals are disjoint, contiguous and cover the bounding box's
    sort range exactly; fewer than ``slabs`` come back when the range is
    narrower than the requested slab count.  An empty query yields no
    slabs.
    """
    if slabs < 1:
        raise ValueError("slab count must be >= 1")
    box = space.bounding_box()
    if box is None:
        lo, hi = 0, coord_max[sort_dim]
    else:
        if box_is_empty(box):
            return []
        lo, hi = box[0][sort_dim], box[1][sort_dim]
    span = hi - lo + 1
    count = min(slabs, span)
    width = -(-span // count)
    planned: list[SweepSlab] = []
    start = lo
    for index in range(count):
        end = min(start + width - 1, hi)
        planned.append(SweepSlab(index, start, end))
        if end >= hi:
            break
        start = end + 1
    return planned


def aligned_shard_slabs(
    left: Sequence[SweepSlab], right: Sequence[SweepSlab]
) -> tuple[SweepSlab, ...]:
    """Validate two shard partitionings are join-key aligned; return them.

    A co-partitioned merge join is only order- and group-preserving when
    both relations are range-sharded on *identical* encoded join-key
    intervals — then every equal-key group lives in exactly one shard
    pair and per-shard joins concatenate into the serial join.  The two
    sides' slab lists must therefore match interval-for-interval (which
    :func:`plan_slabs` guarantees when both sides share the join key's
    encoder domain and shard count).  Raises :class:`ValueError` on any
    mismatch.
    """
    if len(left) != len(right):
        raise ValueError(
            f"shard counts differ: {len(left)} vs {len(right)} — the "
            "join sides are not co-partitioned"
        )
    for slab_a, slab_b in zip(left, right):
        if (slab_a.lo, slab_a.hi) != (slab_b.lo, slab_b.hi):
            raise ValueError(
                f"shard {slab_a.index} key ranges differ: "
                f"[{slab_a.lo}, {slab_a.hi}] vs [{slab_b.lo}, {slab_b.hi}]"
                " — the join sides are not co-partitioned"
            )
    return tuple(left)


def _slab_space(
    space: QuerySpace, slab: SweepSlab, sort_dim: int, coord_max: Sequence[int]
) -> QuerySpace:
    """The query space restricted to one slab's sort-value interval."""
    if isinstance(space, QueryBox):
        return space.restricted(sort_dim, slab.lo, slab.hi)
    return space.intersect(
        QueryBox.with_range(coord_max, sort_dim, slab.lo, slab.hi)
    )


# ----------------------------------------------------------------------
# whole-slab batched execution (threads / inline)
# ----------------------------------------------------------------------
def _stage_slab(
    table: UBTable,
    space: QuerySpace,
    sort_dims: "tuple[int, ...]",
    descending: bool,
    strategy: str,
) -> "tuple[TetrisScan, list[Any]]":
    """Fetch one slab's pages in retrieval order (coordinator-only).

    Must run under the staging lock: the buffer pool, the region
    cursor and the backend's column memoization are not thread-safe.
    The returned pages are plain references — eviction cannot
    invalidate them — so the compute phase needs no locking at all.
    """
    scan = TetrisScan(
        table.ubtree,
        space,
        sort_dims,
        descending=descending,
        strategy=strategy,
    )
    regions = scan.upcoming_regions(_ALL_REGIONS)
    buffer = table.ubtree.tree.buffer
    category = table.ubtree.category
    pages = [buffer.get(region.page_id, category=category) for region in regions]
    backend = kernels.get_backend()
    # the NumPy backend's column conversion is GIL-bound anyway, so
    # priming it here costs no parallelism and keeps the compute phase
    # free of cache writes
    prime = getattr(backend, "prime_page_columns", None)
    if prime is not None:
        for page in pages:
            prime(page)
    return scan, pages


def _scan_block_rows(scan: TetrisScan, pages: "list[Any]") -> list[SortedTuple]:
    """One slab's stream from one whole-slab kernel call.

    ``scan_block`` returns the sort permutation over the concatenated
    qualifying arrivals; gathering the arrival-ordered ``(point,
    payload)`` pairs through it reproduces the page-at-a-time sweep's
    stream bit for bit (keys ascend, arrival order breaks ties — the
    same total order the serial run buffer emits).
    """
    kernel = kernels.get_backend()
    selected_per_page, emit_order = kernel.scan_block(
        scan.tetris_curve, scan.space, pages
    )
    arrivals: list[SortedTuple] = []
    for page, selected in zip(pages, selected_per_page):
        records = page.records
        arrivals.extend(records[index][1] for index in selected)
    rows = [arrivals[index] for index in emit_order]
    if invariants.enabled():
        checker = invariants.StreamChecker(
            scan.sort_dims, scan.descending, scan.space
        )
        for point, _payload in rows:
            checker.observe(point)
    return rows


def _run_batched(
    table: UBTable,
    spaces: "list[QuerySpace]",
    sort_dims: "tuple[int, ...]",
    descending: bool,
    strategy: str,
    pool_size: int,
) -> "list[list[SortedTuple]]":
    """Threaded (or inline, ``pool_size == 1``) whole-slab execution."""
    staging_lock = tracked_lock("executor-staging")

    def run_one(index: int) -> list[SortedTuple]:
        with staging_lock:
            scan, pages = _stage_slab(
                table, spaces[index], sort_dims, descending, strategy
            )
        return _scan_block_rows(scan, pages)

    if pool_size <= 1:
        return [run_one(index) for index in range(len(spaces))]
    with ThreadPoolExecutor(max_workers=pool_size) as executor:
        return list(executor.map(run_one, range(len(spaces))))


# ----------------------------------------------------------------------
# fork execution: COW inheritance + shared-memory columns
# ----------------------------------------------------------------------
#: fork-inherited context of the in-flight parallel scan; children read
#: it copy-on-write, the parent clears it once the pool is done
_WORKER_STATE: dict[str, Any] = {}


@fork_safe
def _run_slab(index: int) -> list[SortedTuple]:
    """Execute one slab's Tetris sweep (in a worker or inline).

    ``@fork_safe`` marks this as the sanctioned process-pool payload:
    it is a module-level function (pickled by reference) whose inputs
    arrive via fork-inherited ``_WORKER_STATE``, never by value
    (reprolint R013 rejects anything else at the ``pool.map`` site).
    """
    table: UBTable = _WORKER_STATE["table"]
    spaces: list[QuerySpace] = _WORKER_STATE["spaces"]
    scan = TetrisScan(
        table.ubtree,
        spaces[index],
        _WORKER_STATE["sort_dims"],
        descending=_WORKER_STATE["descending"],
        strategy=_WORKER_STATE["strategy"],
    )
    return list(scan)


def _stage_shared_columns(
    table: UBTable,
    spaces: "list[QuerySpace]",
    sort_dims: "tuple[int, ...]",
    descending: bool,
    strategy: str,
) -> None:
    """Pre-publish every slab page's columns into the active shm store.

    Fork children then attach read-only views through
    ``SharedColumnStore.get`` instead of each rebuilding the arrays from
    the COW'd Python records — the conversion runs once, in the parent.
    """
    for space in spaces:
        _stage_slab(table, space, sort_dims, descending, strategy)


def _run_forked(
    table: UBTable,
    spaces: "list[QuerySpace]",
    sort_dims: "tuple[int, ...]",
    descending: bool,
    strategy: str,
    pool_size: int,
    measure_serialization: bool,
) -> "tuple[list[list[SortedTuple]], list[int] | None, tuple[ExecutorFallbackEvent, ...]]":
    """Fork-pool execution; pages travel COW + shm, never pickled.

    The NumPy backend normally pre-stages columns in shared memory.
    When that staging cannot be set up — NumPy unavailable to the shm
    module, or the store's segment allocation/activation fails — the
    scan still runs (children rebuild columns from the COW'd records)
    but the downgrade is returned as a structured
    :class:`ExecutorFallbackEvent`, never applied silently.
    """
    _WORKER_STATE.update(
        table=table,
        spaces=spaces,
        sort_dims=sort_dims,
        descending=descending,
        strategy=strategy,
    )
    backend = kernels.get_backend()
    events: "list[ExecutorFallbackEvent]" = []
    store: "shm.SharedColumnStore | None" = None
    if backend.name == "numpy" and shm.active_store() is None:
        if shm.np is None:
            events.append(
                ExecutorFallbackEvent(
                    requested="fork+shm",
                    selected="fork",
                    reason=(
                        "NumPy is unavailable to the shared-memory column "
                        "store; workers rebuild columns from COW pages"
                    ),
                    backend=backend.name,
                    workers=pool_size,
                )
            )
        else:
            try:
                store = shm.SharedColumnStore(label=getattr(table, "name", ""))
                shm.activate(store)
            except (RuntimeError, OSError) as error:
                if store is not None:
                    store.close()
                store = None
                events.append(
                    ExecutorFallbackEvent(
                        requested="fork+shm",
                        selected="fork",
                        reason=(
                            f"shared-memory column staging failed ({error}); "
                            "workers rebuild columns from COW pages"
                        ),
                        backend=backend.name,
                        workers=pool_size,
                    )
                )
    try:
        if store is not None:
            _stage_shared_columns(table, spaces, sort_dims, descending, strategy)
        per_slab = _fork_map(pool_size, len(spaces))
    finally:
        _WORKER_STATE.clear()
        if store is not None:
            shm.deactivate()
            store.close()
    serialized: "list[int] | None" = None
    if measure_serialization:
        # what the process transport actually ships per slab: the result
        # rows (pages are inherited COW and columns attach via shm, so
        # no page bytes appear here)
        serialized = [len(pickle.dumps(chunk)) for chunk in per_slab]
    return per_slab, serialized, tuple(events)


def _fork_map(pool_size: int, slab_count: int) -> "list[list[SortedTuple]]":
    context = multiprocessing.get_context("fork")
    with context.Pool(pool_size) as pool:
        return pool.map(_run_slab, range(slab_count))


# ----------------------------------------------------------------------
# the entry point
# ----------------------------------------------------------------------
def parallel_tetris_scan(
    table: UBTable,
    space: "QuerySpace | dict[str, tuple[Any, Any]] | None",
    sort_attr: "str | Sequence[str]",
    *,
    workers: int = 2,
    slabs: int | None = None,
    descending: bool = False,
    strategy: str = "eager",
    executor: str | None = None,
    measure_serialization: bool = False,
) -> ParallelScanResult:
    """Run a Tetris sweep as ``slabs`` independent slab sweeps.

    Parameters mirror :meth:`~repro.relational.table.UBTable.tetris_scan`
    plus the parallel knobs: ``workers`` workers execute ``slabs`` sweep
    slabs (default: one per worker) and the per-slab streams are
    concatenated in slab order — ascending slabs for an ascending sort,
    descending slabs (each internally descending) otherwise.  The result
    is bit-identical to the serial scan's stream on every executor.

    ``executor`` picks the execution mode (``"auto"``, ``"threads"``,
    ``"fork"``, ``"inline"``); ``None`` reads ``REPRO_PARALLEL_EXECUTOR``
    and defaults to ``auto`` — see :func:`select_executor`.  Downgrades
    are recorded as :class:`ExecutorFallbackEvent`\\ s on the result.
    ``measure_serialization`` additionally reports the pickled bytes the
    process transport ships per slab (always zero for the zero-copy
    thread/inline executors).
    """
    if workers < 1:
        raise ValueError("worker count must be >= 1")
    if space is None or isinstance(space, dict):
        space = table.build_query_box(space)
    sort_names = (sort_attr,) if isinstance(sort_attr, str) else tuple(sort_attr)
    if not sort_names:
        raise ValueError("at least one sort attribute required")
    sort_dims = tuple(table.dims.index(attr) for attr in sort_names)
    primary = sort_dims[0]
    coord_max = table.space.coord_max

    requested = executor or os.environ.get(EXECUTOR_ENV_VAR) or "auto"
    backend_name = kernels.get_backend().name
    selected, fallback = select_executor(requested, backend_name, workers)
    fallbacks: "tuple[ExecutorFallbackEvent, ...]" = ()
    if fallback is not None:
        fallbacks = (fallback,)
        _emit_fallback(fallback)

    planned = plan_slabs(space, primary, coord_max, slabs or workers)
    if descending:
        planned = [
            SweepSlab(position, slab.lo, slab.hi)
            for position, slab in enumerate(reversed(planned))
        ]
    if not planned:
        return ParallelScanResult(
            [], [], [], workers=1, executor="inline", fallbacks=fallbacks
        )
    spaces = [_slab_space(space, slab, primary, coord_max) for slab in planned]
    if selected != "inline" and len(planned) == 1:
        # one slab cannot overlap with anything; an explicitly requested
        # parallel executor reports the downgrade, auto decides silently
        if requested in ("threads", "fork"):
            event = ExecutorFallbackEvent(
                requested=requested,
                selected="inline",
                reason="the query planned a single sweep slab",
                backend=backend_name,
                workers=workers,
            )
            fallbacks = fallbacks + (event,)
            _emit_fallback(event)
        selected = "inline"

    serialized: "list[int] | None" = None
    if selected == "fork":
        pool_size = min(workers, len(planned))
        per_slab, serialized, fork_events = _run_forked(
            table,
            spaces,
            sort_dims,
            descending,
            strategy,
            pool_size,
            measure_serialization,
        )
        for event in fork_events:
            _emit_fallback(event)
        fallbacks = fallbacks + fork_events
    else:
        pool_size = min(workers, len(planned)) if selected == "threads" else 1
        per_slab = _run_batched(
            table, spaces, sort_dims, descending, strategy, pool_size
        )
        if measure_serialization:
            serialized = [0] * len(per_slab)  # zero-copy transports

    rows: list[SortedTuple] = []
    for chunk in per_slab:
        rows.extend(chunk)
    return ParallelScanResult(
        slabs=planned,
        per_slab_counts=[len(chunk) for chunk in per_slab],
        rows=rows,
        workers=pool_size,
        executor=selected,
        fallbacks=fallbacks,
        serialized_bytes_per_slab=serialized,
    )
