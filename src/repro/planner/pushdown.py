"""Box-cover restriction pushdown: one join input restricts the other.

The Tetris paper gives each *single* relation the touch-once guarantee:
a sweep reads only the Z-region pages overlapping its own query space.
Our Q3/Q4 plans, however, feed the join from two independent sweeps, so
the LINEITEM side still reads every page passing its *local* predicate
even when the ORDERS-side date restriction already rules out almost all
join keys.  "Box Covers and Domain Orderings for Beyond Worst-Case Join
Processing" (PAPERS.md) shows the fix: evaluate the restricted smaller
side first, condense its qualifying join keys into a *cover* of key
intervals, and push that cover into the other side's query space, so
the join inherits the touch-once guarantee across both relations.

This module is the only sanctioned constructor of that cover (reprolint
R016): operators and plans call :func:`pushdown_space` /
:func:`build_key_cover` and receive an
:class:`~repro.core.query_space.IntervalUnionSpace` plus its
:class:`KeyCover` metadata; nothing else in the engine materializes
key-set geometry ad hoc.

Cover construction
------------------
The qualifying keys are sorted, de-duplicated and coalesced into their
natural runs of consecutive values.  When the run count exceeds the
planner's ``budget``, the ``budget - 1`` *largest* gaps between runs
are kept as separators and every smaller gap is absorbed — the cover
stays a superset of the key set (pushdown must never drop a real join
match; absorbed gaps only make it less selective).  ``budget=1``
degenerates to the convex hull ``[min, max]``, the documented fallback
when keys are scattered (an uncorrelated key/date instance: see
docs/JOINS.md).  Under a *domain ordering* that correlates the join
key with the restricted attribute, the same construction collapses to
a handful of intervals and whole Z-regions of the probe side fall out
of the sweep (counted by ``TetrisStats.pages_skipped_by_pushdown``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable

from ..core.query_space import IntervalUnionSpace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..relational.table import UBTable

__all__ = [
    "DEFAULT_COVER_BUDGET",
    "KeyCover",
    "build_key_cover",
    "pushdown_space",
]

#: default interval budget: small enough that the eager heap's per-region
#: pushdown test stays O(log budget), large enough that realistic
#: correlated instances never hit the hull fallback
DEFAULT_COVER_BUDGET = 64


@dataclass(frozen=True)
class KeyCover:
    """A bounded interval cover of a qualifying join-key set."""

    intervals: tuple[tuple[int, int], ...]  #: sorted disjoint encoded runs
    key_count: int  #: distinct qualifying keys covered
    natural_runs: int  #: consecutive-value runs before budgeting
    budget: int  #: planner-chosen maximum interval count

    @property
    def is_hull(self) -> bool:
        """True when budgeting collapsed the cover to one interval."""
        return len(self.intervals) == 1 and self.natural_runs > 1

    @property
    def covered_values(self) -> int:
        """Total width of the cover (>= key_count; slack = false keys)."""
        return sum(hi - lo + 1 for lo, hi in self.intervals)


def build_key_cover(keys: Iterable[int], budget: int) -> KeyCover:
    """Condense encoded key values into at most ``budget`` intervals.

    The cover is always a superset of ``keys``: coalescing keeps every
    key inside some interval, and budgeting only merges intervals
    (absorbing the gaps between them).  Separator selection is
    deterministic — the ``budget - 1`` largest gaps win, earliest gap
    first on ties — so the same key set always produces the same cover.
    """
    if budget < 1:
        raise ValueError("cover budget must be >= 1")
    distinct = sorted(set(int(key) for key in keys))
    runs: list[tuple[int, int]] = []
    for key in distinct:
        if runs and key == runs[-1][1] + 1:
            runs[-1] = (runs[-1][0], key)
        else:
            runs.append((key, key))
    natural_runs = len(runs)
    if len(runs) > budget:
        # keep the budget-1 widest gaps as separators, absorb the rest
        gaps = sorted(
            range(len(runs) - 1),
            key=lambda index: (-(runs[index + 1][0] - runs[index][1]), index),
        )
        separators = sorted(gaps[: budget - 1])
        merged: list[tuple[int, int]] = []
        start = 0
        for separator in separators + [len(runs) - 1]:
            merged.append((runs[start][0], runs[separator][1]))
            start = separator + 1
        runs = merged
    return KeyCover(
        intervals=tuple(runs),
        key_count=len(distinct),
        natural_runs=natural_runs,
        budget=budget,
    )


def pushdown_space(
    table: "UBTable",
    attr: str,
    keys: Iterable[Any],
    *,
    budget: int = DEFAULT_COVER_BUDGET,
) -> tuple[IntervalUnionSpace, KeyCover]:
    """The pushdown restriction on ``table.attr`` covering ``keys``.

    ``keys`` are attribute *values* from the already-evaluated join
    side (e.g. the o_orderkey column of the date-restricted ORDERS
    stream); they are encoded with the target attribute's own encoder,
    covered within ``budget`` intervals, and returned as an exact
    :class:`~repro.core.query_space.IntervalUnionSpace` ready to be
    passed as ``pushdown=`` to a Tetris scan, together with the cover
    metadata the planner and benches report.

    An empty key set produces an empty space — the sweep then reads
    nothing, which is the correct join result.
    """
    if attr not in table.dims:
        raise ValueError(f"pushdown attribute {attr!r} is not an index dimension")
    encoder = table.schema.attribute(attr).encoder
    cover = build_key_cover((encoder.encode(key) for key in keys), budget)
    space = IntervalUnionSpace(
        table.space.coord_max, table.dims.index(attr), cover.intervals
    )
    return space, cover
