"""Cost-based access-path selection for sort+restriction queries.

Section 6 names "a methodology for query optimization with
multidimensional indexes" as future work; this module implements the
obvious first instance: given the available physical instances of a
relation, a set of range restrictions and a requested sort order, price
every candidate access path with the Section 4 cost model and pick the
cheapest.

The candidates are exactly the paper's contenders:

* full table scan + external merge sort,
* an IOT whose leading key matches a restricted attribute (+ sort),
* an IOT whose leading key matches the sort attribute (presorted),
* the Tetris algorithm on a UB-Tree instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..costmodel.model import (
    CostParameters,
    c_fts_sort,
    c_iot,
    c_iot_sort,
    c_tetris,
)

Range = tuple[float, float]


@dataclass(frozen=True)
class CandidatePlan:
    """One priced access path."""

    method: str  #: "fts-sort", "iot-sort", "iot-presorted", "tetris"
    instance: str  #: name of the physical instance used
    cost: float  #: estimated response time in seconds
    blocking: bool  #: True when no row is produced before the sort finishes

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        kind = "blocking" if self.blocking else "pipelined"
        return f"{self.method}({self.instance}): {self.cost:.2f}s [{kind}]"


@dataclass(frozen=True)
class RelationStats:
    """What the optimizer knows about one relation's physical design.

    ``pages`` is the heap page count; ``attributes`` the index-relevant
    attribute names in UB-dimension order; ``restrictions`` are
    normalized ``(y, z)`` ranges per attribute (``(0, 1)`` = unrestricted).
    """

    pages: int
    attributes: tuple[str, ...]
    heap_instance: str | None = None
    iot_instances: tuple[tuple[str, str], ...] = ()  #: (leading attr, name)
    ub_instance: str | None = None
    ub_fill_factor: float = 1.4  #: UB pages per heap page (B-tree fill)


def normalized_ranges(
    stats: RelationStats, restrictions: dict[str, Range] | None
) -> list[Range]:
    """Per-attribute normalized ranges in dimension order."""
    restrictions = restrictions or {}
    unknown = set(restrictions) - set(stats.attributes)
    if unknown:
        raise KeyError(f"restrictions on unknown attributes: {sorted(unknown)}")
    return [restrictions.get(attr, (0.0, 1.0)) for attr in stats.attributes]


def enumerate_plans(
    stats: RelationStats,
    restrictions: dict[str, Range] | None,
    sort_attr: str,
    params: CostParameters,
) -> list[CandidatePlan]:
    """All priced candidate plans, cheapest first."""
    if sort_attr not in stats.attributes:
        raise KeyError(f"unknown sort attribute {sort_attr!r}")
    ranges = normalized_ranges(stats, restrictions)
    selectivities = [hi - lo for lo, hi in ranges]
    plans: list[CandidatePlan] = []

    if stats.heap_instance is not None:
        plans.append(
            CandidatePlan(
                "fts-sort",
                stats.heap_instance,
                c_fts_sort(stats.pages, selectivities, params),
                blocking=True,
            )
        )

    for leading, name in stats.iot_instances:
        position = stats.attributes.index(leading)
        leading_selectivity = selectivities[position]
        if leading == sort_attr:
            # presorted: restriction on the leading attr also usable
            plans.append(
                CandidatePlan(
                    "iot-presorted",
                    name,
                    c_iot(stats.pages, leading_selectivity, params),
                    blocking=False,
                )
            )
        else:
            # retrieval restricted on the leading attribute, then sort;
            # other restrictions only shrink the sort input
            retained = [
                s for pos, s in enumerate(selectivities) if pos != position
            ]
            plans.append(
                CandidatePlan(
                    "iot-sort",
                    name,
                    c_iot_sort(
                        stats.pages,
                        [leading_selectivity, *retained],
                        params,
                    ),
                    blocking=True,
                )
            )

    if stats.ub_instance is not None:
        ub_pages = round(stats.pages * stats.ub_fill_factor)
        plans.append(
            CandidatePlan(
                "tetris",
                stats.ub_instance,
                c_tetris(ub_pages, ranges, params),
                blocking=False,
            )
        )

    plans.sort(key=lambda plan: plan.cost)
    return plans


def choose_plan(
    stats: RelationStats,
    restrictions: dict[str, Range] | None,
    sort_attr: str,
    params: CostParameters,
    *,
    require_pipelined: bool = False,
) -> CandidatePlan:
    """The cheapest plan; optionally only non-blocking (pipelined) ones.

    ``require_pipelined`` models an interactive consumer that needs early
    rows — the scenario of Section 4.4 where the Tetris algorithm's
    non-blocking behaviour is worth paying for.
    """
    plans = enumerate_plans(stats, restrictions, sort_attr, params)
    if require_pipelined:
        pipelined = [plan for plan in plans if not plan.blocking]
        if pipelined:
            return pipelined[0]
    if not plans:
        raise ValueError("no physical instance available")
    return plans[0]
