"""A disk-page-based B+-tree (the paper's B*-Tree substrate).

The UB-Tree is "easily implemented above any RDBMS by utilizing the
B*-Tree of this RDBMS" (Section 1): its Z-regions are simply the leaves
of a B+-tree keyed by Z-address, with the inner-node separators acting as
region boundaries.  The same tree, keyed by a composite attribute tuple,
is the paper's IOT baseline (index-organized table).

Storage model
-------------
* Leaves are record pages on the simulated disk; they carry ``(key,
  value)`` pairs sorted by key and a ``next`` pointer for range scans.
* Inner nodes live on payload pages.  Following the paper ("almost all
  levels of a B*-Tree are cached during the normal operation of a DBMS"),
  inner-node reads are *recorded but not priced* (``charge=False``).
* Leaf reads are priced as **random** accesses: a real index scan follows
  logical leaf order, which matches physical order only by accident, and
  the paper's cost model charges ``t_pi + t_tau`` per IOT page.

Duplicate keys are supported, but a page split never separates equal
keys; a page whose records all share one key may therefore exceed its
nominal capacity (an overflow page, counted in ``overflow_pages``).
Deletion removes records without rebalancing — standard practice in
production B-trees (e.g. no-merge deletes) and irrelevant to the paper's
read-only experiments.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Any, Iterator

from .. import invariants
from ..storage.buffer import BufferPool
from ..storage.page import Page
from ..storage.wal import WriteAheadLog, active_wal


class _InnerNode:
    """Separator keys and child page ids; ``children[i]`` covers keys
    ``(keys[i-1], keys[i]]`` with the outermost bounds unbounded."""

    __slots__ = ("keys", "children")

    def __init__(self, keys: list[Any], children: list[int]) -> None:
        self.keys = keys
        self.children = children


class BPlusTree:
    """A B+-tree over the simulated disk.

    Parameters
    ----------
    buffer:
        Buffer pool through which all page accesses flow.
    leaf_capacity:
        Records per leaf page (the paper's "page capacity").
    fanout:
        Separator capacity of inner nodes.
    category:
        I/O statistics bucket charged for leaf accesses.
    """

    def __init__(
        self,
        buffer: BufferPool,
        leaf_capacity: int,
        fanout: int = 128,
        category: str = "data",
    ) -> None:
        if leaf_capacity < 2:
            raise ValueError("leaf capacity must be at least 2")
        if fanout < 3:
            raise ValueError("fanout must be at least 3")
        self.buffer = buffer
        self.disk = buffer.disk
        self.leaf_capacity = leaf_capacity
        self.fanout = fanout
        self.category = category
        self.height = 1
        self.record_count = 0
        self.leaf_count = 1
        self.overflow_pages = 0
        root = self._new_leaf()
        self.root_id = root.page_id
        self.first_leaf_id = root.page_id

    # ------------------------------------------------------------------
    # page helpers
    # ------------------------------------------------------------------
    def _new_leaf(self) -> Page:
        page = self.disk.allocate(self.leaf_capacity)
        page.payload = {"leaf": True, "next": None}
        wal = active_wal(self.disk)
        if wal is not None:
            self._journal_alloc(wal, page)
        return page

    def _new_inner(self, keys: list[Any], children: list[int]) -> Page:
        page = self.disk.allocate(0)
        page.payload = _InnerNode(keys, children)
        wal = active_wal(self.disk)
        if wal is not None:
            self._journal_alloc(wal, page)
        return page

    def _journal_alloc(self, wal: WriteAheadLog, page: Page) -> None:
        """Journal a fresh allocation; a crash mid-append must not leak it."""
        try:
            wal.log_alloc(page)
        except BaseException:
            self.disk.free(page.page_id)
            raise

    def _fetch(self, page_id: int, *, charge: bool) -> Page:
        return self.buffer.get(
            page_id, sequential=False, category=self.category, charge=charge
        )

    def _is_leaf(self, page: Page) -> bool:
        return isinstance(page.payload, dict)

    # ------------------------------------------------------------------
    # descent
    # ------------------------------------------------------------------
    def _locate(
        self, key: Any, *, want_path: bool = False
    ) -> tuple[int, Any, Any, list[tuple[Page, int]]]:
        """Descend the *inner* levels only; never touches the leaf page.

        Returns the leaf's page id, its covered separator interval
        ``(low, high]`` (``None`` = unbounded) and, when requested, the
        inner-node path for split propagation.  Keeping leaves out of the
        descent matters for accounting: the caller decides whether the
        leaf access is priced, and an unpriced bounds probe (a Tetris
        event-point computation) must not smuggle the data page into the
        buffer pool for free.
        """
        low: Any = None
        high: Any = None
        path: list[tuple[Page, int]] = []
        page_id = self.root_id
        for _ in range(self.height - 1):
            page = self._fetch(page_id, charge=False)
            node: _InnerNode = page.payload
            idx = bisect_left(node.keys, key)
            if want_path:
                path.append((page, idx))
            if idx > 0:
                low = node.keys[idx - 1]
            if idx < len(node.keys):
                high = node.keys[idx]
            page_id = node.children[idx]
        return page_id, low, high, path

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, key: Any, value: Any) -> None:
        """Insert one record (duplicates allowed).

        With a write-ahead log armed on the disk stack, the insert runs
        as one WAL batch: before-images of every page it may mutate,
        redo images before the data writes, and tree metadata restored
        if the batch aborts — a crash mid-insert never strands a
        half-linked split.
        """
        wal = active_wal(self.disk)
        if wal is None:
            leaf_id, low, high, path = self._locate(key, want_path=True)
            leaf = self.disk.peek(leaf_id)  # load phase: not a priced access
            insort(leaf.records, (key, value), key=lambda r: r[0])
            leaf.version += 1
            self.record_count += 1
            if len(leaf.records) > self.leaf_capacity:
                self._split_leaf(leaf, path)
                # a split moves the leaf's upper records into a new sibling,
                # so only the lower separator bound still applies here
                high = None
            if invariants.enabled():
                invariants.validate_leaf(self, leaf, low, high)
            return
        meta = self.meta_snapshot()
        try:
            with wal.batch("bptree.insert"):
                self._insert_journaled(wal, key, value)
        except BaseException:
            self.meta_restore(meta)
            raise

    def _insert_journaled(self, wal: WriteAheadLog, key: Any, value: Any) -> None:
        """One insert under WAL protection (caller owns the batch)."""
        leaf_id, low, high, path = self._locate(key, want_path=True)
        leaf = self.disk.peek(leaf_id)
        wal.touch(leaf)
        for page, _ in path:
            wal.touch(page)  # separator propagation may mutate any of these
        insort(leaf.records, (key, value), key=lambda r: r[0])
        leaf.version += 1
        self.record_count += 1
        right: Page | None = None
        if len(leaf.records) > self.leaf_capacity:
            right = self._split_leaf(leaf, path)
            high = None
        if invariants.enabled():
            invariants.validate_leaf(self, leaf, low, high)
        # write-ahead: redo image first, then the (tearable) data write
        wal.log_image(leaf)
        self.disk.write(leaf, category=self.category)
        if right is not None:
            wal.log_image(right)
            self.disk.write(right, category=self.category)

    def meta_snapshot(self) -> tuple[int, int, int, int, int, int]:
        """The tree's in-memory descriptors (root, height, counts).

        The WAL restores *page content* on rollback but knows nothing of
        the tree object sitting on top, so every journaled mutation
        snapshots these and restores them if its batch aborts.  Code
        that holds one WAL batch open across several mutations — the
        2PC participant layer in :mod:`repro.shard` — must do the same
        at batch granularity: a later abort (or a post-crash presumed
        abort) rolls the pages back underneath the live tree object.
        """
        return (
            self.root_id,
            self.first_leaf_id,
            self.height,
            self.leaf_count,
            self.record_count,
            self.overflow_pages,
        )

    def meta_restore(self, meta: tuple[int, int, int, int, int, int]) -> None:
        """Restore a :meth:`meta_snapshot` after the WAL rolled pages back."""
        (
            self.root_id,
            self.first_leaf_id,
            self.height,
            self.leaf_count,
            self.record_count,
            self.overflow_pages,
        ) = meta

    def _split_leaf(self, leaf: Page, path: list[tuple[Page, int]]) -> Page | None:
        """Split ``leaf``; returns the new right sibling (``None`` when the
        page overflowed instead because all its records share one key)."""
        split = self._split_index([r[0] for r in leaf.records])
        if split is None:
            # all records share one key: overflow rather than break the
            # separator invariant (split keys must be key boundaries)
            self.overflow_pages += 1
            return None
        right = self._new_leaf()
        right.records = leaf.records[split:]
        right.version += 1
        leaf.records = leaf.records[:split]
        leaf.version += 1
        right.payload["next"] = leaf.payload["next"]
        leaf.payload["next"] = right.page_id
        self.leaf_count += 1
        separator = leaf.records[-1][0]
        self._insert_separator(path, separator, right.page_id)
        return right

    @staticmethod
    def _split_index(keys: list[Any]) -> int | None:
        """Index nearest the middle where ``keys[i-1] != keys[i]``."""
        mid = len(keys) // 2
        for offset in range(mid + 1):
            left = mid - offset
            right = mid + offset
            if 0 < left < len(keys) and keys[left - 1] != keys[left]:
                return left
            if 0 < right < len(keys) and keys[right - 1] != keys[right]:
                return right
        return None

    def _insert_separator(
        self, path: list[tuple[Page, int]], separator: Any, right_id: int
    ) -> None:
        while path:
            page, idx = path.pop()
            node: _InnerNode = page.payload
            node.keys.insert(idx, separator)
            node.children.insert(idx + 1, right_id)
            if len(node.keys) <= self.fanout:
                return
            mid = len(node.keys) // 2
            separator = node.keys[mid]
            right_node = self._new_inner(node.keys[mid + 1:], node.children[mid + 1:])
            node.keys = node.keys[:mid]
            node.children = node.children[: mid + 1]
            right_id = right_node.page_id
        new_root = self._new_inner([separator], [self.root_id, right_id])
        self.root_id = new_root.page_id
        self.height += 1

    def bulk_load(self, pairs: "list[tuple[Any, Any]]", fill: float = 1.0) -> None:
        """Build the tree bottom-up from key-sorted ``(key, value)`` pairs.

        Replaces insert-driven loading for initial builds: leaves are
        packed to ``fill`` of their capacity (split-grown trees sit near
        ~70 %), which shrinks the page count and therefore the Z-region
        count of a UB-Tree built on top.  Requires an empty tree; equal
        keys are never split across leaves (overflowing one if needed).
        Load I/O is not priced, like insert-based loading.

        With a write-ahead log armed, the whole load is one WAL batch:
        every allocation is journaled, every leaf's redo image precedes
        its (tearable) sequential write, and the old root's free is
        deferred to commit — so a crash rolls back to the empty tree and
        a torn write replays to the committed image on recovery.  Inline
        structural validation is skipped on this path: torn leaves are a
        legal on-disk state until :meth:`~repro.storage.wal.WriteAheadLog
        .recover` has run.
        """
        if self.record_count:
            raise RuntimeError("bulk_load requires an empty tree")
        if not 0.1 <= fill <= 1.0:
            raise ValueError("fill factor must be in [0.1, 1.0]")
        for previous, current in zip(pairs, pairs[1:]):
            if current[0] < previous[0]:
                raise ValueError("bulk_load input must be sorted by key")
        if not pairs:
            return
        wal = active_wal(self.disk)
        if wal is None:
            self._bulk_build(pairs, fill, None)
            if invariants.enabled():
                invariants.validate_bptree(self)
            return
        meta = self.meta_snapshot()
        try:
            with wal.batch("bptree.bulk_load"):
                self._bulk_build(pairs, fill, wal)
        except BaseException:
            self.meta_restore(meta)
            raise

    def _bulk_build(
        self,
        pairs: "list[tuple[Any, Any]]",
        fill: float,
        wal: WriteAheadLog | None,
    ) -> None:
        """The bottom-up build itself (validated inputs, non-empty)."""
        old_root = self.root_id
        target = max(2, int(self.leaf_capacity * fill))
        leaves: list[Page] = []
        start = 0
        while start < len(pairs):
            end = min(start + target, len(pairs))
            # never split a run of equal keys: extend to the run's end
            while end < len(pairs) and pairs[end][0] == pairs[end - 1][0]:
                end += 1
            if end - start > self.leaf_capacity:
                self.overflow_pages += 1
            leaf = self._new_leaf()
            leaf.records = list(pairs[start:end])
            leaf.version += 1
            if leaves:
                leaves[-1].payload["next"] = leaf.page_id
            leaves.append(leaf)
            start = end

        self.first_leaf_id = leaves[0].page_id
        self.leaf_count = len(leaves)
        self.record_count = len(pairs)
        self.height = 1

        # build inner levels bottom-up: (max_key, page_id) per child
        level = [(leaf.records[-1][0], leaf.page_id) for leaf in leaves]
        while len(level) > 1:
            next_level: list[tuple[Any, int]] = []
            step = self.fanout + 1
            starts = list(range(0, len(level), step))
            if len(starts) > 1 and len(level) - starts[-1] == 1:
                # a lone trailing child cannot form a node on its own;
                # steal a sibling from the previous chunk rather than
                # folding the child into it, which would push that node
                # to fanout + 1 separators
                starts[-1] -= 1
            for index, chunk_start in enumerate(starts):
                chunk_end = (
                    starts[index + 1] if index + 1 < len(starts) else len(level)
                )
                chunk = level[chunk_start:chunk_end]
                keys = [max_key for max_key, _ in chunk[:-1]]
                children = [page_id for _, page_id in chunk]
                node = self._new_inner(keys, children)
                next_level.append((chunk[-1][0], node.page_id))
            level = next_level
            self.height += 1
        self.root_id = level[0][1]
        if wal is None:
            self.disk.free(old_root)
            return
        # write-ahead: each leaf's redo image precedes its data write, so
        # a torn write is replayable; the old root is freed only at commit
        for leaf in leaves:
            wal.log_image(leaf)
            self.disk.write(leaf, sequential=True, category=self.category)
        wal.log_free(old_root)

    def delete(self, key: Any, value: Any = None) -> bool:
        """Remove the first record matching ``key`` (and ``value`` if given).

        Returns whether a record was removed.  Pages are never merged.
        """
        leaf_id, low, high, _ = self._locate(key)
        leaf = self.disk.peek(leaf_id)
        keys = [r[0] for r in leaf.records]
        idx = bisect_left(keys, key)
        while idx < len(leaf.records) and leaf.records[idx][0] == key:
            if value is None or leaf.records[idx][1] == value:
                del leaf.records[idx]
                leaf.version += 1
                self.record_count -= 1
                if invariants.enabled():
                    invariants.validate_leaf(self, leaf, low, high)
                return True
            idx += 1
        return False

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def search(self, key: Any) -> list[Any]:
        """All values stored under ``key`` (priced: one random leaf read)."""
        leaf_id, _, _, _ = self._locate(key)
        leaf = self._fetch(leaf_id, charge=True)
        keys = [r[0] for r in leaf.records]
        lo = bisect_left(keys, key)
        hi = bisect_right(keys, key)
        return [value for _, value in leaf.records[lo:hi]]

    def leaf_for(self, key: Any, *, charge: bool = True) -> tuple[Page, Any, Any]:
        """The leaf covering ``key`` and its separator bounds ``(low, high]``.

        This is the UB-Tree point query: one tree descent and — when
        ``charge`` is set — one priced (random) leaf access.  With
        ``charge=False`` only the inner levels are walked and the leaf is
        handed back without accounting (callers use its id and bounds).
        """
        leaf_id, low, high, _ = self._locate(key)
        if charge:
            leaf = self._fetch(leaf_id, charge=True)
        else:
            leaf = self.disk.peek(leaf_id)
        return leaf, low, high

    def range_scan(self, lo: Any = None, hi: Any = None) -> Iterator[tuple[Any, Any]]:
        """Yield ``(key, value)`` pairs with ``lo <= key <= hi`` in key order.

        Every visited leaf costs one random page access (the IOT regime of
        the paper's cost model).
        """
        if lo is None:
            page_id: int | None = self.first_leaf_id
        else:
            page_id, _, _, _ = self._locate(lo)
        while page_id is not None:
            leaf = self._fetch(page_id, charge=True)
            for key, value in leaf.records:
                if lo is not None and key < lo:
                    continue
                if hi is not None and key > hi:
                    return
                yield key, value
            page_id = leaf.payload["next"]

    def iterate_leaves(self, *, charge: bool = True) -> Iterator[Page]:
        """Walk the leaf chain left to right (priced random per leaf)."""
        page_id: int | None = self.first_leaf_id
        while page_id is not None:
            if charge:
                leaf = self._fetch(page_id, charge=True)
            else:
                leaf = self.disk.peek(page_id)
            yield leaf
            page_id = leaf.payload["next"]

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Validate the full tree contract (delegates to the invariant
        layer; see :func:`repro.invariants.validate_bptree`).

        Runs unconditionally — this is the explicit debug entry point,
        independent of the ``REPRO_CHECKS`` gate.
        """
        invariants.validate_bptree(self)
