"""Index-organized tables: the paper's clustered B*-Tree baseline.

An IOT stores the full tuples in the leaves of a B+-tree on a composite
key in lexicographic order ``A_1, ..., A_d`` (Section 4.2).  It supports
the restriction on its *leading* attribute and delivers tuples presorted
by the key — at the price of one random page access per leaf.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Sequence

from .. import kernels
from ..storage.buffer import BufferPool
from .bptree import BPlusTree


class _Bottom:
    """Compares below every other value (exclusive lower sentinel)."""

    def __lt__(self, other: Any) -> bool:
        return not isinstance(other, _Bottom)

    def __gt__(self, other: Any) -> bool:
        return False

    def __le__(self, other: Any) -> bool:
        return True

    def __ge__(self, other: Any) -> bool:
        return isinstance(other, _Bottom)

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, _Bottom)

    def __hash__(self) -> int:
        return hash("_Bottom")


class _Top:
    """Compares above every other value (inclusive upper sentinel)."""

    def __lt__(self, other: Any) -> bool:
        return False

    def __gt__(self, other: Any) -> bool:
        return not isinstance(other, _Top)

    def __le__(self, other: Any) -> bool:
        return isinstance(other, _Top)

    def __ge__(self, other: Any) -> bool:
        return True

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, _Top)

    def __hash__(self) -> int:
        return hash("_Top")


BOTTOM = _Bottom()
TOP = _Top()


class IndexOrganizedTable:
    """A relation clustered by a composite key inside a B+-tree.

    ``key_of`` maps a stored tuple to its composite key; keys need not be
    unique (ties are stored together, never split across separators).
    """

    def __init__(
        self,
        buffer: BufferPool,
        key_of: Callable[[Any], tuple],
        page_capacity: int,
        fanout: int = 128,
        category: str = "data",
    ) -> None:
        self.key_of = key_of
        self.tree = BPlusTree(
            buffer, leaf_capacity=page_capacity, fanout=fanout, category=category
        )

    def __len__(self) -> int:
        return self.tree.record_count

    @property
    def page_count(self) -> int:
        return self.tree.leaf_count

    def insert(self, row: Any) -> None:
        self.tree.insert(self.key_of(row), row)

    def load(self, rows: Sequence[Any]) -> None:
        for row in rows:
            self.insert(row)

    def bulk_load(self, rows: Sequence[Any], fill: float = 1.0) -> None:
        """Sort by the composite key and build the tree bottom-up.

        Key extraction and the sort permutation are batched through the
        kernel layer (integer composite keys lexsort vectorized), the
        same way the UB-Tree bulk load batches its Z-address encoding —
        keeping the baseline comparisons fair.
        """
        key_of = self.key_of
        keys = [key_of(row) for row in rows]
        pairs = [
            (keys[index], rows[index])
            for index in kernels.get_backend().argsort_keys(keys)
        ]
        self.tree.bulk_load(pairs, fill=fill)

    def delete(self, row: Any) -> bool:
        return self.tree.delete(self.key_of(row), row)

    def scan(
        self, lo: tuple | None = None, hi: tuple | None = None
    ) -> Iterator[Any]:
        """Tuples in key order, optionally restricted to ``lo <= key <= hi``.

        Following the cost model, every leaf visited costs one random
        access.  Prefix ranges can be expressed by passing partial keys
        padded with :meth:`prefix_range`.
        """
        for _, row in self.tree.range_scan(lo, hi):
            yield row

    @staticmethod
    def prefix_range(prefix: tuple) -> tuple[tuple, tuple]:
        """Key range covering all composite keys starting with ``prefix``.

        The bare prefix is already the correct lower bound: tuples compare
        lexicographically, so ``prefix <= prefix + anything`` while every
        shorter/smaller key sorts below it.  The upper bound appends
        :data:`TOP`, which compares above any attribute value.
        """
        return prefix, prefix + (TOP,)

    def check_invariants(self) -> None:
        self.tree.check_invariants()
