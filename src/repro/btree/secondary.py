"""Secondary (non-clustered) B+-tree indexes.

The paper evaluates secondary indexes on the restricted attributes of Q3
and Q6 and finds them uncompetitive: they deliver row identifiers in key
order, but fetching the rows themselves costs one random page access per
*row* (up to one per match) because the data is not clustered by the
index.  This module exists so that the reproduction can demonstrate the
same effect rather than assert it.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Sequence

from ..storage.buffer import BufferPool
from ..storage.heap import HeapFile
from .bptree import BPlusTree


class SecondaryIndex:
    """A B+-tree mapping one attribute to row identifiers.

    Row identifiers are ``(page_id, slot)`` pairs into a heap file.  The
    index itself is scanned at one random access per leaf; every RID
    dereference costs one random data-page access unless the page was the
    immediately preceding one (modelled by the buffer pool).
    """

    def __init__(
        self,
        buffer: BufferPool,
        key_of: Callable[[Any], Any],
        heap: HeapFile,
        leaf_capacity: int = 400,
        category: str = "data",
    ) -> None:
        self.buffer = buffer
        self.key_of = key_of
        self.heap = heap
        self.category = category
        self.tree = BPlusTree(buffer, leaf_capacity=leaf_capacity, category=category)

    def build(self) -> None:
        """Index every row currently in the heap (reads are not priced)."""
        for page in self.heap._pages:  # direct walk: build time is setup
            for slot, row in enumerate(page.records):
                self.tree.insert(self.key_of(row), (page.page_id, slot))

    def insert(self, row: Any, rid: tuple[int, int]) -> None:
        self.tree.insert(self.key_of(row), rid)

    def rids(self, lo: Any, hi: Any) -> Iterator[tuple[int, int]]:
        """Row ids with ``lo <= key <= hi`` in key order (index I/O only)."""
        for _, rid in self.tree.range_scan(lo, hi):
            yield rid

    def fetch(self, lo: Any, hi: Any) -> Iterator[Any]:
        """Rows with key in range, fetched through RIDs (the slow path)."""
        for page_id, slot in self.rids(lo, hi):
            page = self.buffer.get(page_id, category=self.category)
            yield page.records[slot]

    @staticmethod
    def intersect_rids(rid_lists: Sequence[set[tuple[int, int]]]) -> set[tuple[int, int]]:
        """RID-list intersection for conjunctive predicates (Section 2)."""
        if not rid_lists:
            return set()
        result = set(rid_lists[0])
        for rids in rid_lists[1:]:
            result &= rids
        return result
