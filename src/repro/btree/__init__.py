"""Disk-based B+-trees: the substrate and the baselines.

* :class:`BPlusTree` — generic B+-tree on simulated pages.
* :class:`IndexOrganizedTable` — clustered composite-key table (the
  paper's IOT baseline).
* :class:`SecondaryIndex` — non-clustered index with RID fetches (shown
  uncompetitive in Sections 5.1 and 5.3).
"""

from .bptree import BPlusTree
from .iot import BOTTOM, TOP, IndexOrganizedTable
from .secondary import SecondaryIndex

__all__ = [
    "BOTTOM",
    "BPlusTree",
    "IndexOrganizedTable",
    "SecondaryIndex",
    "TOP",
]
