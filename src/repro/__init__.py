"""repro — a full reproduction of the Tetris algorithm (ICDE 1999).

Markl, Zirkel, Bayer: *Processing Operations with Restrictions in RDBMS
without External Sorting: The Tetris Algorithm*.

The package builds every layer the paper relies on:

* ``repro.storage`` — a simulated disk priced with the paper's cost model,
* ``repro.btree`` — B+-trees, index-organized tables, secondary indexes,
* ``repro.core`` — Z-order / Tetris-order curves, UB-Trees, the Tetris
  sweep itself,
* ``repro.relational`` — schemas, encoders, tables and Volcano-style
  operators (scans, external merge sort, joins, grouping),
* ``repro.costmodel`` — the analytic formulas of Section 4,
* ``repro.planner`` — cost-based access-path selection (the paper's
  future-work optimizer sketch),
* ``repro.tpcd`` — a TPC-D-like generator and the Q3/Q4/Q6 workloads,
* ``repro.viz`` — ASCII visualizations of partitionings and sweeps.
"""

from .core import (
    ComparisonSpace,
    Curve,
    IntersectionSpace,
    PredicateSpace,
    QueryBox,
    QuerySpace,
    TetrisScan,
    TetrisStats,
    UBTree,
    ZRegion,
    ZSpace,
    tetris_sorted,
)
from .storage import (
    BufferPool,
    CategoryStats,
    CorruptPageError,
    DEFAULT_RETRY_POLICY,
    DiskParameters,
    FaultPlan,
    FaultStats,
    FaultyDisk,
    HeapFile,
    ICDE99_ANALYSIS,
    ICDE99_TESTBED,
    IOStats,
    MissingPageError,
    NO_RETRY,
    Page,
    QuarantinedPageError,
    RecoveryReport,
    ReplicatedDisk,
    RetryPolicy,
    SimulatedCrashError,
    SimulatedDisk,
    StorageError,
    TransientIOError,
    WriteAheadLog,
    active_wal,
    armed_disk_count,
    ensure_page_integrity,
    read_page_resilient,
)

__version__ = "1.0.0"

__all__ = [
    "BufferPool",
    "CategoryStats",
    "ComparisonSpace",
    "CorruptPageError",
    "Curve",
    "DEFAULT_RETRY_POLICY",
    "DiskParameters",
    "FaultPlan",
    "FaultStats",
    "FaultyDisk",
    "HeapFile",
    "ICDE99_ANALYSIS",
    "ICDE99_TESTBED",
    "IOStats",
    "IntersectionSpace",
    "MissingPageError",
    "NO_RETRY",
    "Page",
    "PredicateSpace",
    "QuarantinedPageError",
    "QueryBox",
    "QuerySpace",
    "RecoveryReport",
    "ReplicatedDisk",
    "RetryPolicy",
    "SimulatedCrashError",
    "SimulatedDisk",
    "StorageError",
    "TetrisScan",
    "TetrisStats",
    "TransientIOError",
    "UBTree",
    "WriteAheadLog",
    "ZRegion",
    "ZSpace",
    "active_wal",
    "armed_disk_count",
    "ensure_page_integrity",
    "read_page_resilient",
    "tetris_sorted",
    "__version__",
]
