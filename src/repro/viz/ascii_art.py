"""ASCII visualizations of Z-region partitionings and Tetris sweeps.

Figure 3-6 of the paper shows a visualization tool's rendering of the
sweep — "the processing order of the regions reminds us of the Tetris
computer game".  This module reproduces that view in plain text for 2-D
spaces: each cell of the universe is labelled with the index of the
Z-region covering it, and a sweep snapshot marks retrieved regions.
"""

from __future__ import annotations

from typing import Sequence

from ..core.query_space import QueryBox
from ..core.ubtree import UBTree

_GLYPHS = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"


def render_partitioning(ubtree: UBTree, *, max_cells: int = 64) -> str:
    """The Z-region id of every universe cell, dimension 0 horizontal.

    Only practical for small 2-D spaces (tests, examples, docs); raises
    for anything wider than ``max_cells`` per side.
    """
    space = ubtree.space
    if space.dims != 2:
        raise ValueError("rendering supports two-dimensional spaces only")
    width = space.coord_max[0] + 1
    height = space.coord_max[1] + 1
    if width > max_cells or height > max_cells:
        raise ValueError(f"universe {width}x{height} too large to render")

    regions = list(ubtree.regions())
    lines = []
    for y in range(height - 1, -1, -1):  # origin at the bottom-left
        row = []
        for x in range(width):
            address = space.z_address((x, y))
            index = _region_index(regions, address)
            row.append(_GLYPHS[index % len(_GLYPHS)])
        lines.append("".join(row))
    return "\n".join(lines)


def render_sweep(
    ubtree: UBTree,
    box: QueryBox,
    retrieved_pages: Sequence[int],
    *,
    max_cells: int = 64,
) -> str:
    """Snapshot of a sweep: ``#`` retrieved, ``·`` pending in-box, `` `` outside."""
    space = ubtree.space
    if space.dims != 2:
        raise ValueError("rendering supports two-dimensional spaces only")
    width = space.coord_max[0] + 1
    height = space.coord_max[1] + 1
    if width > max_cells or height > max_cells:
        raise ValueError(f"universe {width}x{height} too large to render")

    regions = list(ubtree.regions())
    retrieved = set(retrieved_pages)
    lines = []
    for y in range(height - 1, -1, -1):
        row = []
        for x in range(width):
            if not box.contains_point((x, y)):
                row.append(" ")
                continue
            address = space.z_address((x, y))
            region = regions[_region_index(regions, address)]
            row.append("#" if region.page_id in retrieved else "·")
        lines.append("".join(row))
    return "\n".join(lines)


def render_order(space_bits: Sequence[int], *, tetris_dim: int | None = None) -> str:
    """Ordinal numbers of a 2-D space in Z or Tetris order (Figures 3-2/3-4).

    With ``tetris_dim=None`` the grid shows Z-addresses; with a dimension
    it shows the Tetris ordinals ``T_j(x)``, visualizing how the order
    becomes row-major in the sort attribute.
    """
    from ..core.zorder import ZSpace

    if len(space_bits) != 2:
        raise ValueError("order rendering supports two dimensions only")
    space = ZSpace(space_bits)
    width = space.coord_max[0] + 1
    height = space.coord_max[1] + 1
    if width * height > 4096:
        raise ValueError("universe too large to render")
    cell = len(str(space.address_max))
    lines = []
    for y in range(height - 1, -1, -1):
        row = []
        for x in range(width):
            if tetris_dim is None:
                ordinal = space.z_address((x, y))
            else:
                ordinal = space.tetris_address((x, y), tetris_dim)
            row.append(str(ordinal).rjust(cell))
        lines.append(" ".join(row))
    return "\n".join(lines)


def _region_index(regions, address: int) -> int:
    lo, hi = 0, len(regions) - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if regions[mid].last < address:
            lo = mid + 1
        else:
            hi = mid
    return lo
