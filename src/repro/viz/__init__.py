"""Plain-text visualizations of partitionings and sweeps (Figure 3-6 style)."""

from .ascii_art import render_order, render_partitioning, render_sweep

__all__ = ["render_order", "render_partitioning", "render_sweep"]
