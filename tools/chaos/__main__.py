"""CLI driver: ``python -m tools.chaos [--seeds ...] [--backend ...]``.

Prints one line per (backend, seed) outcome and exits non-zero when any
schedule breaks the correct-or-typed-error contract (a
:class:`~tools.chaos.ChaosViolation` propagates with a traceback — that
is a bug in the engine, not in the schedule).
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter

from repro import kernels

from . import DEFAULT_SEEDS, run_suite


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="chaos",
        description="Seeded fault-schedule sweep over the Tetris engine.",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=list(DEFAULT_SEEDS),
        help=f"fault-plan seeds to sweep (default: {list(DEFAULT_SEEDS)})",
    )
    parser.add_argument(
        "--backend",
        choices=[*kernels.available_backends(), "all"],
        default="all",
        help="kernel backend to sweep (default: every available backend)",
    )
    parser.add_argument(
        "--rows", type=int, default=1200, help="relation size (default: 1200)"
    )
    options = parser.parse_args(argv)
    backends = (
        None if options.backend == "all" else [options.backend]
    )
    outcomes = run_suite(options.seeds, backends=backends, rows=options.rows)
    for outcome in outcomes:
        print(outcome.describe())
        for event in outcome.degradations:
            print(f"    degradation: {event}")
    statuses = Counter(outcome.status for outcome in outcomes)
    print(
        f"chaos: {len(outcomes)} schedule(s) — "
        + ", ".join(f"{count} {status}" for status, count in sorted(statuses.items()))
        + "; zero silent wrong answers"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
