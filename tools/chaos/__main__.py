"""CLI driver: ``python -m tools.chaos [--seeds ...] [--backend ...]``.

Prints one line per (backend, seed) outcome and exits non-zero when any
schedule breaks the correct-or-typed-error contract (a
:class:`~tools.chaos.ChaosViolation` propagates with a traceback — that
is a bug in the engine, not in the schedule).

``--write`` runs the write sweep (torn writes during WAL-journaled bulk
loads) instead of the read sweep; ``--prefetch`` runs the prefetch
identity sweep (a scripted corrupt page must degrade identically
whether it was demand-fetched or prefetched); ``--shards K`` runs the
shard failover sweep (kill/corrupt/slow one copy of a K-way
range-sharded world mid-scan and hold the merged stream to the
bit-identity-or-typed-error contract); ``--join`` runs the
co-partitioned join sweep (kill/corrupt/slow one probe-side shard copy
mid-join and hold the concatenated join output to the same contract
against the serial merge join); ``--txn`` runs the 2PC sweep
(torn/transient append faults on every shard WAL and the coordinator's
decision log during atomic cross-shard writes, then a seeded crash
mid-protocol followed by decision-log recovery); ``--replicas k`` gives the read
sweep's world k-way page replicas so checksum failures repair in
place; ``--replay SEED`` re-runs a single schedule and prints the
replayable fault log and degradation/repair trail as JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from dataclasses import asdict

from repro import kernels

from . import (
    DEFAULT_JOIN_SEEDS,
    DEFAULT_PREFETCH_SEEDS,
    DEFAULT_SEEDS,
    DEFAULT_SHARD_SEEDS,
    DEFAULT_TXN_SEEDS,
    DEFAULT_WRITE_SEEDS,
    ChaosOutcome,
    run_join_schedule,
    run_join_suite,
    run_prefetch_schedule,
    run_prefetch_suite,
    run_schedule,
    run_shard_schedule,
    run_shard_suite,
    run_suite,
    run_txn_schedule,
    run_txn_suite,
    run_write_schedule,
    run_write_suite,
)


def _replay_json(outcome: ChaosOutcome, mode: str) -> str:
    """One schedule's outcome as pretty JSON, fault log expanded."""
    payload = asdict(outcome)
    payload["mode"] = mode
    payload["degradations"] = list(outcome.degradations)
    payload["fault_log"] = [
        {"op": op, "kind": kind, "page_id": page_id, "access": access}
        for op, kind, page_id, access in outcome.fault_log
    ]
    return json.dumps(payload, indent=2, sort_keys=True)


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="chaos",
        description="Seeded fault-schedule sweep over the Tetris engine.",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=None,
        help=(
            f"fault-plan seeds to sweep (default: {list(DEFAULT_SEEDS)}, "
            f"or {list(DEFAULT_WRITE_SEEDS)} with --write)"
        ),
    )
    parser.add_argument(
        "--backend",
        choices=[*kernels.available_backends(), "all"],
        default="all",
        help="kernel backend to sweep (default: every available backend)",
    )
    parser.add_argument(
        "--rows", type=int, default=None, help="relation size (default: 1200, or 600 with --write)"
    )
    parser.add_argument(
        "--write",
        action="store_true",
        help="run the write sweep: torn writes during WAL-journaled bulk loads",
    )
    parser.add_argument(
        "--prefetch",
        action="store_true",
        help=(
            "run the prefetch identity sweep: a scripted corrupt page must "
            "degrade identically whether demand-fetched or prefetched"
        ),
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=0,
        metavar="K",
        help="k-way page replicas under the fault layer (read sweep only)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="K",
        help=(
            "run the shard sweep: kill/corrupt/slow one shard copy of a "
            "K-way range-sharded world mid-scan"
        ),
    )
    parser.add_argument(
        "--copies",
        type=int,
        default=2,
        metavar="R",
        help="replica copies per shard in failover scenarios (shard sweep)",
    )
    parser.add_argument(
        "--join",
        action="store_true",
        help=(
            "run the co-partitioned join sweep: kill/corrupt/slow one "
            "probe-side shard copy mid-join; the concatenated output must "
            "stay bit-identical to the serial merge join or end in a "
            "typed error / flagged partial"
        ),
    )
    parser.add_argument(
        "--txn",
        action="store_true",
        help=(
            "run the 2PC sweep: log-device faults during atomic "
            "cross-shard writes, plus a seeded crash + recovery"
        ),
    )
    parser.add_argument(
        "--replay",
        type=int,
        default=None,
        metavar="SEED",
        help="re-run one schedule and print its fault/repair trail as JSON",
    )
    options = parser.parse_args(argv)
    exclusive = (
        options.write,
        options.prefetch,
        options.shards > 0,
        options.join,
        options.txn,
    )
    if sum(exclusive) > 1:
        parser.error(
            "--write, --prefetch, --shards, --join and --txn are "
            "mutually exclusive"
        )
    if options.write:
        default_seeds, default_rows = list(DEFAULT_WRITE_SEEDS), 600
    elif options.prefetch:
        default_seeds, default_rows = list(DEFAULT_PREFETCH_SEEDS), 1200
    elif options.shards:
        default_seeds, default_rows = list(DEFAULT_SHARD_SEEDS), 900
    elif options.join:
        default_seeds, default_rows = list(DEFAULT_JOIN_SEEDS), 500
    elif options.txn:
        default_seeds, default_rows = list(DEFAULT_TXN_SEEDS), 200
    else:
        default_seeds, default_rows = list(DEFAULT_SEEDS), 1200
    seeds = options.seeds or default_seeds
    rows = options.rows or default_rows
    backends = None if options.backend == "all" else [options.backend]

    if options.replay is not None:
        backend = (
            kernels.get_backend().name if options.backend == "all" else options.backend
        )
        if options.write:
            outcome = run_write_schedule(options.replay, backend=backend, rows=rows)
        elif options.txn:
            outcome = run_txn_schedule(options.replay, backend=backend, rows=rows)
        elif options.join:
            outcome = run_join_schedule(
                options.replay,
                backend=backend,
                rows=rows,
                copies=options.copies,
            )
        elif options.shards:
            outcome = run_shard_schedule(
                options.replay,
                backend=backend,
                rows=rows,
                shards=options.shards,
                copies=options.copies,
            )
        elif options.prefetch:
            demand, armed = run_prefetch_schedule(
                options.replay, backend=backend, rows=rows
            )
            print(_replay_json(demand, "prefetch-demand"))
            print(_replay_json(armed, "prefetch-armed"))
            return 0
        else:
            outcome = run_schedule(
                options.replay, backend=backend, rows=rows, replicas=options.replicas
            )
        if options.write:
            mode = "write"
        elif options.shards:
            mode = "shard"
        elif options.join:
            mode = "join"
        elif options.txn:
            mode = "txn"
        else:
            mode = "read"
        print(_replay_json(outcome, mode))
        return 0

    if options.prefetch:
        pairs = run_prefetch_suite(seeds, backends=backends, rows=rows)
        for demand, armed in pairs:
            print(f"demand   {demand.describe()}")
            print(f"prefetch {armed.describe()}")
        statuses = Counter(armed.status for _, armed in pairs)
        print(
            f"chaos: {len(pairs)} prefetch identity schedule(s) — "
            + ", ".join(
                f"{count} {status}" for status, count in sorted(statuses.items())
            )
            + "; demand and prefetch worlds degraded identically"
        )
        return 0

    if options.write:
        outcomes = run_write_suite(seeds, backends=backends, rows=rows)
    elif options.txn:
        outcomes = run_txn_suite(seeds, backends=backends, rows=rows)
    elif options.join:
        outcomes = run_join_suite(
            seeds, backends=backends, rows=rows, copies=options.copies
        )
    elif options.shards:
        outcomes = run_shard_suite(
            seeds,
            backends=backends,
            rows=rows,
            shards=options.shards,
            copies=options.copies,
        )
    else:
        outcomes = run_suite(
            seeds, backends=backends, rows=rows, replicas=options.replicas
        )
    for outcome in outcomes:
        print(outcome.describe())
        for event in outcome.degradations:
            print(f"    degradation: {event}")
    statuses = Counter(outcome.status for outcome in outcomes)
    print(
        f"chaos: {len(outcomes)} schedule(s) — "
        + ", ".join(f"{count} {status}" for status, count in sorted(statuses.items()))
        + "; zero silent wrong answers"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
