"""``chaos``: seeded fault-schedule sweeps over the full query stack.

The harness builds a multi-instance physical design (heap + two IOTs +
UB-Tree over the same rows), runs a Q6-style sort+restriction query
through :func:`repro.planner.execute_sorted_query` under a seeded
:class:`~repro.storage.faults.FaultPlan`, and holds the engine to its
resilience contract:

* a run that completes must return *exactly* the correct answer —
  the right multiset of rows, in an order the PR-2
  :class:`~repro.invariants.StreamChecker` accepts (monotone in the
  sort key, every row inside the query space), and bit-identical to the
  fault-free run when no degradation happened;
* a run that cannot complete must fail with a typed
  :class:`~repro.storage.errors.StorageError` (usually
  :class:`~repro.planner.PlanExhaustedError` carrying the degradation
  trail);
* the same seed must replay the same outcome, fault-for-fault.

Anything else — a wrong row, a truncated stream, an untyped crash — is a
:class:`ChaosViolation`: the silent-garbage class of bug this harness
exists to catch.

Usage: ``python -m tools.chaos --seeds 11 17 23`` (add ``--backend pure``
to force a kernel backend; default sweeps whatever is available).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro import kernels
from repro.costmodel import CostParameters
from repro.invariants import StreamChecker
from repro.planner import (
    PhysicalDesign,
    PlanExhaustedError,
    QueryResult,
    execute_sorted_query,
)
from repro.relational import Attribute, Database, IntEncoder, Schema
from repro.storage import FaultPlan, FaultyDisk, StorageError

__all__ = [
    "ChaosOutcome",
    "ChaosViolation",
    "DEFAULT_SEEDS",
    "QUERY",
    "build_world",
    "chaos_plan",
    "run_schedule",
    "run_suite",
]

#: the CI sweep's pinned seeds (chosen to cover clean, degraded and
#: failed outcomes on both kernel backends)
DEFAULT_SEEDS: tuple[int, ...] = (17, 23, 33)

#: the harness's fixed Q6-style query: restriction on one UB dimension,
#: sort on the other
QUERY: dict[str, Any] = {
    "restrictions": {"a1": (100, 900)},
    "sort_attr": "a2",
}


class ChaosViolation(AssertionError):
    """The engine broke the correct-or-typed-error contract."""


@dataclass(frozen=True)
class ChaosOutcome:
    """What one fault schedule did to one query."""

    seed: int
    backend: str
    status: str  #: "clean" | "degraded" | "failed"
    rows: int
    faults_injected: int
    retries: int
    quarantined: int
    degradations: tuple[str, ...] = ()
    error: str | None = None
    #: replayable injection log (op, kind, page_id, access)
    fault_log: tuple[tuple[str, str, int, int], ...] = field(repr=False, default=())

    def describe(self) -> str:
        base = (
            f"seed={self.seed:<4d} backend={self.backend:<6s} "
            f"status={self.status:<8s} rows={self.rows:<5d} "
            f"faults={self.faults_injected:<3d} retries={self.retries:<3d} "
            f"quarantined={self.quarantined}"
        )
        if self.error:
            base += f"  error={self.error.splitlines()[0][:80]}"
        return base


def chaos_plan(seed: int) -> FaultPlan:
    """The sweep's fault mix for one seed.

    Rates are deliberately harsh relative to real hardware so that a
    three-seed CI sweep still exercises retries, quarantine and plan
    degradation; the seed alone decides which accesses are hit.
    """
    return FaultPlan(
        seed=seed,
        transient_rate=0.03,
        corrupt_rate=0.004,
        torn_write_rate=0.01,
        latency_rate=0.02,
        latency_seconds=0.030,
    )


def build_world(
    fault_plan: "FaultPlan | None" = None,
    *,
    rows: int = 1200,
    data_seed: int = 0,
    buffer_pages: int = 48,
) -> tuple[Database, PhysicalDesign, list[tuple]]:
    """One logical relation in four physical instances, optionally faulty.

    Fault injection stays disarmed during loading, so the dataset is
    always pristine and a schedule's damage is a pure function of the
    query's own access pattern.
    """
    schema = Schema(
        [
            Attribute("a1", IntEncoder(0, 1023)),
            Attribute("a2", IntEncoder(0, 1023)),
            Attribute("v", IntEncoder(0, 10**9)),
        ]
    )
    rng = random.Random(data_seed)
    data = [(rng.randrange(1024), rng.randrange(1024), i) for i in range(rows)]
    db = Database(
        buffer_pages=buffer_pages, fault_plan=fault_plan, quarantine_threshold=2
    )
    heap = db.create_heap_table("heap", schema, 40)
    heap.load(data)
    iot_a1 = db.create_iot("iot_a1", schema, key=("a1", "a2"), page_capacity=40)
    iot_a1.load(data)
    iot_a2 = db.create_iot("iot_a2", schema, key=("a2", "a1"), page_capacity=40)
    iot_a2.load(data)
    ub = db.create_ub_table("ub", schema, dims=("a1", "a2"), page_capacity=40)
    ub.load(data)
    db.buffer.flush()
    db.reset_measurement()
    design = PhysicalDesign(
        attributes=("a1", "a2"), heap=heap, iots={"a1": iot_a1, "a2": iot_a2}, ub=ub
    )
    return db, design, data


def _oracle_rows(data: "list[tuple]", restrictions: dict, sort_attr: str) -> list:
    """Ground truth computed directly from the in-memory dataset."""
    positions = {"a1": 0, "a2": 1, "v": 2}
    survivors = []
    for row in data:
        keep = True
        for attr, (lo, hi) in restrictions.items():
            value = row[positions[attr]]
            if (lo is not None and value < lo) or (hi is not None and value > hi):
                keep = False
                break
        if keep:
            survivors.append(row)
    return sorted(survivors, key=lambda row: row[positions[sort_attr]])


def _verify_result(
    result: QueryResult,
    baseline_rows: "list[tuple]",
    oracle: "list[tuple]",
    design: PhysicalDesign,
    seed: int,
) -> None:
    """Hold a completed run to the correctness contract."""
    rows = result.rows
    if sorted(rows) != sorted(oracle):
        missing = len(oracle) - len(rows)
        raise ChaosViolation(
            f"seed {seed}: completed query returned a wrong multiset of rows "
            f"({len(rows)} rows vs {len(oracle)} expected, delta {missing}); "
            "this is silent garbage"
        )
    if not result.degraded and rows != baseline_rows:
        raise ChaosViolation(
            f"seed {seed}: non-degraded run is not bit-identical to the "
            "fault-free run"
        )
    # order + membership via the PR-2 stream contract: encode each output
    # row into the UB space and replay it through the StreamChecker
    ub = design.ub
    if ub is not None:
        space = ub.build_query_box(QUERY["restrictions"])
        checker = StreamChecker(
            (ub.dims.index(QUERY["sort_attr"]),), False, space
        )
        for row in rows:
            checker.observe(ub.point_of(row))


def run_schedule(
    seed: int,
    *,
    backend: str | None = None,
    rows: int = 1200,
    params: "CostParameters | None" = None,
) -> ChaosOutcome:
    """Run the harness query under one seeded schedule and verify it."""
    backend_name = backend or kernels.get_backend().name
    params = params or CostParameters(memory_pages=8)

    with kernels.use_backend(backend_name):
        # fault-free baseline: the exact stream a clean run produces
        _, clean_design, data = build_world(rows=rows)
        baseline = execute_sorted_query(
            clean_design, QUERY["restrictions"], QUERY["sort_attr"], params
        )
        oracle = _oracle_rows(data, QUERY["restrictions"], QUERY["sort_attr"])
        if sorted(baseline.rows) != sorted(oracle) or baseline.degraded:
            raise ChaosViolation(
                "fault-free baseline is broken; chaos results are meaningless"
            )

        db, design, _ = build_world(chaos_plan(seed), rows=rows)
        disk = db.disk
        if not isinstance(disk, FaultyDisk):  # pragma: no cover - guarded above
            raise RuntimeError("chaos world lost its FaultyDisk")
        db.arm_faults()
        try:
            result = execute_sorted_query(
                design, QUERY["restrictions"], QUERY["sort_attr"], params
            )
        except PlanExhaustedError as exc:
            return ChaosOutcome(
                seed=seed,
                backend=backend_name,
                status="failed",
                rows=0,
                faults_injected=disk.stats.faults.total_injected,
                retries=disk.stats.faults.retries,
                quarantined=disk.stats.faults.quarantined_pages,
                degradations=tuple(e.describe() for e in exc.degradations),
                error=str(exc),
                fault_log=tuple(disk.fault_log),
            )
        except StorageError as exc:
            # typed, but the executor should have wrapped it — still within
            # contract for the caller, so report it as a failure outcome
            return ChaosOutcome(
                seed=seed,
                backend=backend_name,
                status="failed",
                rows=0,
                faults_injected=disk.stats.faults.total_injected,
                retries=disk.stats.faults.retries,
                quarantined=disk.stats.faults.quarantined_pages,
                error=f"{type(exc).__name__}: {exc}",
                fault_log=tuple(disk.fault_log),
            )
        finally:
            db.disarm_faults()

        _verify_result(result, baseline.rows, oracle, design, seed)
        return ChaosOutcome(
            seed=seed,
            backend=backend_name,
            status="degraded" if result.degraded else "clean",
            rows=len(result.rows),
            faults_injected=disk.stats.faults.total_injected,
            retries=disk.stats.faults.retries,
            quarantined=disk.stats.faults.quarantined_pages,
            degradations=tuple(e.describe() for e in result.degradations),
            fault_log=tuple(disk.fault_log),
        )


def run_suite(
    seeds: Iterable[int] = DEFAULT_SEEDS,
    *,
    backends: "Sequence[str] | None" = None,
    rows: int = 1200,
) -> list[ChaosOutcome]:
    """Sweep ``seeds`` across ``backends`` (default: all available)."""
    names = list(backends) if backends else kernels.available_backends()
    outcomes = []
    for name in names:
        for seed in seeds:
            outcomes.append(run_schedule(seed, backend=name, rows=rows))
    return outcomes
