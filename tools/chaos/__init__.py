"""``chaos``: seeded fault-schedule sweeps over the full query stack.

The harness builds a multi-instance physical design (heap + two IOTs +
UB-Tree over the same rows), runs a Q6-style sort+restriction query
through :func:`repro.planner.execute_sorted_query` under a seeded
:class:`~repro.storage.faults.FaultPlan`, and holds the engine to its
resilience contract:

* a run that completes must return *exactly* the correct answer —
  the right multiset of rows, in an order the PR-2
  :class:`~repro.invariants.StreamChecker` accepts (monotone in the
  sort key, every row inside the query space), and bit-identical to the
  fault-free run when no degradation happened;
* a run that cannot complete must fail with a typed
  :class:`~repro.storage.errors.StorageError` (usually
  :class:`~repro.planner.PlanExhaustedError` carrying the degradation
  trail);
* the same seed must replay the same outcome, fault-for-fault.

Anything else — a wrong row, a truncated stream, an untyped crash — is a
:class:`ChaosViolation`: the silent-garbage class of bug this harness
exists to catch.

Three extensions ride on the same machinery:

* ``--replicas k`` rebuilds the faulty world on a k-way
  :class:`~repro.storage.replica.ReplicatedDisk`, so checksum failures
  repair in place instead of degrading the plan (seed 17's pinned
  "degraded" outcome turns "clean");
* ``--write`` switches to the write sweep
  (:func:`run_write_schedule`): torn-write faults during WAL-journaled
  ``bulk_load``/``insert`` batches, verified bit-identical to a
  fault-free load after redo recovery, plus a simulated-crash leg that
  must roll back cleanly;
* ``--prefetch`` switches to the prefetch identity sweep
  (:func:`run_prefetch_schedule`): the same scripted corrupt fault is
  replayed once against a demand-only world and once against a world
  with the multi-queue scheduler and sweep-ahead prefetcher armed, and
  the two runs must degrade *identically* — same status, same
  structural degradation trail, bit-identical rows, same fault log.
  A corrupt page must hurt exactly as much whether the engine read it
  on demand or speculatively ahead of the sweep plane.
* ``--shards K`` switches to the shard sweep
  (:func:`run_shard_schedule`): the harness query runs against a K-way
  range-sharded :class:`~repro.shard.ShardedDatabase` while one shard
  copy is killed, corrupted, or slowed mid-scan.  With replica copies
  the merged stream must stay bit-identical to the unsharded fault-free
  oracle across failover and cross-copy repair; without them the run
  must end in a typed :class:`~repro.shard.ShardFailedError` or an
  explicitly flagged partial result whose ``failed_ranges`` account for
  every missing row.
* ``--join`` switches to the join sweep (:func:`run_join_schedule`): a
  co-partitioned merge join (:class:`~repro.shard.CoPartitionedJoin`,
  inner or semi depending on the seed) runs while one probe-side shard
  copy is killed, corrupted, or slowed mid-join.  The concatenated
  output must stay bit-identical to the serial merge join of the two
  serial sorted streams, or end in a typed error / flagged partial
  whose ``failed_ranges`` account for every missing output row.

Usage: ``python -m tools.chaos --seeds 11 17 23`` (add ``--backend
python`` to force a kernel backend; default sweeps whatever is
available).  ``--replay SEED`` re-runs one schedule and prints its full
fault log and degradation/repair trail as JSON.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro import kernels
from repro.costmodel import CostParameters
from repro.invariants import StreamChecker
from repro.planner import (
    PhysicalDesign,
    PlanExhaustedError,
    QueryResult,
    execute_sorted_query,
)
from repro.relational import Attribute, Database, IntEncoder, Schema
from repro.relational.operators import MergeJoin, MergeSemiJoin
from repro.shard import (
    CoPartitionedJoin,
    ShardedDatabase,
    ShardedJoinResult,
    ShardedScanResult,
    ShardFailedError,
)
from repro.txn import TransactionCoordinator
from repro.storage import (
    FaultPlan,
    FaultyDisk,
    SimulatedCrashError,
    StorageError,
)
from repro.storage.faults import CORRUPT

__all__ = [
    "ChaosOutcome",
    "ChaosViolation",
    "DEFAULT_JOIN_SEEDS",
    "DEFAULT_PREFETCH_SEEDS",
    "DEFAULT_SEEDS",
    "DEFAULT_SHARD_SEEDS",
    "DEFAULT_TXN_SEEDS",
    "DEFAULT_WRITE_SEEDS",
    "QUERY",
    "build_join_world",
    "build_shard_world",
    "build_txn_world",
    "build_world",
    "build_write_world",
    "chaos_plan",
    "join_scenario",
    "run_join_schedule",
    "run_join_suite",
    "run_prefetch_schedule",
    "run_prefetch_suite",
    "run_schedule",
    "run_shard_schedule",
    "run_shard_suite",
    "run_suite",
    "run_txn_schedule",
    "run_txn_suite",
    "run_write_schedule",
    "run_write_suite",
    "shard_scenario",
    "txn_plan",
    "write_plan",
]

#: the CI sweep's pinned seeds (chosen to cover clean, degraded and
#: failed outcomes on both kernel backends)
DEFAULT_SEEDS: tuple[int, ...] = (17, 23, 33)

#: the shard sweep's pinned seeds (each lands on a different cell of the
#: :func:`shard_scenario` grid, so the default sweep covers a clean
#: sharded run, a latency-only run, failover by kill, cross-copy repair
#: after corruption, a typed failure and a flagged-partial result on
#: both kernel backends)
DEFAULT_SHARD_SEEDS: tuple[int, ...] = (2, 6, 7, 10, 13, 29)

#: the write sweep's pinned seeds (chosen so every schedule tears at
#: least one page mid-``bulk_load`` on both kernel backends, forcing the
#: WAL's redo path to do real work)
DEFAULT_WRITE_SEEDS: tuple[int, ...] = (7, 19, 41)

#: the prefetch identity sweep's pinned seeds (each picks a different
#: victim page inside the sweep-ahead window)
DEFAULT_PREFETCH_SEEDS: tuple[int, ...] = (3, 12, 29)

#: the harness's fixed Q6-style query: restriction on one UB dimension,
#: sort on the other
QUERY: dict[str, Any] = {
    "restrictions": {"a1": (100, 900)},
    "sort_attr": "a2",
}


class ChaosViolation(AssertionError):
    """The engine broke the correct-or-typed-error contract."""


@dataclass(frozen=True)
class ChaosOutcome:
    """What one fault schedule did to one query (or one write workload)."""

    seed: int
    backend: str
    status: str  #: "clean" | "degraded" | "failed" | "recovered" | "partial"
    rows: int
    faults_injected: int
    retries: int
    quarantined: int
    degradations: tuple[str, ...] = ()
    error: str | None = None
    #: pages repaired from replicas during the run
    repaired: int = 0
    #: quarantine entries lifted after a successful repair
    lifted: int = 0
    #: pages healed by WAL redo during recovery (write schedules)
    healed: int = 0
    #: replayable injection log (op, kind, page_id, access)
    fault_log: tuple[tuple[str, str, int, int], ...] = field(repr=False, default=())

    def describe(self) -> str:
        base = (
            f"seed={self.seed:<4d} backend={self.backend:<6s} "
            f"status={self.status:<9s} rows={self.rows:<5d} "
            f"faults={self.faults_injected:<3d} retries={self.retries:<3d} "
            f"quarantined={self.quarantined}"
        )
        if self.repaired or self.lifted:
            base += f"  repaired={self.repaired} lifted={self.lifted}"
        if self.healed:
            base += f"  healed={self.healed}"
        if self.error:
            base += f"  error={self.error.splitlines()[0][:80]}"
        return base


def chaos_plan(seed: int) -> FaultPlan:
    """The sweep's fault mix for one seed.

    Rates are deliberately harsh relative to real hardware so that a
    three-seed CI sweep still exercises retries, quarantine and plan
    degradation; the seed alone decides which accesses are hit.
    """
    return FaultPlan(
        seed=seed,
        transient_rate=0.03,
        corrupt_rate=0.004,
        torn_write_rate=0.01,
        latency_rate=0.02,
        latency_seconds=0.030,
    )


def _chaos_schema() -> Schema:
    return Schema(
        [
            Attribute("a1", IntEncoder(0, 1023)),
            Attribute("a2", IntEncoder(0, 1023)),
            Attribute("v", IntEncoder(0, 10**9)),
        ]
    )


def _chaos_data(rows: int, data_seed: int) -> list[tuple]:
    rng = random.Random(data_seed)
    return [(rng.randrange(1024), rng.randrange(1024), i) for i in range(rows)]


def build_world(
    fault_plan: "FaultPlan | None" = None,
    *,
    rows: int = 1200,
    data_seed: int = 0,
    buffer_pages: int = 48,
    replicas: int = 0,
    devices: int = 1,
    prefetch_depth: int = 0,
) -> tuple[Database, PhysicalDesign, list[tuple]]:
    """One logical relation in four physical instances, optionally faulty.

    Fault injection stays disarmed during loading, so the dataset is
    always pristine and a schedule's damage is a pure function of the
    query's own access pattern.  ``replicas=k`` slides a
    :class:`~repro.storage.replica.ReplicatedDisk` under the fault
    layer and captures every loaded page, so checksum failures during
    the query can be repaired in place instead of quarantined.
    ``devices``/``prefetch_depth`` arm the multi-queue
    :class:`~repro.storage.scheduler.IOScheduler` and sweep-ahead
    prefetcher (used by the ``--prefetch`` identity sweep).
    """
    schema = _chaos_schema()
    data = _chaos_data(rows, data_seed)
    db = Database(
        buffer_pages=buffer_pages,
        fault_plan=fault_plan,
        quarantine_threshold=2,
        replicas=replicas,
        devices=devices,
        prefetch_depth=prefetch_depth,
    )
    heap = db.create_heap_table("heap", schema, 40)
    heap.load(data)
    iot_a1 = db.create_iot("iot_a1", schema, key=("a1", "a2"), page_capacity=40)
    iot_a1.load(data)
    iot_a2 = db.create_iot("iot_a2", schema, key=("a2", "a1"), page_capacity=40)
    iot_a2.load(data)
    ub = db.create_ub_table("ub", schema, dims=("a1", "a2"), page_capacity=40)
    ub.load(data)
    db.buffer.flush()
    if replicas:
        db.capture_replicas()
    db.reset_measurement()
    design = PhysicalDesign(
        attributes=("a1", "a2"), heap=heap, iots={"a1": iot_a1, "a2": iot_a2}, ub=ub
    )
    return db, design, data


def _oracle_rows(data: "list[tuple]", restrictions: dict, sort_attr: str) -> list:
    """Ground truth computed directly from the in-memory dataset."""
    positions = {"a1": 0, "a2": 1, "v": 2}
    survivors = []
    for row in data:
        keep = True
        for attr, (lo, hi) in restrictions.items():
            value = row[positions[attr]]
            if (lo is not None and value < lo) or (hi is not None and value > hi):
                keep = False
                break
        if keep:
            survivors.append(row)
    return sorted(survivors, key=lambda row: row[positions[sort_attr]])


def _verify_result(
    result: QueryResult,
    baseline_rows: "list[tuple]",
    oracle: "list[tuple]",
    design: PhysicalDesign,
    seed: int,
) -> None:
    """Hold a completed run to the correctness contract."""
    rows = result.rows
    if sorted(rows) != sorted(oracle):
        missing = len(oracle) - len(rows)
        raise ChaosViolation(
            f"seed {seed}: completed query returned a wrong multiset of rows "
            f"({len(rows)} rows vs {len(oracle)} expected, delta {missing}); "
            "this is silent garbage"
        )
    if not result.degraded and rows != baseline_rows:
        raise ChaosViolation(
            f"seed {seed}: non-degraded run is not bit-identical to the "
            "fault-free run"
        )
    # order + membership via the PR-2 stream contract: encode each output
    # row into the UB space and replay it through the StreamChecker
    ub = design.ub
    if ub is not None:
        space = ub.build_query_box(QUERY["restrictions"])
        checker = StreamChecker(
            (ub.dims.index(QUERY["sort_attr"]),), False, space
        )
        for row in rows:
            checker.observe(ub.point_of(row))


def run_schedule(
    seed: int,
    *,
    backend: str | None = None,
    rows: int = 1200,
    params: "CostParameters | None" = None,
    replicas: int = 0,
) -> ChaosOutcome:
    """Run the harness query under one seeded schedule and verify it."""
    backend_name = backend or kernels.get_backend().name
    params = params or CostParameters(memory_pages=8)

    with kernels.use_backend(backend_name):
        # fault-free baseline: the exact stream a clean run produces
        _, clean_design, data = build_world(rows=rows)
        baseline = execute_sorted_query(
            clean_design, QUERY["restrictions"], QUERY["sort_attr"], params
        )
        oracle = _oracle_rows(data, QUERY["restrictions"], QUERY["sort_attr"])
        if sorted(baseline.rows) != sorted(oracle) or baseline.degraded:
            raise ChaosViolation(
                "fault-free baseline is broken; chaos results are meaningless"
            )

        db, design, _ = build_world(chaos_plan(seed), rows=rows, replicas=replicas)
        disk = db.disk
        if not isinstance(disk, FaultyDisk):  # pragma: no cover - guarded above
            raise RuntimeError("chaos world lost its FaultyDisk")
        db.arm_faults()
        try:
            result = execute_sorted_query(
                design, QUERY["restrictions"], QUERY["sort_attr"], params
            )
        except PlanExhaustedError as exc:
            return ChaosOutcome(
                seed=seed,
                backend=backend_name,
                status="failed",
                rows=0,
                faults_injected=disk.stats.faults.total_injected,
                retries=disk.stats.faults.retries,
                quarantined=disk.stats.faults.quarantined_pages,
                degradations=tuple(e.describe() for e in exc.degradations),
                error=str(exc),
                repaired=disk.stats.faults.repaired_pages,
                lifted=disk.stats.faults.quarantine_lifted,
                fault_log=tuple(disk.fault_log),
            )
        except StorageError as exc:
            # typed, but the executor should have wrapped it — still within
            # contract for the caller, so report it as a failure outcome
            return ChaosOutcome(
                seed=seed,
                backend=backend_name,
                status="failed",
                rows=0,
                faults_injected=disk.stats.faults.total_injected,
                retries=disk.stats.faults.retries,
                quarantined=disk.stats.faults.quarantined_pages,
                error=f"{type(exc).__name__}: {exc}",
                repaired=disk.stats.faults.repaired_pages,
                lifted=disk.stats.faults.quarantine_lifted,
                fault_log=tuple(disk.fault_log),
            )
        finally:
            db.disarm_faults()

        _verify_result(result, baseline.rows, oracle, design, seed)
        return ChaosOutcome(
            seed=seed,
            backend=backend_name,
            status="degraded" if result.degraded else "clean",
            rows=len(result.rows),
            faults_injected=disk.stats.faults.total_injected,
            retries=disk.stats.faults.retries,
            quarantined=disk.stats.faults.quarantined_pages,
            degradations=tuple(e.describe() for e in result.degradations),
            repaired=disk.stats.faults.repaired_pages,
            lifted=disk.stats.faults.quarantine_lifted,
            fault_log=tuple(disk.fault_log),
        )


def run_suite(
    seeds: Iterable[int] = DEFAULT_SEEDS,
    *,
    backends: "Sequence[str] | None" = None,
    rows: int = 1200,
    replicas: int = 0,
) -> list[ChaosOutcome]:
    """Sweep ``seeds`` across ``backends`` (default: all available)."""
    names = list(backends) if backends else kernels.available_backends()
    outcomes = []
    for name in names:
        for seed in seeds:
            outcomes.append(
                run_schedule(seed, backend=name, rows=rows, replicas=replicas)
            )
    return outcomes


# ----------------------------------------------------------------------
# prefetch identity sweep: corrupt prefetched == corrupt demand-fetched
# ----------------------------------------------------------------------


@dataclass
class _ScriptedRun:
    """One scripted-fault run plus the structure the identity check needs."""

    outcome: ChaosOutcome
    rows: "list[tuple] | None"  #: completed output, or None on failure
    #: (method, instance, error_type, fallback_method, fallback_instance)
    #: per degradation — error *messages* legitimately differ between the
    #: demand and prefetch paths ("read of page N" vs "prefetched read of
    #: page N"), so identity is judged on the structural trail
    trail: tuple[tuple[str, str, str, "str | None", "str | None"], ...]
    prefetch_issued: int


def _run_scripted(
    plan: FaultPlan,
    seed: int,
    backend_name: str,
    rows: int,
    params: CostParameters,
    baseline_rows: "list[tuple]",
    oracle: "list[tuple]",
    *,
    devices: int,
    prefetch_depth: int,
) -> _ScriptedRun:
    """One faulty-world run of the harness query under a scripted plan."""
    db, design, _ = build_world(
        plan, rows=rows, devices=devices, prefetch_depth=prefetch_depth
    )
    disk = db.disk
    if not isinstance(disk, FaultyDisk):  # pragma: no cover - guarded above
        raise RuntimeError("chaos world lost its FaultyDisk")
    db.arm_faults()
    try:
        result = execute_sorted_query(
            design, QUERY["restrictions"], QUERY["sort_attr"], params
        )
    except PlanExhaustedError as exc:
        outcome = ChaosOutcome(
            seed=seed,
            backend=backend_name,
            status="failed",
            rows=0,
            faults_injected=disk.stats.faults.total_injected,
            retries=disk.stats.faults.retries,
            quarantined=disk.stats.faults.quarantined_pages,
            degradations=tuple(e.describe() for e in exc.degradations),
            error=str(exc),
            fault_log=tuple(disk.fault_log),
        )
        trail = tuple(
            (e.method, e.instance, e.error_type, e.fallback_method, e.fallback_instance)
            for e in exc.degradations
        )
        return _ScriptedRun(
            outcome, None, trail, disk.stats.prefetch.prefetch_issued
        )
    finally:
        db.disarm_faults()

    _verify_result(result, baseline_rows, oracle, design, seed)
    outcome = ChaosOutcome(
        seed=seed,
        backend=backend_name,
        status="degraded" if result.degraded else "clean",
        rows=len(result.rows),
        faults_injected=disk.stats.faults.total_injected,
        retries=disk.stats.faults.retries,
        quarantined=disk.stats.faults.quarantined_pages,
        degradations=tuple(e.describe() for e in result.degradations),
        fault_log=tuple(disk.fault_log),
    )
    trail = tuple(
        (e.method, e.instance, e.error_type, e.fallback_method, e.fallback_instance)
        for e in result.degradations
    )
    return _ScriptedRun(
        outcome, result.rows, trail, disk.stats.prefetch.prefetch_issued
    )


def run_prefetch_schedule(
    seed: int,
    *,
    backend: str | None = None,
    rows: int = 1200,
    params: "CostParameters | None" = None,
) -> tuple[ChaosOutcome, ChaosOutcome]:
    """Prove a corrupt prefetched page degrades like a demand-fetched one.

    The seed picks a victim heap page inside the sweep-ahead window (so
    the prefetch world reads it speculatively, not on demand) and
    scripts a single corrupt fault on its first armed read.  The same
    scripted plan then runs twice: once on a demand-only world and once
    with four device queues and depth-8 prefetching armed.  Because
    scripted faults key on per-page access counts — not on global rate
    draws that reordered or cancelled async reads could perturb — the
    fault fires at the exact same logical access in both worlds, and
    everything observable must match: status, the structural degradation
    trail, the fault log, and (bit for bit) the output rows.

    Returns the ``(demand, prefetch)`` outcome pair after all identity
    checks pass; any divergence raises :class:`ChaosViolation`.
    """
    backend_name = backend or kernels.get_backend().name
    params = params or CostParameters(memory_pages=8)

    with kernels.use_backend(backend_name):
        _, clean_design, data = build_world(rows=rows)
        baseline = execute_sorted_query(
            clean_design, QUERY["restrictions"], QUERY["sort_attr"], params
        )
        oracle = _oracle_rows(data, QUERY["restrictions"], QUERY["sort_attr"])
        if sorted(baseline.rows) != sorted(oracle) or baseline.degraded:
            raise ChaosViolation(
                "fault-free baseline is broken; chaos results are meaningless"
            )
        if clean_design.heap is None:  # pragma: no cover - build_world makes one
            raise RuntimeError("prefetch sweep needs the heap instance")
        page_ids = clean_design.heap.heap.page_ids
        if len(page_ids) < 2:
            raise ChaosViolation(
                "prefetch sweep needs a multi-page heap to pick a victim "
                "inside the sweep-ahead window"
            )
        # a page the scan reaches only after its first prefetch top-up:
        # positions 1..8 are submitted asynchronously while page 0 is
        # still being consumed, so the fault provably hits a *prefetched*
        # read in the scheduler world
        victim = page_ids[1 + seed % min(8, len(page_ids) - 1)]
        plan = FaultPlan(seed=seed, scripted_reads=((victim, 0, CORRUPT),))

        demand = _run_scripted(
            plan, seed, backend_name, rows, params, baseline.rows, oracle,
            devices=1, prefetch_depth=0,
        )
        prefetch = _run_scripted(
            plan, seed, backend_name, rows, params, baseline.rows, oracle,
            devices=4, prefetch_depth=8,
        )

    if demand.prefetch_issued != 0:
        raise ChaosViolation(
            f"seed {seed}: demand world issued prefetches; the comparison "
            "is not demand-vs-prefetch"
        )
    if prefetch.prefetch_issued == 0:
        raise ChaosViolation(
            f"seed {seed}: prefetch world never prefetched; the identity "
            "check is vacuous"
        )
    if demand.outcome.faults_injected < 1 or prefetch.outcome.faults_injected < 1:
        raise ChaosViolation(
            f"seed {seed}: scripted corrupt fault on page {victim} never "
            "fired; the victim page was not read"
        )
    if demand.outcome.fault_log != prefetch.outcome.fault_log:
        raise ChaosViolation(
            f"seed {seed}: fault logs diverged between demand and prefetch "
            f"worlds ({demand.outcome.fault_log} vs "
            f"{prefetch.outcome.fault_log}); scripted faults must replay "
            "access-for-access"
        )
    if demand.outcome.status != prefetch.outcome.status:
        raise ChaosViolation(
            f"seed {seed}: demand world ended {demand.outcome.status!r} but "
            f"prefetch world ended {prefetch.outcome.status!r}"
        )
    if demand.trail != prefetch.trail:
        raise ChaosViolation(
            f"seed {seed}: degradation trails diverged "
            f"({demand.trail} vs {prefetch.trail})"
        )
    if demand.rows != prefetch.rows:
        raise ChaosViolation(
            f"seed {seed}: output rows are not bit-identical between the "
            "demand and prefetch worlds"
        )
    return demand.outcome, prefetch.outcome


def run_prefetch_suite(
    seeds: Iterable[int] = DEFAULT_PREFETCH_SEEDS,
    *,
    backends: "Sequence[str] | None" = None,
    rows: int = 1200,
) -> list[tuple[ChaosOutcome, ChaosOutcome]]:
    """Sweep the prefetch identity schedules across ``backends``."""
    names = list(backends) if backends else kernels.available_backends()
    pairs = []
    for name in names:
        for seed in seeds:
            pairs.append(run_prefetch_schedule(seed, backend=name, rows=rows))
    return pairs


# ----------------------------------------------------------------------
# write-heavy sweep: torn writes during WAL-journaled bulk loads
# ----------------------------------------------------------------------
def write_plan(seed: int) -> FaultPlan:
    """The write sweep's fault mix: torn writes only, at a harsh rate.

    Reads stay pristine so every divergence the sweep finds is the WAL's
    responsibility — a page the redo pass failed to heal, not collateral
    read damage.
    """
    return FaultPlan(seed=seed, torn_write_rate=0.25)


def build_write_world(
    fault_plan: "FaultPlan | None" = None,
    *,
    buffer_pages: int = 48,
) -> tuple[Database, PhysicalDesign]:
    """An *empty* WAL-armed world: the write sweep loads it under fire.

    Unlike :func:`build_world`, nothing is pre-loaded — the whole point
    is that ``bulk_load`` itself runs with torn-write faults armed and
    must end bit-identical to a fault-free load after recovery.
    """
    schema = _chaos_schema()
    db = Database(
        buffer_pages=buffer_pages,
        fault_plan=fault_plan,
        quarantine_threshold=2,
        wal=True,
    )
    heap = db.create_heap_table("heap", schema, 40)
    iot_a1 = db.create_iot("iot_a1", schema, key=("a1", "a2"), page_capacity=40)
    iot_a2 = db.create_iot("iot_a2", schema, key=("a2", "a1"), page_capacity=40)
    ub = db.create_ub_table("ub", schema, dims=("a1", "a2"), page_capacity=40)
    design = PhysicalDesign(
        attributes=("a1", "a2"), heap=heap, iots={"a1": iot_a1, "a2": iot_a2}, ub=ub
    )
    return db, design


def _load_write_world(design: PhysicalDesign, data: "list[tuple]") -> None:
    """The write workload: all four instances bulk-loaded (WAL batches)."""
    design.heap.bulk_load(data)
    design.iots["a1"].bulk_load(data)
    design.iots["a2"].bulk_load(data)
    if design.ub is not None:
        design.ub.bulk_load(data)


def _fingerprint(db: Database) -> tuple:
    """Canonical content of every allocated data page.

    Two worlds with equal fingerprints hold bit-identical record sets,
    structural payloads and physical placement — the currency in which
    the write sweep's "replayed to committed state" claim is settled.
    """
    entries = []
    for page in sorted(db.disk.iter_pages(), key=lambda p: p.page_id):
        payload = page.payload
        if payload is None:
            psig: Any = None
        elif isinstance(payload, dict):
            psig = tuple(sorted((key, repr(value)) for key, value in payload.items()))
        elif hasattr(payload, "keys") and hasattr(payload, "children"):
            psig = ("node", tuple(payload.keys), tuple(payload.children))
        else:  # pragma: no cover - no third payload shape exists today
            psig = repr(payload)
        entries.append((page.page_id, repr(page.records), psig))
    return tuple(entries)


def run_write_schedule(
    seed: int,
    *,
    backend: str | None = None,
    rows: int = 600,
    params: "CostParameters | None" = None,
) -> ChaosOutcome:
    """Bulk-load a world under seeded torn writes and verify recovery.

    Three legs, all on the same seed:

    1. *redo*: load all four instances with faults armed, run
       :meth:`~repro.relational.Database.recover`, and require the disk
       to be bit-identical to a fault-free world loaded the same way —
       then require recovery to be idempotent and the harness query to
       return exactly the oracle rows.
    2. *insert*: journaled single-row UB-Tree inserts under the same
       faults, recovered and fingerprint-checked the same way.
    3. *crash*: a fresh world whose WAL kills the process mid-load
       (:class:`~repro.storage.errors.SimulatedCrashError`); the batch
       rollback must leave the disk bit-identical to its pre-load state,
       and recovery on the rolled-back log must change nothing.
    """
    backend_name = backend or kernels.get_backend().name
    params = params or CostParameters(memory_pages=8)

    with kernels.use_backend(backend_name):
        data = _chaos_data(rows, data_seed=0)
        extras = _chaos_data(24, data_seed=1)

        # fault-free oracle, loaded through the same WAL-journaled paths
        oracle_db, oracle_design = build_write_world()
        _load_write_world(oracle_design, data)
        oracle_fp = _fingerprint(oracle_db)
        oracle_rows = _oracle_rows(data, QUERY["restrictions"], QUERY["sort_attr"])

        # leg 1: torn writes during every bulk_load, then redo recovery
        db, design = build_write_world(write_plan(seed))
        disk = db.disk
        if not isinstance(disk, FaultyDisk):  # pragma: no cover - guarded above
            raise RuntimeError("write-chaos world lost its FaultyDisk")
        db.arm_faults()
        try:
            _load_write_world(design, data)
        finally:
            db.disarm_faults()
        db.recover()
        if _fingerprint(db) != oracle_fp:
            raise ChaosViolation(
                f"seed {seed}: recovered disk is not bit-identical to a "
                "fault-free load; WAL redo missed a torn page"
            )
        again = db.recover()
        if again.healed_pages or _fingerprint(db) != oracle_fp:
            raise ChaosViolation(f"seed {seed}: recovery is not idempotent")
        # the oracle world runs the same query so that its temp-sort
        # allocations keep both worlds' page allocators in lock-step —
        # leg 2's split pages must land at the same physical addresses
        execute_sorted_query(
            oracle_design, QUERY["restrictions"], QUERY["sort_attr"], params
        )
        result = execute_sorted_query(
            design, QUERY["restrictions"], QUERY["sort_attr"], params
        )
        if result.rows != oracle_rows or result.degraded:
            raise ChaosViolation(
                f"seed {seed}: post-recovery query diverged from the oracle"
            )

        # leg 2: journaled inserts under the same torn-write schedule.
        # Recovery runs after every insert: the WAL's contract is
        # crash-consistency at *batch* granularity, and a torn page must
        # be healed before the next batch builds on top of it (pages are
        # shared objects, so a torn write damages the live page too).
        for row in extras:
            db.arm_faults()
            try:
                design.ub.insert(row)  # type: ignore[union-attr]
            finally:
                db.disarm_faults()
            db.recover()
        for row in extras:
            oracle_design.ub.insert(row)  # type: ignore[union-attr]
        if _fingerprint(db) != _fingerprint(oracle_db):
            raise ChaosViolation(
                f"seed {seed}: recovered inserts diverged from fault-free "
                "inserts; journaled insert left a half-applied split"
            )

        # leg 3: simulated crash mid-load must roll back to pristine
        crash_db, crash_design = build_write_world()
        pre_fp = _fingerprint(crash_db)
        if crash_db.wal is None:
            raise ChaosViolation("write world built without an armed WAL")
        crash_db.wal.crash_after_appends(3 + seed % 11)
        try:
            crash_design.heap.bulk_load(data)
        except SimulatedCrashError:
            pass
        else:
            raise ChaosViolation(
                f"seed {seed}: crash hook never fired during bulk_load"
            )
        if _fingerprint(crash_db) != pre_fp:
            raise ChaosViolation(
                f"seed {seed}: crashed bulk_load left a half-built heap"
            )
        crash_db.recover()
        if _fingerprint(crash_db) != pre_fp:
            raise ChaosViolation(
                f"seed {seed}: recovery disturbed a cleanly rolled-back world"
            )

        faults = disk.stats.faults
        return ChaosOutcome(
            seed=seed,
            backend=backend_name,
            status="recovered" if faults.torn_writes else "clean",
            rows=len(result.rows),
            faults_injected=faults.total_injected,
            retries=faults.retries,
            quarantined=faults.quarantined_pages,
            repaired=faults.repaired_pages,
            lifted=faults.quarantine_lifted,
            healed=faults.wal_redo_pages,
            fault_log=tuple(disk.fault_log),
        )


def run_write_suite(
    seeds: Iterable[int] = DEFAULT_WRITE_SEEDS,
    *,
    backends: "Sequence[str] | None" = None,
    rows: int = 600,
) -> list[ChaosOutcome]:
    """Sweep the write schedules across ``backends`` (default: all)."""
    names = list(backends) if backends else kernels.available_backends()
    outcomes = []
    for name in names:
        for seed in seeds:
            outcomes.append(run_write_schedule(seed, backend=name, rows=rows))
    return outcomes


# ----------------------------------------------------------------------
# shard sweep: kill/corrupt/slow one shard copy mid-scan
# ----------------------------------------------------------------------
SHARD_DIMS: tuple[str, str] = ("a1", "a2")


def shard_scenario(seed: int) -> tuple[str, str]:
    """Deterministic ``(scenario, fault)`` grid cell for one seed.

    ``seed % 3`` picks the replication scenario — ``clean`` (nothing
    armed), ``failover`` (two copies per shard, one of them faulted) or
    ``lone`` (a single copy, so the failure ladder must bottom out in a
    typed error or a flagged partial) — and ``(seed // 3) % 3`` picks
    the fault: ``kill`` (the copy dies mid-scan), ``corrupt``
    (persistent checksum damage driving quarantine) or ``slow``
    (latency injection only; the scan must still finish bit-identical).
    """
    scenario = ("clean", "failover", "lone")[seed % 3]
    fault = ("kill", "corrupt", "slow")[(seed // 3) % 3]
    return scenario, fault


def build_shard_world(
    seed: int,
    *,
    rows: int = 900,
    shards: int = 4,
    copies: int = 1,
    fault: "str | None" = None,
) -> tuple[ShardedDatabase, "list[tuple]", int]:
    """A range-sharded world, its dataset, and the faulted shard index.

    The victim shard is ``seed % shards`` — always inside the harness
    query's ``a1`` range, so the armed fault is provably on the scan
    path.  ``corrupt``/``slow`` plans are armed on the victim's primary
    copy only; ``kill`` is scheduled separately through
    :meth:`~repro.shard.ShardedDatabase.kill_copy`.
    """
    victim = seed % shards
    plans: "dict[tuple[int, int], FaultPlan] | None" = None
    if fault == "corrupt":
        plans = {(victim, 0): FaultPlan(seed=seed, corrupt_rate=0.30)}
    elif fault == "slow":
        plans = {
            (victim, 0): FaultPlan(
                seed=seed, latency_rate=0.5, latency_seconds=0.020
            )
        }
    sdb = ShardedDatabase(
        _chaos_schema(),
        SHARD_DIMS,
        "a1",
        shards=shards,
        copies=copies,
        page_capacity=32,
        quarantine_threshold=2,
        fault_plans=plans,
    )
    data = _chaos_data(rows, data_seed=0)
    sdb.load(data)
    return sdb, data, victim


def _shard_oracle(data: "list[tuple]") -> "list[tuple]":
    """The unsharded fault-free engine's exact keyed stream."""
    db = Database()
    table = db.create_ub_table("oracle", _chaos_schema(), SHARD_DIMS, 32)
    table.bulk_load(data)
    return list(
        table.tetris_scan(QUERY["restrictions"], QUERY["sort_attr"])
    )


def _verify_shard_result(
    result: ShardedScanResult,
    oracle_pairs: "list[tuple]",
    survivors: "list[tuple]",
    scenario: str,
    fault: str,
    totals: "dict[str, int]",
    seed: int,
) -> None:
    """Hold a completed sharded scan to the bit-identity contract."""
    if result.partial:
        lost = result.failed_ranges
        expected = [
            pair
            for pair in oracle_pairs
            if not any(lo <= pair[0][0] <= hi for lo, hi in lost)
        ]
        if result.rows != expected:
            raise ChaosViolation(
                f"seed {seed}: partial result is not the oracle stream minus "
                "its flagged ranges; the surviving rows are silently wrong"
            )
        if not result.degradations:
            raise ChaosViolation(
                f"seed {seed}: partial result carries no degradation events; "
                "a shard was dropped silently"
            )
        return
    if result.rows != oracle_pairs:
        raise ChaosViolation(
            f"seed {seed}: completed sharded scan is not bit-identical to "
            f"the unsharded fault-free oracle ({len(result.rows)} rows vs "
            f"{len(oracle_pairs)}); this is silent garbage"
        )
    if sorted(payload for _, payload in result.rows) != sorted(survivors):
        raise ChaosViolation(
            f"seed {seed}: sharded scan and the pure-python oracle disagree "
            "on the row multiset"
        )
    if scenario == "clean" and result.degraded:
        raise ChaosViolation(
            f"seed {seed}: fault-free sharded world reported degradations"
        )
    if scenario == "failover":
        if fault in ("kill", "corrupt") and not result.degraded:
            raise ChaosViolation(
                f"seed {seed}: armed {fault} fault never forced a "
                "degradation; the schedule is vacuous"
            )
        if fault == "slow" and totals["injected"] < 1:
            raise ChaosViolation(
                f"seed {seed}: latency plan never injected; the schedule "
                "is vacuous"
            )


def run_shard_schedule(
    seed: int,
    *,
    backend: str | None = None,
    rows: int = 900,
    shards: int = 4,
    copies: int = 2,
) -> ChaosOutcome:
    """Run the sharded harness scan under one seeded schedule.

    The seed's :func:`shard_scenario` cell decides what happens to the
    victim shard mid-scan, and the contract is graded accordingly:

    * any run that completes non-partial must be **bit-identical** to
      the unsharded fault-free oracle — across failover to a replica
      copy, cross-copy page repair, and latency injection alike;
    * a ``lone`` run (no replicas) that loses its copy must end in a
      typed :class:`~repro.shard.ShardFailedError` or — on odd seeds,
      which opt into ``allow_partial`` — a result whose
      ``failed_ranges`` exactly account for every missing row;
    * a wrong row, a silently dropped shard, or an untyped crash is a
      :class:`ChaosViolation`.
    """
    backend_name = backend or kernels.get_backend().name
    scenario, fault = shard_scenario(seed)
    effective_copies = copies if scenario == "failover" else 1
    armed_fault = None if scenario == "clean" else fault
    allow_partial = scenario == "lone" and bool(seed % 2)

    with kernels.use_backend(backend_name):
        sdb, data, victim = build_shard_world(
            seed,
            rows=rows,
            shards=shards,
            copies=effective_copies,
            fault=armed_fault,
        )
        oracle_pairs = _shard_oracle(data)
        survivors = _oracle_rows(data, QUERY["restrictions"], QUERY["sort_attr"])
        if sorted(payload for _, payload in oracle_pairs) != sorted(survivors):
            raise ChaosViolation(
                "fault-free oracle is broken; shard-chaos results are "
                "meaningless"
            )

        sdb.arm_faults()
        if armed_fault == "kill":
            sdb.kill_copy(victim, 0, after_rows=12 + seed % 25)
        try:
            result = sdb.sorted_scan(
                QUERY["restrictions"],
                QUERY["sort_attr"],
                allow_partial=allow_partial,
            )
        except ShardFailedError as exc:
            totals = sdb.fault_totals()
            return ChaosOutcome(
                seed=seed,
                backend=backend_name,
                status="failed",
                rows=0,
                faults_injected=totals["injected"],
                retries=totals["retries"],
                quarantined=totals["quarantined"],
                degradations=tuple(e.describe() for e in exc.degradations),
                error=f"shard {exc.shard}: {exc}",
                repaired=totals["repaired"],
                lifted=totals["lifted"],
            )
        finally:
            sdb.disarm_faults()

        totals = sdb.fault_totals()
        _verify_shard_result(
            result, oracle_pairs, survivors, scenario, fault, totals, seed
        )
        if armed_fault == "kill":
            states = sdb.health()
            if states[victim][0] != "dead":
                raise ChaosViolation(
                    f"seed {seed}: scheduled kill never fired; the schedule "
                    "is vacuous"
                )
        status = (
            "partial"
            if result.partial
            else ("degraded" if result.degraded else "clean")
        )
        return ChaosOutcome(
            seed=seed,
            backend=backend_name,
            status=status,
            rows=len(result.rows),
            faults_injected=totals["injected"],
            retries=totals["retries"],
            quarantined=totals["quarantined"],
            degradations=tuple(e.describe() for e in result.degradations),
            repaired=totals["repaired"],
            lifted=totals["lifted"],
        )


def run_shard_suite(
    seeds: Iterable[int] = DEFAULT_SHARD_SEEDS,
    *,
    backends: "Sequence[str] | None" = None,
    rows: int = 900,
    shards: int = 4,
    copies: int = 2,
) -> list[ChaosOutcome]:
    """Sweep the shard schedules across ``backends`` (default: all)."""
    names = list(backends) if backends else kernels.available_backends()
    outcomes = []
    for name in names:
        for seed in seeds:
            outcomes.append(
                run_shard_schedule(
                    seed, backend=name, rows=rows, shards=shards, copies=copies
                )
            )
    return outcomes


# ----------------------------------------------------------------------
# join sweep: a co-partitioned merge join under shard-copy fire
# ----------------------------------------------------------------------
#: the join sweep's pinned seeds — the same grid cells as the shard
#: sweep (clean, latency-only, failover by kill, cross-copy repair,
#: typed failure, flagged partial) but spread over both join kinds:
#: 2/6/7 run the inner merge join, 10/13/29 the merge semi-join
DEFAULT_JOIN_SEEDS: tuple[int, ...] = (2, 6, 7, 10, 13, 29)


def join_scenario(seed: int) -> tuple[str, str, str]:
    """``(scenario, fault, kind)`` for one join-sweep seed.

    The first two axes reuse :func:`shard_scenario`'s grid; the third
    picks the join kind — ``(seed // 9) % 2`` alternates between the
    inner :class:`~repro.relational.operators.MergeJoin` and the
    :class:`~repro.relational.operators.MergeSemiJoin` of Q4, so the
    pinned sweep exercises both merge loops' abandon paths.
    """
    scenario, fault = shard_scenario(seed)
    kind = ("inner", "semi")[(seed // 9) % 2]
    return scenario, fault, kind


def build_join_world(
    seed: int,
    *,
    rows: int = 500,
    shards: int = 4,
    copies: int = 1,
    fault: "str | None" = None,
) -> tuple[ShardedDatabase, ShardedDatabase, "list[tuple]", "list[tuple]", int]:
    """Two co-partitioned sharded relations plus the faulted shard index.

    Both sides are range-sharded on the join attribute ``a1`` over the
    same encoded domain, so every slab pair is join-aligned.  The fault
    is armed on the *right* (probe) side's victim copy — the side a
    pipelined merge join is mid-stream on whenever the build cursor
    advances — and the victim shard is ``seed % shards``; the join runs
    unrestricted, so the armed fault is always on the join path.  The
    right relation is twice the size of the left (duplicate join keys
    on the probe side, the usual fact-table shape).
    """
    victim = seed % shards
    plans: "dict[tuple[int, int], FaultPlan] | None" = None
    if fault == "corrupt":
        plans = {(victim, 0): FaultPlan(seed=seed, corrupt_rate=0.30)}
    elif fault == "slow":
        plans = {
            (victim, 0): FaultPlan(
                seed=seed, latency_rate=0.5, latency_seconds=0.020
            )
        }
    left = ShardedDatabase(
        _chaos_schema(),
        SHARD_DIMS,
        "a1",
        shards=shards,
        copies=copies,
        page_capacity=32,
        quarantine_threshold=2,
    )
    left_data = _chaos_data(rows, data_seed=0)
    left.load(left_data)
    right = ShardedDatabase(
        _chaos_schema(),
        SHARD_DIMS,
        "a1",
        shards=shards,
        copies=copies,
        page_capacity=32,
        quarantine_threshold=2,
        fault_plans=plans,
    )
    right_data = _chaos_data(rows * 2, data_seed=1)
    right.load(right_data)
    return left, right, left_data, right_data, victim


def _join_oracle(
    left_data: "list[tuple]", right_data: "list[tuple]", kind: str
) -> "list[tuple]":
    """The serial fault-free merge join — the sweep's ground truth."""

    def stream(data: "list[tuple]") -> "list[tuple]":
        db = Database()
        table = db.create_ub_table("oracle", _chaos_schema(), SHARD_DIMS, 32)
        table.bulk_load(data)
        return [row for _, row in table.tetris_scan(None, "a1")]

    join_cls = MergeJoin if kind == "inner" else MergeSemiJoin
    return list(
        join_cls(
            stream(left_data),
            stream(right_data),
            left_key=lambda row: row[0],
            right_key=lambda row: row[0],
        )
    )


def _verify_join_result(
    result: ShardedJoinResult,
    oracle: "list[tuple]",
    scenario: str,
    fault: str,
    totals: "dict[str, int]",
    seed: int,
) -> None:
    """Hold a completed co-partitioned join to the bit-identity contract."""
    if result.partial:
        encoder = _chaos_schema().attribute("a1").encoder
        lost = result.failed_ranges
        expected = [
            row
            for row in oracle
            if not any(lo <= encoder.encode(row[0]) <= hi for lo, hi in lost)
        ]
        if result.rows != expected:
            raise ChaosViolation(
                f"seed {seed}: partial join is not the serial join minus its "
                "flagged key ranges; the surviving rows are silently wrong"
            )
        if not result.degradations:
            raise ChaosViolation(
                f"seed {seed}: partial join carries no degradation events; "
                "a shard pair was dropped silently"
            )
        return
    if result.rows != oracle:
        raise ChaosViolation(
            f"seed {seed}: completed co-partitioned join is not bit-identical "
            f"to the serial join ({len(result.rows)} rows vs {len(oracle)}); "
            "this is silent garbage"
        )
    if scenario == "clean" and result.degraded:
        raise ChaosViolation(
            f"seed {seed}: fault-free co-partitioned join reported degradations"
        )
    if scenario == "failover":
        if fault in ("kill", "corrupt") and not result.degraded:
            raise ChaosViolation(
                f"seed {seed}: armed {fault} fault never forced a "
                "degradation; the schedule is vacuous"
            )
        if fault == "slow" and totals["injected"] < 1:
            raise ChaosViolation(
                f"seed {seed}: latency plan never injected; the schedule "
                "is vacuous"
            )


def run_join_schedule(
    seed: int,
    *,
    backend: str | None = None,
    rows: int = 500,
    shards: int = 4,
    copies: int = 2,
) -> ChaosOutcome:
    """Run one co-partitioned join under a seeded shard-copy schedule.

    The grading mirrors :func:`run_shard_schedule`, applied to the
    join's concatenated output stream:

    * any run that completes non-partial must be **bit-identical** to
      the serial merge join of the two serial sorted streams — across
      mid-join failover to a replica copy, cross-copy page repair, and
      latency injection alike;
    * a ``lone`` run that loses its probe-side copy must end in a typed
      :class:`~repro.shard.ShardFailedError` or — on odd seeds, which
      opt into ``allow_partial`` — a result whose ``failed_ranges``
      exactly account for every missing output row;
    * a wrong or reordered row, a silently dropped shard pair, or an
      untyped crash is a :class:`ChaosViolation`.
    """
    backend_name = backend or kernels.get_backend().name
    scenario, fault, kind = join_scenario(seed)
    effective_copies = copies if scenario == "failover" else 1
    armed_fault = None if scenario == "clean" else fault
    allow_partial = scenario == "lone" and bool(seed % 2)

    with kernels.use_backend(backend_name):
        left, right, left_data, right_data, victim = build_join_world(
            seed,
            rows=rows,
            shards=shards,
            copies=effective_copies,
            fault=armed_fault,
        )
        oracle = _join_oracle(left_data, right_data, kind)
        join = CoPartitionedJoin(left, right, kind=kind)
        right.arm_faults()
        if armed_fault == "kill":
            right.kill_copy(victim, 0, after_rows=12 + seed % 25)
        try:
            result = join.run(allow_partial=allow_partial)
        except ShardFailedError as exc:
            totals = right.fault_totals()
            return ChaosOutcome(
                seed=seed,
                backend=backend_name,
                status="failed",
                rows=0,
                faults_injected=totals["injected"],
                retries=totals["retries"],
                quarantined=totals["quarantined"],
                degradations=tuple(e.describe() for e in exc.degradations),
                error=f"shard {exc.shard}: {exc}",
                repaired=totals["repaired"],
                lifted=totals["lifted"],
            )
        finally:
            right.disarm_faults()

        totals = right.fault_totals()
        _verify_join_result(result, oracle, scenario, fault, totals, seed)
        if armed_fault == "kill":
            if right.health()[victim][0] != "dead":
                raise ChaosViolation(
                    f"seed {seed}: scheduled kill never fired; the schedule "
                    "is vacuous"
                )
        status = (
            "partial"
            if result.partial
            else ("degraded" if result.degraded else "clean")
        )
        return ChaosOutcome(
            seed=seed,
            backend=backend_name,
            status=status,
            rows=len(result.rows),
            faults_injected=totals["injected"],
            retries=totals["retries"],
            quarantined=totals["quarantined"],
            degradations=tuple(e.describe() for e in result.degradations),
            repaired=totals["repaired"],
            lifted=totals["lifted"],
        )


def run_join_suite(
    seeds: Iterable[int] = DEFAULT_JOIN_SEEDS,
    *,
    backends: "Sequence[str] | None" = None,
    rows: int = 500,
    shards: int = 4,
    copies: int = 2,
) -> list[ChaosOutcome]:
    """Sweep the join schedules across ``backends`` (default: all)."""
    names = list(backends) if backends else kernels.available_backends()
    outcomes = []
    for name in names:
        for seed in seeds:
            outcomes.append(
                run_join_schedule(
                    seed, backend=name, rows=rows, shards=shards, copies=copies
                )
            )
    return outcomes


# ----------------------------------------------------------------------
# txn sweep: the 2PC commit path under log-device fire, plus a seeded
# crash mid-transaction followed by a reboot and decision-log recovery
# ----------------------------------------------------------------------
#: the txn sweep's pinned seeds: 6 crashes the decision log's ack force
#: (verdict durable, recovery re-acks a fully committed transaction),
#: 23 crashes a shard WAL mid-work (presumed abort rolls everything
#: back), and 85 crashes a shard WAL's own commit record (recovery
#: resolves the in-doubt batches forward to commit) — so the default
#: sweep covers commit-through-fire plus all three recovery verdict
#: paths on both kernel backends
DEFAULT_TXN_SEEDS: tuple[int, ...] = (6, 23, 85)


def txn_plan(seed: int) -> FaultPlan:
    """Log-device fault mix for one txn-sweep seed.

    Torn and transient *appends* only — log devices refuse corrupt
    plans by contract (a checksum lie on the log would be silent
    history rewriting, not a crash), and the verified force is expected
    to absorb everything this plan throws.
    """
    return FaultPlan(seed=seed, transient_rate=0.05, torn_write_rate=0.20)


def build_txn_world(
    seed: "int | None" = None,
    *,
    shards: int = 2,
    copies: int = 1,
    page_capacity: int = 16,
) -> "tuple[ShardedDatabase, TransactionCoordinator]":
    """A WAL-armed sharded world with a 2PC coordinator attached.

    With a ``seed``, every shard WAL *and* the coordinator's decision
    log get their own derived fault plan; with ``None`` the world is
    fault-free (the sweep's oracle).
    """
    wal_plans = None
    log_plan = None
    if seed is not None:
        wal_plans = {
            (s, c): txn_plan(seed + 7 * s + c)
            for s in range(shards)
            for c in range(copies)
        }
        log_plan = txn_plan(seed + 101)
    sdb = ShardedDatabase(
        _chaos_schema(),
        SHARD_DIMS,
        "a1",
        shards=shards,
        copies=copies,
        page_capacity=page_capacity,
        wal=True,
        wal_fault_plans=wal_plans,
    )
    return sdb, TransactionCoordinator(sdb, log_fault_plan=log_plan)


def _txn_fingerprint(sdb: ShardedDatabase) -> tuple:
    """Full-domain sharded scan: the txn sweep's equality oracle."""
    result = sdb.sorted_scan({"a1": (0, 1023)}, "a2")
    if result.partial or result.degraded:
        raise ChaosViolation("txn fingerprint scan degraded unexpectedly")
    return tuple(result.rows)


def _txn_faults(sdb: ShardedDatabase, txn: TransactionCoordinator) -> int:
    """Faults injected into every log device this world owns."""
    total = sdb.fault_totals()["log_injected"]
    if isinstance(txn.log.device, FaultyDisk):
        total += txn.log.device.stats.faults.total_injected
    return total


def run_txn_schedule(
    seed: int,
    *,
    backend: "str | None" = None,
    shards: int = 2,
    copies: int = 1,
    rows: int = 200,
    extra_rows: int = 24,
) -> ChaosOutcome:
    """One seed's 2PC schedule: commit through fire, then crash+recover.

    Two legs, both against a fault-free oracle world driven through the
    identical coordinator path:

    1. *commit through fire*: an ``atomic_load`` and an
       ``atomic_insert`` run with torn/transient append faults armed on
       every shard WAL and the decision log; the verified force must
       absorb every fault and the world must land bit-identical to the
       oracle.
    2. *crash + reboot + recover*: a fresh faulted world loads, then a
       deterministic crash (seed-picked log device, seed-picked append
       countdown) kills the insert mid-protocol.  Injection stops (the
       reboot), :meth:`~repro.txn.TransactionCoordinator.recover`
       replays the decision log, and the world must land on the oracle
       (durable commit verdict) or the pre-insert baseline (presumed
       abort) — with a second recovery pass changing nothing.
    """
    backend_name = backend or kernels.get_backend().name
    with kernels.use_backend(backend_name):
        data = _chaos_data(rows, data_seed=0)
        extras = _chaos_data(extra_rows, data_seed=1)

        oracle_sdb, oracle_txn = build_txn_world(
            None, shards=shards, copies=copies
        )
        oracle_txn.atomic_load(data)
        base_fp = _txn_fingerprint(oracle_sdb)
        devices = oracle_txn.devices()
        before = {d: oracle_txn.append_count(d) for d in devices}
        oracle_txn.atomic_insert(extras)
        #: per-device appends the insert transaction makes — identical
        #: in the faulted world (fault retries re-force, they do not
        #: re-append), so the seed can aim anywhere in the protocol
        insert_appends = {
            d: oracle_txn.append_count(d) - before[d] for d in devices
        }
        oracle_fp = _txn_fingerprint(oracle_sdb)

        # leg 1: the whole commit path under seeded log-device fire
        sdb, txn = build_txn_world(seed, shards=shards, copies=copies)
        sdb.arm_faults()
        txn.log.arm_log_faults()
        try:
            txn.atomic_load(data)
            txn.atomic_insert(extras)
        finally:
            sdb.disarm_faults()
            txn.log.disarm_log_faults()
        if _txn_fingerprint(sdb) != oracle_fp:
            raise ChaosViolation(
                f"seed {seed}: committed world diverged from the oracle; "
                "a log fault leaked past the verified force"
            )
        faults = _txn_faults(sdb, txn)

        # leg 2: crash mid-insert, reboot, decision-log recovery
        sdb2, txn2 = build_txn_world(seed, shards=shards, copies=copies)
        sdb2.arm_faults()
        txn2.log.arm_log_faults()
        crashed = False
        resolved = 0
        try:
            txn2.atomic_load(data)
            # crash only on *log* devices: their appends happen strictly
            # inside transactions, so a countdown that never fires here
            # can never go off later (data-disk crash points are covered
            # exhaustively by ``tools.crashgrid``)
            log_devices = [
                device
                for device in txn2.devices()
                if not device.endswith(".disk")
            ]
            device = log_devices[seed % len(log_devices)]
            countdown = 1 + (seed // 3) % insert_appends[device]
            txn2.crash_after(device, countdown)
            try:
                txn2.atomic_insert(extras)
            except SimulatedCrashError:
                crashed = True
        finally:
            sdb2.disarm_faults()
            txn2.log.disarm_log_faults()
        faults += _txn_faults(sdb2, txn2)
        if crashed:
            report = txn2.recover()
            resolved = report.resolved_commits + report.resolved_aborts
            fp = _txn_fingerprint(sdb2)
            decided = txn2.log.decision_for("insert#1")
            expected = oracle_fp if decided == "commit" else base_fp
            if fp != expected:
                raise ChaosViolation(
                    f"seed {seed}: recovery landed on neither verdict "
                    f"(decision log says {decided!r})"
                )
            again = txn2.recover()
            if (
                again.resolved_commits
                or again.resolved_aborts
                or again.reacked
                or _txn_fingerprint(sdb2) != fp
            ):
                raise ChaosViolation(
                    f"seed {seed}: txn recovery is not idempotent"
                )
        elif _txn_fingerprint(sdb2) != oracle_fp:
            raise ChaosViolation(
                f"seed {seed}: uncrashed insert diverged from the oracle"
            )
        return ChaosOutcome(
            seed=seed,
            backend=backend_name,
            status="recovered" if crashed else "clean",
            rows=len(oracle_fp),
            faults_injected=faults,
            retries=0,
            quarantined=0,
            healed=resolved,
        )


def run_txn_suite(
    seeds: Iterable[int] = DEFAULT_TXN_SEEDS,
    *,
    backends: "Sequence[str] | None" = None,
    rows: int = 200,
) -> list[ChaosOutcome]:
    """Sweep the txn schedules across ``backends`` (default: all)."""
    names = list(backends) if backends else kernels.available_backends()
    outcomes = []
    for name in names:
        for seed in seeds:
            outcomes.append(run_txn_schedule(seed, backend=name, rows=rows))
    return outcomes
