"""Development tooling for the Tetris reproduction (not shipped with the package)."""
