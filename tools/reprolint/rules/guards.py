"""R010 — guarded shared state is only mutated with its lock reachable.

Classes annotate their concurrency contract with
``@guarded_by("_lock", "_frames", "hits", ...)``: the first argument
names the lock attribute, the rest the fields it guards.  Every
mutation of a guarded field — in-place container methods, item
assignment, ``del``, counter ``+=`` — must be *provably* under that
lock:

* lexically, inside a ``with self._lock:`` block, or
* interprocedurally, in a helper method whose every resolved call site
  holds the lock (directly or through another such helper via
  ``self``) — the greatest fixpoint computed by
  :func:`tools.reprolint.engine.dataflow.protected_methods`.

``__init__`` is exempt (no concurrent access before construction
completes).  The check is deliberately one-sided: an unresolved call
edge can hide a protected path and cause a *missed* finding, never a
false one on provably-locked code.
"""

from __future__ import annotations

import ast

from ..engine.callgraph import Project, lock_label_of
from ..engine.dataflow import protected_methods
from ..engine.symbols import ClassInfo, FunctionInfo
from ..violations import Violation
from .base import ProjectRule, register

__all__ = ["GuardedStateRule"]

#: container methods that mutate the receiver in place
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "clear",
        "sort",
        "reverse",
        "add",
        "discard",
        "update",
        "setdefault",
        "move_to_end",
        "appendleft",
        "popleft",
    }
)


def _guarded_field(expr: ast.expr, fields: tuple[str, ...]) -> str | None:
    """The field name when ``expr`` is ``self.<field>`` for a guarded field."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and expr.attr in fields
    ):
        return expr.attr
    return None


class _MutationScan:
    """Walk one method body tracking lexical locks; collect mutations."""

    def __init__(self, project: Project, fn: FunctionInfo, cls: ClassInfo) -> None:
        self.project = project
        self.fn = fn
        self.cls = cls
        self.fields = cls.guarded_fields
        #: (field, node, lexically-locked) per mutation site
        self.mutations: list[tuple[str, ast.AST, bool]] = []
        self._with_stack: list[tuple[str, str | None]] = []

    def _locked_here(self) -> bool:
        lock_attr = self.cls.guard_lock_attr
        label = self.cls.lock_attrs.get(lock_attr) if lock_attr else None
        for token, held_label in self._with_stack:
            if lock_attr is not None and token == f"self.{lock_attr}":
                return True
            if label is not None and held_label == label:
                return True
        return False

    def scan(self) -> None:
        for stmt in self.fn.node.body:
            self._stmt(stmt)

    def _stmt(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            pushed = 0
            for item in node.items:
                token = ast.unparse(item.context_expr)
                label = lock_label_of(self.project, self.fn, item.context_expr)
                self._with_stack.append((token, label))
                pushed += 1
            for child in node.body:
                self._stmt(child)
            del self._with_stack[-pushed:]
            return
        self._inspect(node)
        for field in ("body", "orelse", "finalbody"):
            for child in getattr(node, field, ()):
                self._stmt(child)
        for handler in getattr(node, "handlers", ()):
            for child in handler.body:
                self._stmt(child)

    def _note(self, field: str, node: ast.AST) -> None:
        self.mutations.append((field, node, self._locked_here()))

    def _inspect(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                self._target(target, node)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            self._target(node.target, node)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                self._target(target, node)
        # mutator method calls can appear in any expression position
        for field_name, value in ast.iter_fields(node):
            if field_name in ("body", "orelse", "finalbody", "handlers"):
                continue
            values = value if isinstance(value, list) else [value]
            for item in values:
                if not isinstance(item, ast.AST):
                    continue
                for child in ast.walk(item):
                    if (
                        isinstance(child, ast.Call)
                        and isinstance(child.func, ast.Attribute)
                        and child.func.attr in _MUTATOR_METHODS
                    ):
                        field = _guarded_field(child.func.value, self.fields)
                        if field is not None:
                            self._note(field, child)

    def _target(self, target: ast.expr, node: ast.stmt) -> None:
        field = _guarded_field(target, self.fields)
        if field is None and isinstance(target, ast.Subscript):
            field = _guarded_field(target.value, self.fields)
        if field is not None:
            self._note(field, node)


@register
class GuardedStateRule(ProjectRule):
    """Flag guarded-field mutations reachable without the declaring lock."""

    rule = "R010"
    summary = "guarded shared state mutated on a path that never takes its lock"

    def run(self, project: Project) -> list[Violation]:
        violations: list[Violation] = []
        for module in project.modules:
            for cls in module.classes.values():
                if cls.guard_lock_attr is None or not cls.guarded_fields:
                    continue
                violations.extend(self._check_class(project, cls))
        return violations

    def _check_class(self, project: Project, cls: ClassInfo) -> list[Violation]:
        lock_attr = cls.guard_lock_attr
        label = cls.lock_attrs.get(lock_attr) if lock_attr else None
        methods = [m for m in cls.methods.values() if m.name != "__init__"]
        protected = protected_methods(project, methods, label or "")
        violations: list[Violation] = []
        for method in methods:
            scan = _MutationScan(project, method, cls)
            scan.scan()
            for field, node, locked in scan.mutations:
                if locked or method in protected:
                    continue
                lock_name = label or f"self.{lock_attr}"
                violations.append(
                    Violation(
                        cls.module.path,
                        getattr(node, "lineno", cls.node.lineno),
                        getattr(node, "col_offset", 0),
                        self.rule,
                        f"`self.{field}` is guarded by `{lock_name}` "
                        f"(@guarded_by on `{cls.name}`) but this mutation in "
                        f"`{method.name}` is reachable without the lock: no "
                        f"enclosing `with self.{lock_attr}:` and at least one "
                        "call path reaches the method lock-free",
                    )
                )
        return violations
