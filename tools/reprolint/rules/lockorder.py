"""R011 — lock acquisitions respect the single declared global order.

Deadlock freedom in the engine rests on one total order over the
declared locks — the ``declare_lock_order(...)`` call in
``repro.invariants.sanitizer``.  This rule enforces three things
statically:

* exactly one ``declare_lock_order`` call with string-literal names
  exists in the linted tree (a second declaration, or a computed one,
  would silently split the ordering authority);
* every *provable* nesting — a lexical ``with a: with b:`` chain, or a
  call made while holding ``a`` to a function that transitively
  acquires ``b`` — respects the declared ranks;
* no pair of locks is ever nested in both directions (an invertible
  chain deadlocks under the right interleaving even if neither lock is
  in the declared order).

Nestings the call graph cannot prove are left to the runtime sanitizer
(``REPRO_CHECKS=1``), which sees every real acquisition — the two
halves of the toolchain share exactly this split of labor.
"""

from __future__ import annotations

import ast

from ..engine.callgraph import Project
from ..engine.dataflow import transitive_acquisitions
from ..violations import Violation
from .base import ProjectRule, register

__all__ = ["LockOrderRule"]


@register
class LockOrderRule(ProjectRule):
    """Check provable lock nestings against the declared global order."""

    rule = "R011"
    summary = "lock nesting that contradicts the declared global lock order"

    def run(self, project: Project) -> list[Violation]:
        violations: list[Violation] = []
        order = self._declared_order(project, violations)
        ranks = {name: index for index, name in enumerate(order)}
        pairs = self._collect_pairs(project)
        seen_pairs = {(outer, inner) for outer, inner, _, _ in pairs}
        reported: set[tuple[str, int, int, str]] = set()
        for outer, inner, module_path, node in pairs:
            key = (module_path, node.lineno, node.col_offset, f"{outer}->{inner}")
            if key in reported:
                continue
            if outer in ranks and inner in ranks and ranks[outer] > ranks[inner]:
                reported.add(key)
                violations.append(
                    Violation(
                        module_path,
                        node.lineno,
                        node.col_offset,
                        self.rule,
                        f"lock `{inner}` (rank {ranks[inner]}) acquired while "
                        f"holding `{outer}` (rank {ranks[outer]}); the "
                        f"declared global order is {', '.join(order)}",
                    )
                )
            elif (inner, outer) in seen_pairs and (
                outer not in ranks or inner not in ranks
            ):
                reported.add(key)
                violations.append(
                    Violation(
                        module_path,
                        node.lineno,
                        node.col_offset,
                        self.rule,
                        f"locks `{outer}` and `{inner}` are nested in both "
                        "orders across the project; an invertible chain "
                        "deadlocks under the right interleaving — add both "
                        "to declare_lock_order and nest consistently",
                    )
                )
        return violations

    def _declared_order(
        self, project: Project, violations: list[Violation]
    ) -> tuple[str, ...]:
        declarations: list[tuple[str, ast.Call, tuple[str, ...] | None]] = []
        for module in project.modules:
            for node, names in module.lock_order_calls:
                declarations.append((module.path, node, names))
        declarations.sort(key=lambda item: (item[0], item[1].lineno))
        order: tuple[str, ...] = ()
        for index, (path, node, names) in enumerate(declarations):
            if names is None:
                violations.append(
                    Violation(
                        path,
                        node.lineno,
                        node.col_offset,
                        self.rule,
                        "declare_lock_order must be called with string "
                        "literals; a computed order cannot be checked "
                        "statically",
                    )
                )
            elif index == 0:
                order = names
            else:
                violations.append(
                    Violation(
                        path,
                        node.lineno,
                        node.col_offset,
                        self.rule,
                        "more than one declare_lock_order call in the linted "
                        "tree; the global lock order must have a single "
                        "declaration",
                    )
                )
        return order

    def _collect_pairs(
        self, project: Project
    ) -> list[tuple[str, str, str, ast.AST]]:
        """(outer label, inner label, module path, anchor node) nestings."""
        acquisitions = transitive_acquisitions(project)
        pairs: list[tuple[str, str, str, ast.AST]] = []
        for fn in project.functions():
            for outer, inner, node in fn.lexical_pairs:
                pairs.append((outer, inner, fn.module.path, node))
        for site in project.call_sites:
            inner_labels = acquisitions.get(site.callee, set())
            for outer in site.held_labels:
                for inner in inner_labels:
                    if inner != outer:
                        pairs.append(
                            (outer, inner, site.caller.module.path, site.node)
                        )
        return pairs
