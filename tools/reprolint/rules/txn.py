"""R015 — 2PC discipline: participant mutations go through the coordinator.

The two-phase-commit protocol is only atomic if the
:class:`~repro.txn.TransactionCoordinator` is the *single* driver of the
participant state machine: code that calls a shard copy's participant
methods directly — opening a batch, preparing it, committing or
aborting it, or running its recovery — can commit one shard without a
durable decision, leave a prepared batch no decision record will ever
resolve, or roll back state the decision log says is committed.  Any of
those silently voids the all-or-nothing guarantee the crash-schedule
explorer proves.

Outside the ``txn/`` package (the coordinator itself) and the ``shard/``
package (which implements the participant layer and routes its own
``load``/``insert_batch``/``recover`` through the attached coordinator)
this rule therefore bans calling the mutating participant API —
``begin_participant``, ``load_participant``, ``insert_participant``,
``prepare_participant``, ``commit_participant``, ``abort_participant``
and ``recover_participant`` — on any expression.  The read-only surface
(``participant_ids``, ``participant_name``,
``participant_wal_records``, the crash hooks) stays public: observing
the protocol is fine, driving it is not.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath

from .base import FileContext, FileRule, register

__all__ = ["TxnParticipantRule"]

#: participant-state-machine mutators only the coordinator may drive
PARTICIPANT_MUTATORS = frozenset(
    {
        "begin_participant",
        "load_participant",
        "insert_participant",
        "prepare_participant",
        "commit_participant",
        "abort_participant",
        "recover_participant",
    }
)


@register
class TxnParticipantRule(FileRule):
    """Flag direct participant-API drives outside the 2PC layers."""

    rule = "R015"
    summary = "2PC participant mutation bypassing the transaction coordinator"

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        posix = PurePosixPath(ctx.path).as_posix()
        #: the coordinator drives the protocol; the shard package
        #: implements the participant layer it drives
        self._scoped = "txn/" not in posix and "shard/" not in posix

    def visit_Call(self, node: ast.Call) -> None:
        if not self._scoped:
            return
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in PARTICIPANT_MUTATORS
        ):
            self.emit(
                node,
                f"`.{func.attr}()` drives the 2PC participant state "
                "machine directly; only the transaction coordinator may "
                "— a stray begin/prepare/commit/abort/recover can commit "
                "one shard without a durable decision and silently void "
                "cross-shard atomicity",
            )
