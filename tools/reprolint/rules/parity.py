"""R004 — kernel backend parity.

Every public method of :class:`repro.kernels.base.KernelBackend` must
be overridden by *both* concrete backends, so "observationally
identical" stays checkable method-by-method and a new primitive cannot
silently fall through to a partial implementation.  Unlike the file
rules this is a cross-file check over a ``kernels/`` package directory,
so it exposes :func:`check_backend_parity` instead of AST visitors; the
registry entry exists so the rule shows up in ``--list-rules``.
"""

from __future__ import annotations

import ast
from pathlib import Path

from ..violations import Violation
from .base import ProjectRule, register

__all__ = ["BackendParityRule", "check_backend_parity"]


def _class_methods(tree: ast.Module, class_name: str) -> dict[str, int]:
    """Directly-defined method names (with line) of ``class_name``."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            return {
                item.name: item.lineno
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
    return {}


def _first_class_methods(tree: ast.Module) -> tuple[str | None, dict[str, int]]:
    """Union of method names over every class in the module."""
    methods: dict[str, int] = {}
    name: str | None = None
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            if name is None:
                name = node.name
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods.setdefault(item.name, item.lineno)
    return name, methods


def check_backend_parity(kernels_dir: Path) -> list[Violation]:
    """R004 over one ``kernels/`` package directory.

    Public methods declared on ``KernelBackend`` in ``base.py`` must be
    overridden (defined directly) by the classes in ``pure.py`` and in
    ``numpy_backend.py``.
    """
    base_path = kernels_dir / "base.py"
    if not base_path.is_file():
        return []
    base_tree = ast.parse(base_path.read_text(encoding="utf-8"))
    interface = {
        name: line
        for name, line in _class_methods(base_tree, "KernelBackend").items()
        if not name.startswith("_")
    }
    if not interface:
        return []
    violations: list[Violation] = []
    for backend_file in ("pure.py", "numpy_backend.py"):
        backend_path = kernels_dir / backend_file
        if not backend_path.is_file():
            violations.append(
                Violation(
                    str(base_path),
                    1,
                    0,
                    "R004",
                    f"kernel backend module `{backend_file}` is missing; "
                    "both backends must implement the full interface",
                )
            )
            continue
        backend_tree = ast.parse(backend_path.read_text(encoding="utf-8"))
        class_name, implemented = _first_class_methods(backend_tree)
        for method, line in sorted(interface.items()):
            if method not in implemented:
                violations.append(
                    Violation(
                        str(backend_path),
                        1,
                        0,
                        "R004",
                        f"backend class `{class_name}` does not override "
                        f"`KernelBackend.{method}` (declared at base.py:"
                        f"{line}); both backends must stay observationally "
                        "identical method-by-method",
                    )
                )
    return violations


@register
class BackendParityRule(ProjectRule):
    """Registry entry for R004; the driver calls the directory check."""

    rule = "R004"
    summary = "KernelBackend method not overridden by both kernel backends"

    def run(self, project: "object") -> list[Violation]:  # pragma: no cover
        return []  # driven per-directory by ``check_backend_parity``
