"""R014 — shard isolation: cross-shard access goes through the coordinator.

The sharded engine's failure ladder (repair → retry → failover → typed
loss) is sound only if the coordinator is the *single* authority over
shard health: code that reaches directly into another shard copy's
engine — its ``Database``, disk, buffer pool or WAL — can observe
quarantined state, read around a fault, or mutate pages behind the
repair protocol's back, silently breaking the bit-identity guarantee.

Outside the ``shard/`` package this rule therefore bans

* deep imports of shard internals (``repro.shard.coordinator`` and
  friends) — only the package facade ``repro.shard`` is public; and
* dereferencing a shard copy's engine internals (``.db``, ``.disk``,
  ``.buffer``, ``.wal``) off shard-shaped expressions (``shard``/
  ``copy`` names, ``.shards``/``.copies``/``.primary`` chains).

Typing-only imports under ``if TYPE_CHECKING:`` are exempt — they
vanish at runtime and cannot touch anything.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath

from .base import FileContext, FileRule, register

__all__ = ["ShardIsolationRule"]

#: engine internals a shard copy owns exclusively (R014)
ENGINE_INTERNALS = frozenset({"db", "disk", "buffer", "wal"})

#: names that denote one shard or one shard copy in engine idiom
_SHARDISH_NAMES = frozenset({"shard", "copy", "shard_copy"})
_SHARDISH_SUFFIXES = ("_shard", "_copy")

#: attribute chains that address the shard / copy collections
_SHARDISH_ATTRS = frozenset({"shards", "copies", "primary"})


def _is_shardish(node: ast.expr) -> bool:
    """Whether ``node`` plausibly denotes a shard or shard copy."""
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Name):
        name = node.id
        return name in _SHARDISH_NAMES or name.endswith(_SHARDISH_SUFFIXES)
    if isinstance(node, ast.Attribute):
        return node.attr in _SHARDISH_ATTRS
    return False


def _names_type_checking(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


@register
class ShardIsolationRule(FileRule):
    """Flag direct pokes at shard internals outside the shard package."""

    rule = "R014"
    summary = "cross-shard engine access bypassing the shard coordinator"

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        posix = PurePosixPath(ctx.path).as_posix()
        #: the shard package itself implements the coordinator
        self._scoped = "shard/" not in posix
        self._type_checking_depth = 0

    # -- TYPE_CHECKING tracking ----------------------------------------
    def visit_If(self, node: ast.If) -> None:
        if _names_type_checking(node.test):
            self._type_checking_depth += 1

    def depart_If(self, node: ast.If) -> None:
        if _names_type_checking(node.test):
            self._type_checking_depth -= 1

    # -- deep imports of shard internals -------------------------------
    def _check_import(self, node: ast.AST, module: str) -> None:
        if not self._scoped or self._type_checking_depth:
            return
        parts = module.split(".")
        if "shard" in parts and parts.index("shard") < len(parts) - 1:
            self.emit(
                node,
                f"`{module}` imports shard internals; only the package "
                "facade `repro.shard` is public — cross-shard behavior "
                "must go through the coordinator, which owns the failure "
                "ladder and the bit-identity guarantee",
            )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._check_import(node, alias.name)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is not None:
            self._check_import(node, node.module)

    # -- dereferencing a copy's engine internals ------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if not self._scoped:
            return
        if node.attr in ENGINE_INTERNALS and _is_shardish(node.value):
            self.emit(
                node,
                f"`.{node.attr}` dereferenced on a shard expression: a "
                "shard copy's engine (database, disk, buffer pool, WAL) "
                "is private to the coordinator — reading or mutating it "
                "directly bypasses quarantine, repair and failover "
                "accounting",
            )
