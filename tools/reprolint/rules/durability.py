"""R007/R008 — durable disk state flows through the WAL and the pool.

``R007``: engine code must not mutate the disk behind an armed WAL.
Durability rests on the write-ahead protocol: every data-page
write/free/allocation in engine code (outside ``storage/`` itself) must
sit in a function that participates in the WAL machinery
(``active_wal`` guard, ``log_image``/``log_alloc``/``log_free``
journaling), so crash recovery can replay or roll it back.  Scratch I/O
is exempt: calls charged to ``category="temp"`` (sort runs) or
``category="wal"`` (the log device itself) are not durable state.

``R008``: engine code must read data pages through the pool/scheduler.
The buffer pool (and, when armed, the I/O scheduler behind it) is the
single gate where reads are retried, checksum-verified, quarantined and
— under prefetching — claimed from device queues.  A direct
``disk.read(...)`` in engine code bypasses retry accounting, the
prefetch ledger *and* the queue model.  Maintenance reads are exempt:
``category="replica"`` (repair traffic) and ``category="wal"`` (log
replay) are infrastructure, not engine data access.
"""

from __future__ import annotations

import ast

from .base import FileContext, FileRule, register

__all__ = ["DiskMutationRule", "DiskReadRule"]

#: disk methods that mutate durable state (R007)
DISK_MUTATORS = frozenset({"write", "free", "allocate", "allocate_extent"})

#: names whose presence in a function marks it as WAL-participating (R007)
WAL_NAME_MARKERS = frozenset({"active_wal", "WriteAheadLog"})
WAL_ATTR_MARKERS = frozenset({"wal", "log_image", "log_alloc", "log_free", "touch"})

#: I/O categories whose writes are scratch, not durable state (R007)
SCRATCH_CATEGORIES = frozenset({"temp", "wal"})

#: I/O categories whose reads are maintenance, not engine data access (R008)
MAINTENANCE_READ_CATEGORIES = frozenset({"replica", "wal"})


def _category_in(node: ast.Call, categories: frozenset[str]) -> bool:
    for keyword in node.keywords:
        if (
            keyword.arg == "category"
            and isinstance(keyword.value, ast.Constant)
            and keyword.value.value in categories
        ):
            return True
    return False


@register
class DiskMutationRule(FileRule):
    """R007: disk mutations outside the WAL machinery."""

    rule = "R007"
    summary = "direct SimulatedDisk mutation in engine code bypassing an armed WAL"

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        # whether the innermost function participates in the WAL
        # machinery (pre-scanned on entry, same pattern as R006)
        self._wal_marker_stack: list[bool] = [False]

    def _references_wal(self, node: ast.AST) -> bool:
        for child in ast.walk(node):
            if isinstance(child, ast.Name) and child.id in WAL_NAME_MARKERS:
                return True
            if isinstance(child, ast.Attribute) and child.attr in WAL_ATTR_MARKERS:
                return True
        return False

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._wal_marker_stack.append(self._references_wal(node))

    def depart_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._wal_marker_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.visit_FunctionDef(node)  # type: ignore[arg-type]

    def depart_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.depart_FunctionDef(node)  # type: ignore[arg-type]

    def visit_Call(self, node: ast.Call) -> None:
        if not self.ctx.wal_scope or self._wal_marker_stack[-1]:
            return
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in DISK_MUTATORS):
            return
        owner = ast.unparse(func.value)
        if "disk" not in owner:
            return
        if _category_in(node, SCRATCH_CATEGORIES):
            return  # scratch I/O: sort runs and the log device itself
        self.emit(
            node,
            f"`{owner}.{func.attr}` mutates durable disk state in a function "
            "with no WAL participation; journal through the armed "
            "WriteAheadLog (`active_wal`/`log_image`/`log_alloc`/`log_free`) "
            "so recovery can replay or roll it back",
        )


@register
class DiskReadRule(FileRule):
    """R008: disk reads outside the BufferPool/IOScheduler gate."""

    rule = "R008"
    summary = "direct disk read in engine code bypassing the BufferPool/IOScheduler gate"

    def visit_Call(self, node: ast.Call) -> None:
        if not self.ctx.wal_scope:  # the gate itself lives in storage/
            return
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "read"):
            return
        owner = ast.unparse(func.value)
        if "disk" not in owner:
            return
        if _category_in(node, MAINTENANCE_READ_CATEGORIES):
            return  # replica repair / WAL replay infrastructure
        self.emit(
            node,
            f"`{owner}.read` bypasses the BufferPool/IOScheduler gate; engine "
            "data reads must flow through the pool (retry, checksum, "
            "quarantine, prefetch ledger) or the scheduler's device queues",
        )
