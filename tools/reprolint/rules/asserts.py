"""R005 — no bare ``assert`` guarding data-dependent invariants.

``python -O`` strips ``assert`` statements; a correctness contract that
disappears under optimization is not a contract.  Use explicit raises
or the :mod:`repro.invariants` layer, whose checks survive every
interpreter mode and respect the ``REPRO_CHECKS`` arming gate.
"""

from __future__ import annotations

import ast

from .base import FileRule, register

__all__ = ["BareAssertRule"]


@register
class BareAssertRule(FileRule):
    """Flag every ``assert`` statement: contracts must survive ``-O``."""

    rule = "R005"
    summary = "bare assert (stripped under python -O) guarding an invariant"

    def visit_Assert(self, node: ast.Assert) -> None:
        self.emit(
            node,
            "bare `assert` is stripped under `python -O`; raise explicitly "
            "or use `repro.invariants`",
        )
