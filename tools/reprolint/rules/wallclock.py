"""R001 — no wall-clock time inside the engine.

Every duration the engine reports must be charged to the simulated
clock (``storage/stats.py``); a stray ``time.time()`` or
``datetime.now()`` silently mixes host wall-clock into results that the
paper reproduction requires to be deterministic.  The rule flags both
attribute access on the ``time``/``datetime`` modules and from-imports
that smuggle a clock function in under a local name.
"""

from __future__ import annotations

import ast

from .base import FileRule, register

__all__ = ["WallClockRule"]

#: ``time`` module attributes that read the host's wall clock
WALL_CLOCK_TIME_ATTRS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)

#: ``datetime.datetime`` / ``datetime.date`` constructors that do the same
WALL_CLOCK_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})


@register
class WallClockRule(FileRule):
    """Flag host clock reads: the simulation owns time."""

    rule = "R001"
    summary = "wall-clock time in engine code (charge the simulated clock instead)"

    def visit_Attribute(self, node: ast.Attribute) -> None:
        base = node.value
        if isinstance(base, ast.Name):
            if base.id == "time" and node.attr in WALL_CLOCK_TIME_ATTRS:
                self.emit(
                    node,
                    f"`time.{node.attr}` reads the host wall clock; charge "
                    "the simulated clock (`storage/stats.py`) instead",
                )
            elif (
                base.id in ("datetime", "date")
                and node.attr in WALL_CLOCK_DATETIME_ATTRS
            ):
                self.emit(
                    node,
                    f"`{base.id}.{node.attr}` reads the host wall clock; "
                    "engine results must be simulation-deterministic",
                )
        elif (
            isinstance(base, ast.Attribute)
            and base.attr in ("datetime", "date")
            and node.attr in WALL_CLOCK_DATETIME_ATTRS
        ):
            self.emit(
                node,
                f"`{ast.unparse(node)}` reads the host wall clock; engine "
                "results must be simulation-deterministic",
            )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module != "time":
            return
        for alias in node.names:
            if alias.name in WALL_CLOCK_TIME_ATTRS:
                self.emit(
                    node,
                    f"importing `time.{alias.name}` into engine code; "
                    "charge the simulated clock instead",
                )
