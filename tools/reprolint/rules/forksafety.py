"""R012/R013 — fork discipline for the slab-parallel executor.

``R012``: no fork after threads are spawned on any call path.  A
``fork()`` while worker threads are live copies the parent's memory
mid-flight: locks held by non-forked threads stay locked forever in
the child, and the child inherits half-updated shared structures.  The
rule walks every function's statements in order with the engine's
:class:`~tools.reprolint.engine.dataflow.SequenceWalker`, carrying a
"threads may be live" flag through resolved calls; ``if`` branches are
unsequenced alternatives, loop bodies are walked twice (a spawn in
iteration *n* precedes a fork in iteration *n+1*), and with-scoped
``ThreadPoolExecutor`` blocks reset the flag at exit because the
context manager joins its workers.

``R013``: objects handed to worker processes must be fork-safe.  The
fork-side executor ships only *work descriptions* (slab indexes) to
children — everything heavy rides copy-on-write globals or the
shared-memory column store.  Every callable handed to a process pool
(``pool.map``/``submit``/``apply_async``/...) must therefore resolve to
a module-level function marked ``@fork_safe`` (the audited whitelist of
entry points whose closure state is re-derivable in the child).
Lambdas, bound methods and nested closures are rejected: they drag
unpicklable or unshared state across the process boundary.
"""

from __future__ import annotations

import ast

from ..engine.callgraph import Project
from ..engine.dataflow import SequenceWalker, transitive_flag
from ..engine.symbols import FunctionInfo
from ..violations import Violation
from .base import ProjectRule, register

__all__ = ["ForkAfterSpawnRule", "ForkShipWhitelistRule"]


@register
class ForkAfterSpawnRule(ProjectRule):
    """R012: flag forks reachable after thread spawns, across calls."""

    rule = "R012"
    summary = "process fork on a call path where threads were already spawned"

    def run(self, project: Project) -> list[Violation]:
        spawners = transitive_flag(
            project,
            lambda fn: any(
                id(node) not in fn.scoped_spawns for node in fn.spawn_nodes
            ),
        )
        forkers = transitive_flag(project, lambda fn: bool(fn.fork_nodes))
        violations: list[Violation] = []
        for fn in project.functions():
            walker = SequenceWalker(fn, spawners, forkers)
            walker.walk()
            for call in walker.violations:
                violations.append(
                    Violation(
                        fn.module.path,
                        call.lineno,
                        call.col_offset,
                        self.rule,
                        f"`{ast.unparse(call.func)}` forks the process after "
                        "threads may have been spawned on this path; forked "
                        "children inherit the spawning thread only, so locks "
                        "held by other threads stay locked forever in the "
                        "child — finish all forking before spawning threads",
                    )
                )
        return violations


@register
class ForkShipWhitelistRule(ProjectRule):
    """R013: process pools may only run module-level @fork_safe functions."""

    rule = "R013"
    summary = "non-fork-safe callable handed to a worker process pool"

    def run(self, project: Project) -> list[Violation]:
        violations: list[Violation] = []
        for fn in project.functions():
            for call, payload in fn.ship_sites:
                problem = self._vet(project, fn, payload)
                if problem is not None:
                    violations.append(
                        Violation(
                            fn.module.path,
                            call.lineno,
                            call.col_offset,
                            self.rule,
                            problem,
                        )
                    )
        return violations

    def _resolve_payload(
        self, project: Project, fn: FunctionInfo, payload: ast.expr
    ) -> FunctionInfo | None:
        if not isinstance(payload, ast.Name):
            return None
        scope: FunctionInfo | None = fn
        while scope is not None:
            if payload.id in scope.nested:
                return scope.nested[payload.id]
            scope = scope.parent
        target = fn.module.functions.get(payload.id)
        if target is not None:
            return target
        imported = fn.module.imports.get(payload.id)
        if imported is not None:
            owner = project.resolve_module(".".join(imported.split(".")[:-1]))
            if owner is not None:
                return owner.functions.get(imported.split(".")[-1])
        return None

    def _vet(
        self, project: Project, fn: FunctionInfo, payload: ast.expr
    ) -> str | None:
        """A violation message, or ``None`` when the payload is whitelisted."""
        text = ast.unparse(payload)
        if isinstance(payload, ast.Lambda):
            return (
                "a lambda is handed to a worker process pool; only "
                "module-level functions marked @fork_safe may cross the "
                "process boundary (lambdas drag closure state that is "
                "neither picklable nor shared)"
            )
        if isinstance(payload, ast.Attribute):
            return (
                f"`{text}` (a bound method or attribute lookup) is handed to "
                "a worker process pool; only module-level functions marked "
                "@fork_safe may cross the process boundary — a bound method "
                "ships its whole instance by value"
            )
        target = self._resolve_payload(project, fn, payload)
        if target is None:
            return (
                f"`{text}` cannot be resolved to a module-level @fork_safe "
                "function; everything handed to a worker process pool must "
                "be on the audited fork-safe whitelist"
            )
        if target.class_info is not None or target.parent is not None:
            return (
                f"`{text}` is not module-level (nested functions and methods "
                "capture state the forked child cannot see consistently); "
                "hand the pool a module-level @fork_safe function"
            )
        if not target.fork_safe:
            return (
                f"`{text}` is not marked @fork_safe; decorate it (after "
                "auditing that its inputs are slab indexes and its page "
                "access rides COW/shared-memory) or route the work through "
                "the sanctioned executor"
            )
        return None
