"""R003 — every mutation of ``Page.records`` pairs with a ``version`` bump.

The NumPy backend memoizes a columnar view of each page keyed on
``Page.version``.  A mutation without a bump leaves that cache stale:
scans silently return pre-mutation tuples.  The rule tracks, per
function scope, the source text of every ``X.records`` owner that is
mutated (in-place list methods, ``bisect``/``heapq`` helpers, item
assignment, ``del``) and of every ``X.version`` that is assigned; any
mutated owner with no matching bump in the same scope is reported when
the scope closes.
"""

from __future__ import annotations

import ast

from ..violations import Violation
from .base import FileContext, FileRule, register
from .hotloops import records_owner

__all__ = ["PageCacheRule"]

#: list methods that mutate ``Page.records`` in place
RECORDS_MUTATORS = frozenset(
    {"append", "extend", "insert", "pop", "remove", "clear", "sort", "reverse"}
)

#: free functions that mutate a list passed as an argument
MUTATING_FUNCTIONS = frozenset(
    {"insort", "insort_left", "insort_right", "heappush", "heappop", "heapify"}
)


@register
class PageCacheRule(FileRule):
    """Pair records mutations with version bumps, scope by scope."""

    rule = "R003"
    summary = "Page.records mutation without a paired Page.version bump"

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        # innermost-scope bookkeeping: mutated ``.records`` owners (with
        # first-mutation position) and version-bumped owners, reconciled
        # when the scope is left
        self._scope_stack: list[tuple[dict[str, tuple[int, int]], set[str]]] = [
            ({}, set())
        ]

    # ------------------------------------------------------------------
    # scope handling (mutation and bump must pair within one function)
    # ------------------------------------------------------------------
    def _leave_scope(self) -> None:
        mutated, bumped = self._scope_stack.pop()
        for owner, (line, col) in mutated.items():
            if owner in bumped:
                continue
            self.ctx.violations.append(
                Violation(
                    self.ctx.path,
                    line,
                    col,
                    self.rule,
                    f"`{owner}.records` is mutated but `{owner}.version` is "
                    "never bumped in this function; the columnar page cache "
                    "keyed on `version` goes stale",
                )
            )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._scope_stack.append(({}, set()))

    def depart_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._leave_scope()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._scope_stack.append(({}, set()))

    def depart_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._leave_scope()

    def _note_mutation(self, owner: str, node: ast.AST) -> None:
        mutated, _ = self._scope_stack[-1]
        mutated.setdefault(
            owner, (getattr(node, "lineno", 1), getattr(node, "col_offset", 0))
        )

    def _note_bump(self, owner: str) -> None:
        _, bumped = self._scope_stack[-1]
        bumped.add(owner)

    # ------------------------------------------------------------------
    # mutation and bump sites
    # ------------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in RECORDS_MUTATORS:
            owner = records_owner(func.value)
            if owner is not None:
                self._note_mutation(owner, node)
        elif isinstance(func, ast.Name) and func.id in MUTATING_FUNCTIONS:
            for arg in node.args:
                owner = records_owner(arg)
                if owner is not None:
                    self._note_mutation(owner, node)

    def _check_assign_target(self, target: ast.expr, node: ast.AST) -> None:
        owner = records_owner(target)
        if owner is not None:
            self._note_mutation(owner, node)
            return
        if isinstance(target, ast.Subscript):
            owner = records_owner(target.value)
            if owner is not None:
                self._note_mutation(owner, node)
            return
        if isinstance(target, ast.Attribute) and target.attr == "version":
            self._note_bump(ast.unparse(target.value))

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_assign_target(target, node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_assign_target(node.target, node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            owner = records_owner(target)
            if owner is None and isinstance(target, ast.Subscript):
                owner = records_owner(target.value)
            if owner is not None:
                self._note_mutation(owner, node)

    def finish(self) -> None:
        while self._scope_stack:
            self._leave_scope()
