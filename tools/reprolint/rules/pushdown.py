"""R016 — pushdown covers are built only by the planner.

Join-key interval pushdown rests on one invariant: every
:class:`~repro.core.query_space.IntervalUnionSpace` handed to a Tetris
scan was produced by :func:`repro.planner.pushdown.build_key_cover`,
which sorts, dedupes, coalesces and *budget-caps* the qualifying keys
(falling back to the convex hull rather than exceeding the interval
budget).  The engine's skip accounting and the kernels' interval
filters assume those properties — disjoint, ascending, bounded-count
intervals.  An ad-hoc ``IntervalUnionSpace(...)`` constructed elsewhere
can violate them silently (overlapping runs double-count skips,
unsorted runs break the kernels' binary searches, an unbounded interval
list defeats the whole budget design) and would scatter the pushdown
policy across layers.

Outside ``planner/pushdown.py`` this rule therefore bans

* calling ``IntervalUnionSpace(...)`` — constructing the space
  directly instead of going through :func:`pushdown_space`; and
* calling ``build_key_cover(...)`` — the cover constructor is an
  implementation detail of :func:`pushdown_space`, not a public
  entry point.

``core/query_space.py`` is exempt: it *defines* the class and may
construct canonical instances (e.g. in intersection code).  Imports of
the names and ``isinstance(space, IntervalUnionSpace)`` checks remain
legal everywhere — the kernels dispatch on the type without ever
building one.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath

from .base import FileContext, FileRule, register

__all__ = ["PushdownConstructionRule"]

#: callables whose invocation is confined to the planner (R016)
CONFINED_CALLABLES = frozenset({"IntervalUnionSpace", "build_key_cover"})

#: files allowed to construct covers / interval spaces
_CONSTRUCTION_HOMES = ("planner/pushdown.py", "core/query_space.py")


def _callee_name(func: ast.expr) -> str | None:
    """The terminal name of a call target (``f`` or ``mod.f``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


@register
class PushdownConstructionRule(FileRule):
    """Flag interval-cover construction outside the planner."""

    rule = "R016"
    summary = "pushdown interval construction outside planner/pushdown.py"

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        posix = PurePosixPath(ctx.path).as_posix()
        self._scoped = not any(posix.endswith(home) for home in _CONSTRUCTION_HOMES)

    def visit_Call(self, node: ast.Call) -> None:
        if not self._scoped:
            return
        name = _callee_name(node.func)
        if name in CONFINED_CALLABLES:
            self.emit(
                node,
                f"`{name}(...)` called outside the planner: pushdown "
                "interval covers are built only by "
                "`repro.planner.pushdown` (via `pushdown_space`), which "
                "guarantees sorted, disjoint, budget-capped intervals — "
                "the properties the sweep's skip accounting and the "
                "kernels' interval filters rely on",
            )
