"""R009 — process/serialization machinery only in the sanctioned modules.

The zero-copy contract of slab-parallel execution ("pages are never
pickled") holds because exactly two modules are allowed to touch the
process and serialization toolbox: ``planner/parallel.py`` (the
executor) and ``kernels/shm.py`` (the shared-memory column store).  An
``import multiprocessing`` / ``pickle`` / ``concurrent`` anywhere else
in engine code would open a side channel that ships pages by value and
silently reintroduces the serialization cost the executor layer exists
to remove.
"""

from __future__ import annotations

import ast

from .base import FileRule, register

__all__ = ["IpcImportRule", "R009_SANCTIONED_MODULES"]

#: modules allowed to use the process/serialization toolbox (R009):
#: the parallel executor and the shared-memory column store
R009_SANCTIONED_MODULES: tuple[str, ...] = (
    "planner/parallel.py",
    "kernels/shm.py",
)

#: import roots that ship data by value or spawn processes (R009)
IPC_MODULE_ROOTS = frozenset({"multiprocessing", "pickle", "_pickle", "concurrent"})


@register
class IpcImportRule(FileRule):
    """Flag process/serialization imports outside the executor modules."""

    rule = "R009"
    summary = "multiprocessing/pickle outside the sanctioned parallel executor modules"

    def _check_ipc_import(self, node: ast.AST, module: str) -> None:
        if not self.ctx.ipc_scope:
            return
        root = module.split(".", 1)[0]
        if root not in IPC_MODULE_ROOTS:
            return
        sanctioned = " / ".join(f"`{name}`" for name in R009_SANCTIONED_MODULES)
        self.emit(
            node,
            f"`{module}` spawns processes or ships data by value; parallel "
            "scan paths hand pages off zero-copy (COW fork + shared-memory "
            f"columns), so only the sanctioned modules ({sanctioned}) may "
            "import it",
        )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._check_ipc_import(node, alias.name)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is not None and node.level == 0:
            self._check_ipc_import(node, node.module)
