"""The reprolint rule catalogue.

Importing this package registers every rule with the central registry in
:mod:`.base` — file rules R001–R003, R005–R009 and R014–R016, the cross-file
backend-parity check R004, and the interprocedural project rules
R010–R013 driven by :mod:`tools.reprolint.engine`.

Each rule lives in its own module with a docstring explaining the
contract it enforces and why violating it corrupts the reproduction.
Registration order never affects output: the drivers sort findings and
the rule catalogue by rule id.
"""

from __future__ import annotations

from . import (  # noqa: F401  (imported for their registration side effect)
    asserts,
    durability,
    forksafety,
    guards,
    hotloops,
    ipc,
    lockorder,
    pagecache,
    parity,
    pushdown,
    resilience,
    sharding,
    txn,
    wallclock,
)
from .base import (
    Dispatcher,
    FileContext,
    FileRule,
    ProjectRule,
    all_rule_summaries,
    file_rules,
    project_rules,
)
from .ipc import R009_SANCTIONED_MODULES
from .parity import check_backend_parity

__all__ = [
    "Dispatcher",
    "FileContext",
    "FileRule",
    "ProjectRule",
    "R009_SANCTIONED_MODULES",
    "all_rule_summaries",
    "check_backend_parity",
    "file_rules",
    "project_rules",
]
