"""R002 — no per-tuple Python loops over page records in hot paths.

``core/tetris.py`` and ``core/ubtree.py`` must route batch work over
``page.records`` through the :mod:`repro.kernels` API so the NumPy
backend can vectorize it; a per-tuple loop reintroduces the exact
slowdown the kernel layer exists to remove.  Only files listed in
``HOT_PATH_FILES`` are policed — everywhere else a records loop is an
idiom, not a regression.
"""

from __future__ import annotations

import ast

from .base import FileRule, register

__all__ = ["HOT_PATH_FILES", "HotLoopRule", "records_owner"]

#: files (path suffixes, ``/``-separated) subject to the hot-path rule R002
HOT_PATH_FILES: tuple[str, ...] = ("core/tetris.py", "core/ubtree.py")


def records_owner(node: ast.expr) -> str | None:
    """Source text of ``X`` when ``node`` is the attribute ``X.records``."""
    if isinstance(node, ast.Attribute) and node.attr == "records":
        return ast.unparse(node.value)
    return None


@register
class HotLoopRule(FileRule):
    """Flag tuple-at-a-time iteration over ``.records`` in kernel hot paths."""

    rule = "R002"
    summary = "per-tuple loop over page records in a kernel-consuming hot path"

    def _iter_target(self, iter_node: ast.expr) -> str | None:
        """Owner text when an iteration runs tuple-at-a-time over records."""
        owner = records_owner(iter_node)
        if owner is not None:
            return owner
        if isinstance(iter_node, ast.Call) and isinstance(iter_node.func, ast.Name):
            if iter_node.func.id in ("enumerate", "reversed", "iter") and iter_node.args:
                return records_owner(iter_node.args[0])
        return None

    def _check_iteration(self, iter_node: ast.expr, anchor: ast.AST) -> None:
        if not self.ctx.hot_path:
            return
        owner = self._iter_target(iter_node)
        if owner is not None:
            self.emit(
                anchor,
                f"per-tuple Python loop over `{owner}.records` in a hot "
                "path; route batch work through the `repro.kernels` API",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter, node)

    def _visit_comprehension(
        self, node: ast.AST, generators: "list[ast.comprehension]"
    ) -> None:
        for comp in generators:
            self._check_iteration(comp.iter, node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension(node, node.generators)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_comprehension(node, node.generators)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension(node, node.generators)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension(node, node.generators)
