"""R006 — no silent error swallowing; retries go through the policy.

The resilience layer's guarantee is "correct results or a typed error,
never silent garbage".  A bare ``except:`` or an ``except Exception:``
whose body only passes hides the typed
:class:`~repro.storage.errors.StorageError` hierarchy, and a
hand-rolled loop around ``TransientIOError`` bypasses the
:class:`~repro.storage.retry.RetryPolicy` (whose backoff is charged to
the simulated clock) — both make fault handling unauditable.  A
function that references the retry machinery anywhere (pre-scanned on
entry) is treated as policy-driven and may catch ``TransientIOError``
inside its loops.
"""

from __future__ import annotations

import ast

from .base import FileContext, FileRule, register

__all__ = ["SwallowedErrorRule"]

#: names whose presence in a function marks its retry loop as policy-driven
RETRY_POLICY_MARKERS = frozenset(
    {"RetryPolicy", "DEFAULT_RETRY_POLICY", "NO_RETRY", "read_page_resilient"}
)


@register
class SwallowedErrorRule(FileRule):
    """Flag swallowed exceptions and policy-free retry loops."""

    rule = "R006"
    summary = "silently swallowed exception or retry loop bypassing RetryPolicy"

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        # loop nesting depth, and whether the innermost function
        # references the retry-policy machinery (pre-scanned on entry so
        # handlers anywhere in the function see the flag)
        self._loop_depth = 0
        self._depth_stack: list[int] = []
        self._retry_marker_stack: list[bool] = [False]

    def _references_retry_policy(self, node: ast.AST) -> bool:
        for child in ast.walk(node):
            if isinstance(child, ast.Name) and child.id in RETRY_POLICY_MARKERS:
                return True
            if isinstance(child, ast.Attribute) and child.attr in (
                "delays",
                "retry_policy",
            ):
                return True
        return False

    # ------------------------------------------------------------------
    # scope/loop bookkeeping
    # ------------------------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._retry_marker_stack.append(self._references_retry_policy(node))
        self._depth_stack.append(self._loop_depth)
        self._loop_depth = 0

    def depart_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._loop_depth = self._depth_stack.pop()
        self._retry_marker_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.visit_FunctionDef(node)  # type: ignore[arg-type]

    def depart_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.depart_FunctionDef(node)  # type: ignore[arg-type]

    def visit_For(self, node: ast.For) -> None:
        self._loop_depth += 1

    def depart_For(self, node: ast.For) -> None:
        self._loop_depth -= 1

    def visit_While(self, node: ast.While) -> None:
        self._loop_depth += 1

    def depart_While(self, node: ast.While) -> None:
        self._loop_depth -= 1

    # ------------------------------------------------------------------
    # handler inspection
    # ------------------------------------------------------------------
    def _handler_names(self, handler_type: ast.expr | None) -> list[str]:
        """Exception class names a handler catches (last attribute part)."""
        if handler_type is None:
            return []
        exprs = (
            list(handler_type.elts)
            if isinstance(handler_type, ast.Tuple)
            else [handler_type]
        )
        names: list[str] = []
        for expr in exprs:
            if isinstance(expr, ast.Name):
                names.append(expr.id)
            elif isinstance(expr, ast.Attribute):
                names.append(expr.attr)
        return names

    def _swallows(self, body: list[ast.stmt]) -> bool:
        """True when a handler body does nothing but pass/``...``."""
        for stmt in body:
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
                continue  # ``...`` or a string placeholder
            return False
        return True

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.emit(
                node,
                "bare `except:` hides the typed StorageError hierarchy; "
                "catch a specific exception class",
            )
            return
        names = self._handler_names(node.type)
        if (
            any(name in ("Exception", "BaseException") for name in names)
            and self._swallows(node.body)
        ):
            self.emit(
                node,
                "`except " + "/".join(names) + ": pass` silently swallows "
                "errors; handle or re-raise a typed exception",
            )
        if (
            "TransientIOError" in names
            and self._loop_depth > 0
            and not self._retry_marker_stack[-1]
        ):
            self.emit(
                node,
                "hand-rolled retry loop around `TransientIOError`; route "
                "retries through `repro.storage.retry.RetryPolicy` so "
                "backoff is bounded and charged to the simulated clock",
            )
