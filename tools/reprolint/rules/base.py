"""Rule plumbing: registry, file-rule dispatcher and shared context.

Two rule families plug into the framework:

* **File rules** (R001–R009) subclass :class:`FileRule`.  All file rules
  for one source file share a *single* AST traversal: the
  :class:`Dispatcher` walks the tree once and fans each node out to
  every rule that declared a ``visit_<NodeType>`` (pre-order) or
  ``depart_<NodeType>`` (post-order) handler.  Emission order therefore
  matches the classic single-visitor linter: node order first, then
  rule registration order within a node.
* **Project rules** (R010–R013) subclass :class:`ProjectRule` and run
  once over the whole linted tree with the interprocedural engine's
  :class:`~tools.reprolint.engine.callgraph.Project` in hand.

``@register`` fills the central registry that ``--list-rules``, the
rule-summary table ``ALL_RULES`` and the drivers all read from.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import TYPE_CHECKING, Callable, ClassVar, Iterable

from ..violations import Violation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.callgraph import Project

__all__ = [
    "Dispatcher",
    "FileContext",
    "FileRule",
    "ProjectRule",
    "all_rule_summaries",
    "file_rules",
    "project_rules",
    "register",
]

#: rule id -> one-line summary, in registration order
_SUMMARIES: dict[str, str] = {}
_FILE_RULES: list[type["FileRule"]] = []
_PROJECT_RULES: list[type["ProjectRule"]] = []


def register(rule_cls: type) -> type:
    """Class decorator adding a rule to the central registry."""
    _SUMMARIES[rule_cls.rule] = rule_cls.summary
    if issubclass(rule_cls, FileRule):
        _FILE_RULES.append(rule_cls)
    elif issubclass(rule_cls, ProjectRule):
        _PROJECT_RULES.append(rule_cls)
    else:  # pragma: no cover - registration-time programming error
        raise TypeError(f"{rule_cls!r} is neither a FileRule nor a ProjectRule")
    return rule_cls


def file_rules() -> list[type["FileRule"]]:
    return list(_FILE_RULES)


def project_rules() -> list[type["ProjectRule"]]:
    return list(_PROJECT_RULES)


def all_rule_summaries() -> dict[str, str]:
    return dict(_SUMMARIES)


class FileContext:
    """Shared per-file state handed to every file rule."""

    def __init__(self, path: str, hot_path: bool) -> None:
        self.path = path
        self.hot_path = hot_path
        posix = PurePosixPath(path).as_posix()
        #: WAL/durability rules only police engine code, not the storage
        #: layer that implements the WAL itself
        self.wal_scope = "storage/" not in posix
        #: R009 exempts the sanctioned process-parallel modules
        self.ipc_scope = not any(
            posix.endswith(allowed) for allowed in _sanctioned_ipc_modules()
        )
        self.violations: list[Violation] = []

    def emit(self, node: ast.AST, rule: str, message: str) -> None:
        self.violations.append(
            Violation(self.path, node.lineno, node.col_offset, rule, message)
        )


def _sanctioned_ipc_modules() -> tuple[str, ...]:
    from .ipc import R009_SANCTIONED_MODULES

    return R009_SANCTIONED_MODULES


class FileRule:
    """Base class for single-file rules driven by the shared traversal.

    Subclasses declare ``visit_<NodeType>``/``depart_<NodeType>``
    methods; ``finish`` runs after the walk for end-of-file
    reconciliation (R003 uses it to drain its scope stack).
    """

    rule: ClassVar[str]
    summary: ClassVar[str]

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx

    def emit(self, node: ast.AST, message: str) -> None:
        self.ctx.emit(node, self.rule, message)

    def finish(self) -> None:  # noqa: B027 - intentional no-op default
        pass


class ProjectRule:
    """Base class for interprocedural rules over the whole linted tree."""

    rule: ClassVar[str]
    summary: ClassVar[str]

    def run(self, project: "Project") -> list[Violation]:  # pragma: no cover
        raise NotImplementedError


class Dispatcher:
    """One AST walk fanning nodes out to every interested file rule."""

    def __init__(self, rules: Iterable[FileRule]) -> None:
        self._pre: dict[str, list[Callable[[ast.AST], None]]] = {}
        self._post: dict[str, list[Callable[[ast.AST], None]]] = {}
        for rule in rules:
            for name in dir(type(rule)):
                if name.startswith("visit_"):
                    self._pre.setdefault(name[6:], []).append(getattr(rule, name))
                elif name.startswith("depart_"):
                    self._post.setdefault(name[7:], []).append(getattr(rule, name))

    def walk(self, tree: ast.AST) -> None:
        self._walk(tree)

    def _walk(self, node: ast.AST) -> None:
        kind = type(node).__name__
        for handler in self._pre.get(kind, ()):  # pre-order: parents first
            handler(node)
        for child in ast.iter_child_nodes(node):
            self._walk(child)
        for handler in self._post.get(kind, ()):  # post-order: after children
            handler(node)
