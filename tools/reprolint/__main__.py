"""``python -m tools.reprolint [paths...]`` — run the project linter."""

from __future__ import annotations

import sys

from . import main

if __name__ == "__main__":
    sys.exit(main())
