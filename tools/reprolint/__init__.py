"""``reprolint``: project-specific static analysis for the Tetris engine.

The reproduction's correctness rests on a handful of cross-layer
contracts that generic linters cannot see.  ``reprolint`` walks the
Python ASTs under ``src/repro`` and mechanically enforces them:

``R001`` — no wall-clock time inside the engine.
    Every duration the engine reports must be charged to the simulated
    clock (``storage/stats.py``); a stray ``time.time()`` or
    ``datetime.now()`` silently mixes host wall-clock into results that
    the paper reproduction requires to be deterministic.

``R002`` — no per-tuple Python loops over page records in hot paths.
    ``core/tetris.py`` and ``core/ubtree.py`` must route batch work over
    ``page.records`` through the :mod:`repro.kernels` API so the NumPy
    backend can vectorize it; a per-tuple loop reintroduces the exact
    slowdown the kernel layer exists to remove.

``R003`` — every mutation of ``Page.records`` pairs with a ``version`` bump.
    The NumPy backend memoizes a columnar view of each page keyed on
    ``Page.version``.  A mutation without a bump leaves that cache
    stale: scans silently return pre-mutation tuples.

``R004`` — kernel backend parity.
    Every public method of :class:`repro.kernels.base.KernelBackend`
    must be overridden by *both* concrete backends, so "observationally
    identical" stays checkable method-by-method and a new primitive
    cannot silently fall through to a partial implementation.

``R005`` — no bare ``assert`` guarding data-dependent invariants.
    ``python -O`` strips ``assert`` statements; a correctness contract
    that disappears under optimization is not a contract.  Use explicit
    raises or the :mod:`repro.invariants` layer.

``R006`` — no silent error swallowing; retries go through the policy.
    The resilience layer's guarantee is "correct results or a typed
    error, never silent garbage".  A bare ``except:`` or an
    ``except Exception:`` whose body only passes hides the typed
    :class:`~repro.storage.errors.StorageError` hierarchy, and a
    hand-rolled loop around ``TransientIOError`` bypasses the
    :class:`~repro.storage.retry.RetryPolicy` (whose backoff is charged
    to the simulated clock) — both make fault handling unauditable.

``R007`` — engine code must not mutate the disk behind an armed WAL.
    Durability rests on the write-ahead protocol: every data-page
    write/free/allocation in engine code (outside ``storage/`` itself)
    must sit in a function that participates in the WAL machinery
    (``active_wal`` guard, ``log_image``/``log_alloc``/``log_free``
    journaling), so crash recovery can replay or roll it back.  Scratch
    I/O is exempt: calls charged to ``category="temp"`` (sort runs) or
    ``category="wal"`` (the log device itself) are not durable state.

``R008`` — engine code must read data pages through the pool/scheduler.
    The buffer pool (and, when armed, the I/O scheduler behind it) is
    the single gate where reads are retried, checksum-verified,
    quarantined and — under prefetching — claimed from device queues.
    A direct ``disk.read(...)`` in engine code (outside ``storage/``
    itself) bypasses retry accounting, the prefetch ledger *and* the
    queue model, so its cost silently escapes the multi-device overlap
    the scheduler prices.  Maintenance reads are exempt: calls charged
    to ``category="replica"`` (repair traffic) or ``category="wal"``
    (log replay) are infrastructure, not engine data access.

``R009`` — process/serialization machinery only in the sanctioned modules.
    The zero-copy contract of slab-parallel execution ("pages are never
    pickled") holds because exactly two modules are allowed to touch the
    process and serialization toolbox: ``planner/parallel.py`` (the
    executor) and ``kernels/shm.py`` (the shared-memory column store).
    An ``import multiprocessing`` / ``pickle`` / ``concurrent`` anywhere
    else in engine code would open a side channel that ships pages by
    value and silently reintroduces the serialization cost the executor
    layer exists to remove.

A finding can be suppressed by putting ``# reprolint: allow(R00X)`` (or
a blanket ``# reprolint: allow``) on the offending line.

Usage: ``python -m tools.reprolint src/repro`` — exits non-zero when any
violation is found.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "ALL_RULES",
    "HOT_PATH_FILES",
    "Violation",
    "lint_paths",
    "lint_source",
    "main",
]

#: files (path suffixes, ``/``-separated) subject to the hot-path rule R002
HOT_PATH_FILES: tuple[str, ...] = ("core/tetris.py", "core/ubtree.py")

#: ``time`` module attributes that read the host's wall clock
_WALL_CLOCK_TIME_ATTRS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)

#: ``datetime.datetime`` / ``datetime.date`` constructors that do the same
_WALL_CLOCK_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

#: list methods that mutate ``Page.records`` in place
_RECORDS_MUTATORS = frozenset(
    {"append", "extend", "insert", "pop", "remove", "clear", "sort", "reverse"}
)

#: free functions that mutate a list passed as an argument
_MUTATING_FUNCTIONS = frozenset(
    {"insort", "insort_left", "insort_right", "heappush", "heappop", "heapify"}
)

ALL_RULES: dict[str, str] = {
    "R001": "wall-clock time in engine code (charge the simulated clock instead)",
    "R002": "per-tuple loop over page records in a kernel-consuming hot path",
    "R003": "Page.records mutation without a paired Page.version bump",
    "R004": "KernelBackend method not overridden by both kernel backends",
    "R005": "bare assert (stripped under python -O) guarding an invariant",
    "R006": "silently swallowed exception or retry loop bypassing RetryPolicy",
    "R007": "direct SimulatedDisk mutation in engine code bypassing an armed WAL",
    "R008": "direct disk read in engine code bypassing the BufferPool/IOScheduler gate",
    "R009": "multiprocessing/pickle outside the sanctioned parallel executor modules",
}

#: modules allowed to use the process/serialization toolbox (R009):
#: the parallel executor and the shared-memory column store
R009_SANCTIONED_MODULES: tuple[str, ...] = (
    "planner/parallel.py",
    "kernels/shm.py",
)

#: import roots that ship data by value or spawn processes (R009)
_IPC_MODULE_ROOTS = frozenset(
    {"multiprocessing", "pickle", "_pickle", "concurrent"}
)

#: names whose presence in a function marks its retry loop as policy-driven
_RETRY_POLICY_MARKERS = frozenset(
    {"RetryPolicy", "DEFAULT_RETRY_POLICY", "NO_RETRY", "read_page_resilient"}
)

#: disk methods that mutate durable state (R007)
_DISK_MUTATORS = frozenset({"write", "free", "allocate", "allocate_extent"})

#: names whose presence in a function marks it as WAL-participating (R007)
_WAL_NAME_MARKERS = frozenset({"active_wal", "WriteAheadLog"})
_WAL_ATTR_MARKERS = frozenset({"wal", "log_image", "log_alloc", "log_free", "touch"})

#: I/O categories whose writes are scratch, not durable state (R007)
_SCRATCH_CATEGORIES = frozenset({"temp", "wal"})

#: I/O categories whose reads are maintenance, not engine data access (R008)
_MAINTENANCE_READ_CATEGORIES = frozenset({"replica", "wal"})


@dataclass(frozen=True)
class Violation:
    """One finding: ``path:line:col: rule message``."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def _suppressed(source_lines: Sequence[str], violation: Violation) -> bool:
    if not 1 <= violation.line <= len(source_lines):
        return False
    text = source_lines[violation.line - 1]
    index = text.find("# reprolint: allow")
    if index < 0:
        return False
    rest = text[index + len("# reprolint: allow") :].strip()
    return rest == "" or violation.rule in rest


def _records_owner(node: ast.expr) -> str | None:
    """Source text of ``X`` when ``node`` is the attribute ``X.records``."""
    if isinstance(node, ast.Attribute) and node.attr == "records":
        return ast.unparse(node.value)
    return None


class _FileChecker(ast.NodeVisitor):
    """Per-file rules: R001, R002 (hot paths only), R003, R005-R009."""

    def __init__(self, path: str, hot_path: bool) -> None:
        self.path = path
        self.hot_path = hot_path
        posix = Path(path).as_posix()
        #: R007 applies to engine code *outside* the storage layer: the
        #: storage package is where the WAL/replica machinery itself
        #: lives and must touch the disk directly
        self.wal_scope = "storage/" not in posix
        #: R009 applies everywhere except the sanctioned executor/shm
        #: modules (the only places allowed to fork or serialize)
        self.ipc_scope = not any(
            posix.endswith(suffix) for suffix in R009_SANCTIONED_MODULES
        )
        self.violations: list[Violation] = []
        # R003 bookkeeping for the innermost function (or module) scope:
        # source text of mutated ``.records`` owners and version-bumped
        # owners; reconciled when the scope is left.
        self._scope_stack: list[tuple[dict[str, tuple[int, int]], set[str]]] = [
            ({}, set())
        ]
        # R006 bookkeeping: loop nesting depth, and whether the innermost
        # function references the retry-policy machinery (pre-scanned on
        # entry so handlers anywhere in the function see the flag).
        self._loop_depth = 0
        self._retry_marker_stack: list[bool] = [False]
        # R007 bookkeeping: whether the innermost function participates
        # in the WAL machinery (same pre-scan pattern as R006)
        self._wal_marker_stack: list[bool] = [False]

    def _emit(self, node: ast.AST, rule: str, message: str) -> None:
        self.violations.append(
            Violation(
                self.path,
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0),
                rule,
                message,
            )
        )

    # ------------------------------------------------------------------
    # scope handling (R003 pairs mutation and bump within one function)
    # ------------------------------------------------------------------
    def _enter_scope(self) -> None:
        self._scope_stack.append(({}, set()))

    def _leave_scope(self) -> None:
        mutated, bumped = self._scope_stack.pop()
        for owner, (line, col) in mutated.items():
            if owner in bumped:
                continue
            self.violations.append(
                Violation(
                    self.path,
                    line,
                    col,
                    "R003",
                    f"`{owner}.records` is mutated but `{owner}.version` is "
                    "never bumped in this function; the columnar page cache "
                    "keyed on `version` goes stale",
                )
            )

    def _references_retry_policy(self, node: ast.AST) -> bool:
        for child in ast.walk(node):
            if isinstance(child, ast.Name) and child.id in _RETRY_POLICY_MARKERS:
                return True
            if isinstance(child, ast.Attribute) and child.attr in (
                "delays",
                "retry_policy",
            ):
                return True
        return False

    def _references_wal(self, node: ast.AST) -> bool:
        for child in ast.walk(node):
            if isinstance(child, ast.Name) and child.id in _WAL_NAME_MARKERS:
                return True
            if isinstance(child, ast.Attribute) and child.attr in _WAL_ATTR_MARKERS:
                return True
        return False

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_scope()
        self._retry_marker_stack.append(self._references_retry_policy(node))
        self._wal_marker_stack.append(self._references_wal(node))
        outer_depth, self._loop_depth = self._loop_depth, 0
        self.generic_visit(node)
        self._loop_depth = outer_depth
        self._retry_marker_stack.pop()
        self._wal_marker_stack.pop()
        self._leave_scope()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_scope()
        self._retry_marker_stack.append(self._references_retry_policy(node))
        self._wal_marker_stack.append(self._references_wal(node))
        outer_depth, self._loop_depth = self._loop_depth, 0
        self.generic_visit(node)
        self._loop_depth = outer_depth
        self._retry_marker_stack.pop()
        self._wal_marker_stack.pop()
        self._leave_scope()

    def _note_mutation(self, owner: str, node: ast.AST) -> None:
        mutated, _ = self._scope_stack[-1]
        mutated.setdefault(
            owner, (getattr(node, "lineno", 1), getattr(node, "col_offset", 0))
        )

    def _note_bump(self, owner: str) -> None:
        _, bumped = self._scope_stack[-1]
        bumped.add(owner)

    # ------------------------------------------------------------------
    # R001: wall-clock time sources
    # ------------------------------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        base = node.value
        if isinstance(base, ast.Name):
            if base.id == "time" and node.attr in _WALL_CLOCK_TIME_ATTRS:
                self._emit(
                    node,
                    "R001",
                    f"`time.{node.attr}` reads the host wall clock; charge "
                    "the simulated clock (`storage/stats.py`) instead",
                )
            elif (
                base.id in ("datetime", "date")
                and node.attr in _WALL_CLOCK_DATETIME_ATTRS
            ):
                self._emit(
                    node,
                    "R001",
                    f"`{base.id}.{node.attr}` reads the host wall clock; "
                    "engine results must be simulation-deterministic",
                )
        elif (
            isinstance(base, ast.Attribute)
            and base.attr in ("datetime", "date")
            and node.attr in _WALL_CLOCK_DATETIME_ATTRS
        ):
            self._emit(
                node,
                "R001",
                f"`{ast.unparse(node)}` reads the host wall clock; engine "
                "results must be simulation-deterministic",
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                if alias.name in _WALL_CLOCK_TIME_ATTRS:
                    self._emit(
                        node,
                        "R001",
                        f"importing `time.{alias.name}` into engine code; "
                        "charge the simulated clock instead",
                    )
        if node.module is not None and node.level == 0:
            self._check_ipc_import(node, node.module)
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # R009: process/serialization machinery outside the executor modules
    # ------------------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._check_ipc_import(node, alias.name)
        self.generic_visit(node)

    def _check_ipc_import(self, node: ast.AST, module: str) -> None:
        if not self.ipc_scope:
            return
        root = module.split(".", 1)[0]
        if root not in _IPC_MODULE_ROOTS:
            return
        sanctioned = " / ".join(f"`{name}`" for name in R009_SANCTIONED_MODULES)
        self._emit(
            node,
            "R009",
            f"`{module}` spawns processes or ships data by value; parallel "
            "scan paths hand pages off zero-copy (COW fork + shared-memory "
            f"columns), so only the sanctioned modules ({sanctioned}) may "
            "import it",
        )

    # ------------------------------------------------------------------
    # R002: per-tuple loops over page records in hot paths
    # ------------------------------------------------------------------
    def _iter_target(self, iter_node: ast.expr) -> str | None:
        """Owner text when an iteration runs tuple-at-a-time over records."""
        owner = _records_owner(iter_node)
        if owner is not None:
            return owner
        if isinstance(iter_node, ast.Call) and isinstance(iter_node.func, ast.Name):
            if iter_node.func.id in ("enumerate", "reversed", "iter") and iter_node.args:
                return _records_owner(iter_node.args[0])
        return None

    def _check_iteration(self, iter_node: ast.expr, anchor: ast.AST) -> None:
        if not self.hot_path:
            return
        owner = self._iter_target(iter_node)
        if owner is not None:
            self._emit(
                anchor,
                "R002",
                f"per-tuple Python loop over `{owner}.records` in a hot "
                "path; route batch work through the `repro.kernels` API",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter, node)
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_While(self, node: ast.While) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def _visit_comprehension(
        self, node: ast.AST, generators: "list[ast.comprehension]"
    ) -> None:
        for comp in generators:
            self._check_iteration(comp.iter, node)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension(node, node.generators)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_comprehension(node, node.generators)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension(node, node.generators)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension(node, node.generators)

    # ------------------------------------------------------------------
    # R003: records mutations and version bumps
    # ------------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _RECORDS_MUTATORS:
            owner = _records_owner(func.value)
            if owner is not None:
                self._note_mutation(owner, node)
        elif isinstance(func, ast.Name) and func.id in _MUTATING_FUNCTIONS:
            for arg in node.args:
                owner = _records_owner(arg)
                if owner is not None:
                    self._note_mutation(owner, node)
        self._check_disk_mutation(node)
        self._check_disk_read(node)
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # R007: disk mutations outside the WAL machinery
    # ------------------------------------------------------------------
    def _check_disk_mutation(self, node: ast.Call) -> None:
        if not self.wal_scope or self._wal_marker_stack[-1]:
            return
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in _DISK_MUTATORS):
            return
        owner = ast.unparse(func.value)
        if "disk" not in owner:
            return
        for keyword in node.keywords:
            if (
                keyword.arg == "category"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value in _SCRATCH_CATEGORIES
            ):
                return  # scratch I/O: sort runs and the log device itself
        self._emit(
            node,
            "R007",
            f"`{owner}.{func.attr}` mutates durable disk state in a function "
            "with no WAL participation; journal through the armed "
            "WriteAheadLog (`active_wal`/`log_image`/`log_alloc`/`log_free`) "
            "so recovery can replay or roll it back",
        )

    # ------------------------------------------------------------------
    # R008: disk reads outside the BufferPool/IOScheduler gate
    # ------------------------------------------------------------------
    def _check_disk_read(self, node: ast.Call) -> None:
        if not self.wal_scope:  # the gate itself lives in storage/
            return
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "read"):
            return
        owner = ast.unparse(func.value)
        if "disk" not in owner:
            return
        for keyword in node.keywords:
            if (
                keyword.arg == "category"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value in _MAINTENANCE_READ_CATEGORIES
            ):
                return  # replica repair / WAL replay infrastructure
        self._emit(
            node,
            "R008",
            f"`{owner}.read` bypasses the BufferPool/IOScheduler gate; engine "
            "data reads must flow through the pool (retry, checksum, "
            "quarantine, prefetch ledger) or the scheduler's device queues",
        )

    def _check_assign_target(self, target: ast.expr, node: ast.AST) -> None:
        owner = _records_owner(target)
        if owner is not None:
            self._note_mutation(owner, node)
            return
        if isinstance(target, ast.Subscript):
            owner = _records_owner(target.value)
            if owner is not None:
                self._note_mutation(owner, node)
            return
        if isinstance(target, ast.Attribute) and target.attr == "version":
            self._note_bump(ast.unparse(target.value))

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_assign_target(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_assign_target(node.target, node)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            owner = _records_owner(target)
            if owner is None and isinstance(target, ast.Subscript):
                owner = _records_owner(target.value)
            if owner is not None:
                self._note_mutation(owner, node)
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # R006: swallowed exceptions and policy-free retry loops
    # ------------------------------------------------------------------
    def _handler_names(self, handler_type: ast.expr | None) -> list[str]:
        """Exception class names a handler catches (last attribute part)."""
        if handler_type is None:
            return []
        exprs = (
            list(handler_type.elts)
            if isinstance(handler_type, ast.Tuple)
            else [handler_type]
        )
        names: list[str] = []
        for expr in exprs:
            if isinstance(expr, ast.Name):
                names.append(expr.id)
            elif isinstance(expr, ast.Attribute):
                names.append(expr.attr)
        return names

    def _swallows(self, body: list[ast.stmt]) -> bool:
        """True when a handler body does nothing but pass/``...``."""
        for stmt in body:
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
                continue  # ``...`` or a string placeholder
            return False
        return True

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._emit(
                node,
                "R006",
                "bare `except:` hides the typed StorageError hierarchy; "
                "catch a specific exception class",
            )
        else:
            names = self._handler_names(node.type)
            if (
                any(name in ("Exception", "BaseException") for name in names)
                and self._swallows(node.body)
            ):
                self._emit(
                    node,
                    "R006",
                    "`except " + "/".join(names) + ": pass` silently swallows "
                    "errors; handle or re-raise a typed exception",
                )
            if (
                "TransientIOError" in names
                and self._loop_depth > 0
                and not self._retry_marker_stack[-1]
            ):
                self._emit(
                    node,
                    "R006",
                    "hand-rolled retry loop around `TransientIOError`; route "
                    "retries through `repro.storage.retry.RetryPolicy` so "
                    "backoff is bounded and charged to the simulated clock",
                )
        self.generic_visit(node)

    # ------------------------------------------------------------------
    # R005: bare asserts
    # ------------------------------------------------------------------
    def visit_Assert(self, node: ast.Assert) -> None:
        self._emit(
            node,
            "R005",
            "bare `assert` is stripped under `python -O`; raise explicitly "
            "or use `repro.invariants`",
        )
        self.generic_visit(node)

    def finish(self) -> list[Violation]:
        while self._scope_stack:
            self._leave_scope()
        return self.violations


def _is_hot_path(path: Path) -> bool:
    posix = path.as_posix()
    return any(posix.endswith(suffix) for suffix in HOT_PATH_FILES)


def lint_source(
    source: str, path: str = "<string>", *, hot_path: bool | None = None
) -> list[Violation]:
    """Lint one file's source with the per-file rules (R001/2/3/5)."""
    if hot_path is None:
        hot_path = _is_hot_path(Path(path))
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            Violation(
                path, error.lineno or 1, error.offset or 0, "E999", str(error.msg)
            )
        ]
    checker = _FileChecker(path, hot_path)
    checker.visit(tree)
    lines = source.splitlines()
    return [v for v in checker.finish() if not _suppressed(lines, v)]


# ----------------------------------------------------------------------
# R004: kernel backend parity (cross-file, introspection over the ASTs)
# ----------------------------------------------------------------------
def _class_methods(tree: ast.Module, class_name: str) -> dict[str, int]:
    """Directly-defined method names (with line) of ``class_name``."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            return {
                item.name: item.lineno
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
    return {}


def _first_class_methods(tree: ast.Module) -> tuple[str | None, dict[str, int]]:
    """Union of method names over every class in the module."""
    methods: dict[str, int] = {}
    name: str | None = None
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            if name is None:
                name = node.name
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods.setdefault(item.name, item.lineno)
    return name, methods


def check_backend_parity(kernels_dir: Path) -> list[Violation]:
    """R004 over one ``kernels/`` package directory.

    Public methods declared on ``KernelBackend`` in ``base.py`` must be
    overridden (defined directly) by the classes in ``pure.py`` and in
    ``numpy_backend.py``.
    """
    base_path = kernels_dir / "base.py"
    if not base_path.is_file():
        return []
    base_tree = ast.parse(base_path.read_text(encoding="utf-8"))
    interface = {
        name: line
        for name, line in _class_methods(base_tree, "KernelBackend").items()
        if not name.startswith("_")
    }
    if not interface:
        return []
    violations: list[Violation] = []
    for backend_file in ("pure.py", "numpy_backend.py"):
        backend_path = kernels_dir / backend_file
        if not backend_path.is_file():
            violations.append(
                Violation(
                    str(base_path),
                    1,
                    0,
                    "R004",
                    f"kernel backend module `{backend_file}` is missing; "
                    "both backends must implement the full interface",
                )
            )
            continue
        backend_tree = ast.parse(backend_path.read_text(encoding="utf-8"))
        class_name, implemented = _first_class_methods(backend_tree)
        for method, line in sorted(interface.items()):
            if method not in implemented:
                violations.append(
                    Violation(
                        str(backend_path),
                        1,
                        0,
                        "R004",
                        f"backend class `{class_name}` does not override "
                        f"`KernelBackend.{method}` (declared at base.py:"
                        f"{line}); both backends must stay observationally "
                        "identical method-by-method",
                    )
                )
    return violations


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def _python_files(root: Path) -> Iterator[Path]:
    if root.is_file():
        if root.suffix == ".py":
            yield root
        return
    yield from sorted(root.rglob("*.py"))


def lint_paths(paths: Iterable[str | Path]) -> list[Violation]:
    """Lint every Python file under ``paths``; returns all findings."""
    violations: list[Violation] = []
    kernels_dirs: set[Path] = set()
    for raw in paths:
        root = Path(raw)
        if not root.exists():
            raise FileNotFoundError(f"no such path: {root}")
        for path in _python_files(root):
            source = path.read_text(encoding="utf-8")
            violations.extend(lint_source(source, str(path)))
            if path.name == "base.py" and path.parent.name == "kernels":
                kernels_dirs.add(path.parent)
    for kernels_dir in sorted(kernels_dirs):
        violations.extend(check_backend_parity(kernels_dir))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="Project-specific static analysis for the Tetris engine.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"], help="files or directories to lint"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    options = parser.parse_args(argv)
    if options.list_rules:
        for rule, summary in sorted(ALL_RULES.items()):
            print(f"{rule}: {summary}")
        return 0
    violations = lint_paths(options.paths)
    for violation in violations:
        print(violation)
    if violations:
        print(f"reprolint: {len(violations)} violation(s) found")
        return 1
    print("reprolint: clean")
    return 0
