"""``reprolint``: project-specific static analysis for the Tetris engine.

The reproduction's correctness rests on a handful of cross-layer
contracts that generic linters cannot see.  ``reprolint`` walks the
Python ASTs under ``src/repro`` and mechanically enforces them:

``R001`` — no wall-clock time inside the engine.
``R002`` — no per-tuple Python loops over page records in hot paths.
``R003`` — every mutation of ``Page.records`` pairs with a ``version`` bump.
``R004`` — kernel backend parity.
``R005`` — no bare ``assert`` guarding data-dependent invariants.
``R006`` — no silent error swallowing; retries go through the policy.
``R007`` — engine code must not mutate the disk behind an armed WAL.
``R008`` — engine code must read data pages through the pool/scheduler.
``R009`` — process/serialization machinery only in the sanctioned modules.
``R010`` — guarded shared state is only mutated with its lock reachable.
``R011`` — lock acquisitions respect the single declared global order.
``R012`` — no fork after threads are spawned on any call path.
``R013`` — process pools only run module-level ``@fork_safe`` functions.
``R014`` — cross-shard engine access goes through the shard coordinator.
``R015`` — 2PC participant mutations go through the transaction coordinator.
``R016`` — pushdown interval covers are built only by ``planner/pushdown.py``.

Each rule's contract and rationale live in its module under
:mod:`tools.reprolint.rules`.  R001–R009 and R014–R016 are single-file
rules sharing one AST traversal per file; R010–R013 are interprocedural,
driven by
the symbol-table/call-graph/dataflow engine in
:mod:`tools.reprolint.engine` over the whole linted tree at once.

A finding can be suppressed by putting ``# reprolint: allow(R00X)`` (or
a blanket ``# reprolint: allow``) on the offending line.

Usage: ``python -m tools.reprolint src/repro`` — exits non-zero when any
violation is found.  ``--json`` emits a machine-readable report;
``--github`` emits GitHub Actions ``::error`` annotations.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from .engine import ModuleInfo, build_module, build_project
from .rules import (
    Dispatcher,
    FileContext,
    R009_SANCTIONED_MODULES,
    all_rule_summaries,
    check_backend_parity,
    file_rules,
    project_rules,
)
from .rules.hotloops import HOT_PATH_FILES
from .violations import Violation, suppressed as _suppressed

__all__ = [
    "ALL_RULES",
    "HOT_PATH_FILES",
    "Violation",
    "lint_paths",
    "lint_source",
    "main",
]

#: rule id -> one-line summary, R001 first
ALL_RULES: dict[str, str] = dict(sorted(all_rule_summaries().items()))


def _is_hot_path(path: Path) -> bool:
    posix = path.as_posix()
    return any(posix.endswith(suffix) for suffix in HOT_PATH_FILES)


def _run_file_rules(tree: ast.Module, path: str, hot_path: bool) -> list[Violation]:
    """One shared traversal feeding every registered file rule."""
    ctx = FileContext(path, hot_path)
    rules = [rule_cls(ctx) for rule_cls in file_rules()]
    Dispatcher(rules).walk(tree)
    for rule in rules:
        rule.finish()
    return ctx.violations


def lint_source(
    source: str, path: str = "<string>", *, hot_path: bool | None = None
) -> list[Violation]:
    """Lint one file's source with the per-file rules (R001/2/3/5-9)."""
    if hot_path is None:
        hot_path = _is_hot_path(Path(path))
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            Violation(
                path, error.lineno or 1, error.offset or 0, "E999", str(error.msg)
            )
        ]
    violations = _run_file_rules(tree, path, hot_path)
    lines = source.splitlines()
    return [v for v in violations if not _suppressed(lines, v)]


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def _python_files(root: Path) -> Iterator[Path]:
    if root.is_file():
        if root.suffix == ".py":
            yield root
        return
    yield from sorted(root.rglob("*.py"))


def lint_paths(paths: Iterable[str | Path]) -> list[Violation]:
    """Lint every Python file under ``paths``; returns all findings.

    Runs the per-file rules on each file, the backend-parity check R004
    on every ``kernels/`` package found, and the interprocedural project
    rules R010–R013 over all parseable files together.
    """
    violations: list[Violation] = []
    kernels_dirs: set[Path] = set()
    modules: list[ModuleInfo] = []
    for raw in paths:
        root = Path(raw)
        if not root.exists():
            raise FileNotFoundError(f"no such path: {root}")
        for path in _python_files(root):
            source = path.read_text(encoding="utf-8")
            name = str(path)
            try:
                tree = ast.parse(source, filename=name)
            except SyntaxError as error:
                violations.append(
                    Violation(
                        name,
                        error.lineno or 1,
                        error.offset or 0,
                        "E999",
                        str(error.msg),
                    )
                )
                continue
            lines = source.splitlines()
            violations.extend(
                v
                for v in _run_file_rules(tree, name, _is_hot_path(path))
                if not _suppressed(lines, v)
            )
            modules.append(build_module(name, source, tree))
            if path.name == "base.py" and path.parent.name == "kernels":
                kernels_dirs.add(path.parent)
    for kernels_dir in sorted(kernels_dirs):
        violations.extend(check_backend_parity(kernels_dir))
    if modules:
        project = build_project(modules)
        lines_by_path = {module.path: module.source_lines for module in modules}
        for rule_cls in project_rules():
            for violation in rule_cls().run(project):
                lines = lines_by_path.get(violation.path, [])
                if not _suppressed(lines, violation):
                    violations.append(violation)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations


def _print_github(violations: list[Violation]) -> None:
    for violation in violations:
        print(
            f"::error file={violation.path},line={violation.line},"
            f"col={violation.col},title=reprolint {violation.rule}::"
            f"{violation.message}"
        )


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="Project-specific static analysis for the Tetris engine.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"], help="files or directories to lint"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    output = parser.add_mutually_exclusive_group()
    output.add_argument(
        "--json",
        action="store_true",
        help="emit findings as a JSON document instead of text",
    )
    output.add_argument(
        "--github",
        action="store_true",
        help="emit findings as GitHub Actions ::error annotations",
    )
    options = parser.parse_args(argv)
    if options.list_rules:
        for rule, summary in sorted(ALL_RULES.items()):
            print(f"{rule}: {summary}")
        return 0
    violations = lint_paths(options.paths)
    if options.json:
        print(
            json.dumps(
                {
                    "violations": [v.as_dict() for v in violations],
                    "count": len(violations),
                },
                indent=2,
            )
        )
        return 1 if violations else 0
    if options.github:
        _print_github(violations)
        if violations:
            print(f"reprolint: {len(violations)} violation(s) found")
            return 1
        print("reprolint: clean")
        return 0
    for violation in violations:
        print(violation)
    if violations:
        print(f"reprolint: {len(violations)} violation(s) found")
        return 1
    print("reprolint: clean")
    return 0
