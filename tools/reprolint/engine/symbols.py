"""Per-module symbol tables: the engine's first pass.

One :class:`ModuleInfo` per linted file records everything the
interprocedural passes need without re-walking the AST:

* every class with its base names, methods, ``@guarded_by`` annotation
  (lock attribute + guarded fields) and declared lock attributes
  (``self._lock = tracked_lock("buffer-pool")``);
* every function/method with its decorators, ``@fork_safe`` mark and
  locally-declared locks;
* module-level lock variables and ``declare_lock_order(...)`` calls;
* module imports resolved to project files where possible, so the call
  graph can follow ``shm.activate(...)`` across module boundaries.

The tables are built from a single recursive walk and never mutate the
AST; nodes are kept by reference so rules can report exact positions.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import Iterator

__all__ = [
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "build_module",
    "dotted_name",
    "name_tail",
]

#: factory callables whose string argument names a declared lock
_LOCK_FACTORIES = {"tracked_lock", "TrackedLock"}


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def name_tail(node: ast.AST) -> str | None:
    """The final identifier of a Name/Attribute chain (``c`` of ``a.b.c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _lock_label(value: ast.AST) -> str | None:
    """The declared name if ``value`` is ``tracked_lock("name")``."""
    if (
        isinstance(value, ast.Call)
        and name_tail(value.func) in _LOCK_FACTORIES
        and value.args
        and isinstance(value.args[0], ast.Constant)
        and isinstance(value.args[0].value, str)
    ):
        return value.args[0].value
    return None


class FunctionInfo:
    """One function or method, with the facts later passes key on."""

    __slots__ = (
        "module",
        "node",
        "name",
        "qualname",
        "class_info",
        "fork_safe",
        "local_locks",
        "parent",
        "nested",
        # populated by the call-graph pass:
        "calls",
        "call_targets",
        "acquired_labels",
        "lexical_pairs",
        "spawn_nodes",
        "scoped_spawns",
        "fork_nodes",
        "ship_sites",
    )

    def __init__(
        self,
        module: "ModuleInfo",
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        qualname: str,
        class_info: "ClassInfo | None",
        parent: "FunctionInfo | None",
    ) -> None:
        self.module = module
        self.node = node
        self.name = node.name
        self.qualname = qualname
        self.class_info = class_info
        self.parent = parent
        self.nested: dict[str, FunctionInfo] = {}
        self.fork_safe = any(
            name_tail(dec) == "fork_safe" for dec in node.decorator_list
        )
        #: function-local lock variables: var name -> declared lock label
        self.local_locks: dict[str, str] = {}
        self.calls: list["object"] = []
        self.call_targets: dict[int, "FunctionInfo"] = {}
        self.acquired_labels: set[str] = set()
        self.lexical_pairs: list[tuple[str, str, ast.With]] = []
        self.spawn_nodes: list[ast.Call] = []
        #: spawn calls used as ``with`` context managers — their worker
        #: threads are joined at block exit, so they don't leak
        self.scoped_spawns: set[int] = set()
        self.fork_nodes: list[ast.Call] = []
        self.ship_sites: list[tuple[ast.Call, ast.expr]] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FunctionInfo {self.module.path}::{self.qualname}>"


class ClassInfo:
    """One class: methods, guard annotation and declared lock attributes."""

    __slots__ = (
        "module",
        "node",
        "name",
        "qualname",
        "base_names",
        "methods",
        "guard_lock_attr",
        "guarded_fields",
        "lock_attrs",
    )

    def __init__(self, module: "ModuleInfo", node: ast.ClassDef, qualname: str) -> None:
        self.module = module
        self.node = node
        self.name = node.name
        self.qualname = qualname
        self.base_names = [
            base for base in (dotted_name(b) for b in node.bases) if base
        ]
        self.methods: dict[str, FunctionInfo] = {}
        #: ``@guarded_by("_lock", "_frames", ...)`` annotation, if any
        self.guard_lock_attr: str | None = None
        self.guarded_fields: tuple[str, ...] = ()
        #: instance lock attributes: attr name -> declared lock label
        self.lock_attrs: dict[str, str] = {}
        for dec in node.decorator_list:
            if not (isinstance(dec, ast.Call) and name_tail(dec.func) == "guarded_by"):
                continue
            literals = [
                arg.value
                for arg in dec.args
                if isinstance(arg, ast.Constant) and isinstance(arg.value, str)
            ]
            if literals:
                self.guard_lock_attr = literals[0]
                self.guarded_fields = tuple(literals[1:])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ClassInfo {self.module.path}::{self.qualname}>"


class ModuleInfo:
    """Symbol table for one linted file."""

    __slots__ = (
        "path",
        "tree",
        "source_lines",
        "classes",
        "functions",
        "all_functions",
        "module_locks",
        "lock_order_calls",
        "imports",
    )

    def __init__(self, path: str, tree: ast.Module, source_lines: list[str]) -> None:
        self.path = path
        self.tree = tree
        self.source_lines = source_lines
        #: top-level classes by name
        self.classes: dict[str, ClassInfo] = {}
        #: top-level functions by name
        self.functions: dict[str, FunctionInfo] = {}
        #: every function at any nesting depth, in source order
        self.all_functions: list[FunctionInfo] = []
        #: module-level lock variables: name -> declared label
        self.module_locks: dict[str, str] = {}
        #: every ``declare_lock_order(...)`` call with its literal names
        #: (``None`` when an argument is not a string literal)
        self.lock_order_calls: list[tuple[ast.Call, tuple[str, ...] | None]] = []
        #: import aliases: local name -> dotted module path it refers to.
        #: Relative imports are pre-resolved against this module's path.
        self.imports: dict[str, str] = {}

    def posix(self) -> PurePosixPath:
        return PurePosixPath(self.path)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ModuleInfo {self.path}>"


def _resolve_relative(path: str, level: int, module: str | None) -> str:
    """Dotted target of a ``from ..pkg import x`` seen in ``path``.

    ``src/repro/planner/parallel.py`` with ``level=2, module="kernels"``
    resolves to ``src.repro.kernels`` — dotted over the file tree, which
    is all the call graph needs to match project files.
    """
    parts = list(PurePosixPath(path).parts)
    parts = parts[:-1]  # drop the file name
    if parts and parts[-1] == "__init__.py":  # pragma: no cover - defensive
        parts = parts[:-1]
    drop = level - 1
    if drop > 0:
        parts = parts[: len(parts) - drop] if drop <= len(parts) else []
    if module:
        parts.extend(module.split("."))
    return ".".join(parts)


def _record_imports(info: ModuleInfo, node: ast.stmt) -> None:
    if isinstance(node, ast.Import):
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            # ``import a.b.c`` binds ``a``; ``import a.b.c as d`` binds the
            # full dotted path to ``d``
            info.imports[local] = alias.name if alias.asname else alias.name.split(".")[0]
    elif isinstance(node, ast.ImportFrom):
        if node.level:
            base = _resolve_relative(info.path, node.level, node.module)
        else:
            base = node.module or ""
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            info.imports[local] = f"{base}.{alias.name}" if base else alias.name


class _SymbolCollector:
    """Single recursive walk that fills a :class:`ModuleInfo`."""

    def __init__(self, info: ModuleInfo) -> None:
        self.info = info

    def collect(self) -> None:
        for stmt in self.info.tree.body:
            self._walk_stmt(stmt, class_info=None, function=None, prefix="")
        self._scan_lock_order(self.info.tree)

    def _scan_lock_order(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) and name_tail(node.func) == "declare_lock_order":
                names: tuple[str, ...] | None
                literals = []
                literal_only = True
                for arg in node.args:
                    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                        literals.append(arg.value)
                    else:
                        literal_only = False
                names = tuple(literals) if literal_only else None
                self.info.lock_order_calls.append((node, names))

    # ------------------------------------------------------------------
    def _walk_stmt(
        self,
        node: ast.stmt,
        *,
        class_info: ClassInfo | None,
        function: FunctionInfo | None,
        prefix: str,
    ) -> None:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            _record_imports(self.info, node)
            return
        if isinstance(node, ast.ClassDef):
            qualname = f"{prefix}{node.name}"
            cls = ClassInfo(self.info, node, qualname)
            if function is None and class_info is None:
                self.info.classes[node.name] = cls
            for stmt in node.body:
                self._walk_stmt(
                    stmt, class_info=cls, function=None, prefix=f"{qualname}."
                )
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{prefix}{node.name}"
            fn = FunctionInfo(self.info, node, qualname, class_info, function)
            self.info.all_functions.append(fn)
            if class_info is not None and function is None:
                class_info.methods[node.name] = fn
            elif function is not None:
                function.nested[node.name] = fn
            else:
                self.info.functions[node.name] = fn
            for stmt in node.body:
                self._walk_stmt(
                    stmt, class_info=class_info, function=fn, prefix=f"{qualname}."
                )
            return
        self._note_lock_bindings(node, class_info=class_info, function=function)
        for child in self._child_stmts(node):
            self._walk_stmt(child, class_info=class_info, function=function, prefix=prefix)

    @staticmethod
    def _child_stmts(node: ast.stmt) -> Iterator[ast.stmt]:
        for field in ("body", "orelse", "finalbody"):
            yield from getattr(node, field, ())
        for handler in getattr(node, "handlers", ()):
            yield from handler.body

    def _note_lock_bindings(
        self,
        node: ast.stmt,
        *,
        class_info: ClassInfo | None,
        function: FunctionInfo | None,
    ) -> None:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            return
        label = _lock_label(node.value)
        if label is None:
            return
        target = node.targets[0]
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and class_info is not None
        ):
            class_info.lock_attrs[target.attr] = label
        elif isinstance(target, ast.Name):
            if function is not None:
                function.local_locks[target.id] = label
            else:
                self.info.module_locks[target.id] = label


def build_module(path: str, source: str, tree: ast.Module | None = None) -> ModuleInfo:
    """Build the symbol table for one file (parsing if needed)."""
    if tree is None:
        tree = ast.parse(source)
    info = ModuleInfo(path, tree, source.splitlines())
    _SymbolCollector(info).collect()
    return info
