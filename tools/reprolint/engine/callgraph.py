"""Project-wide call graph with lock context: the engine's second pass.

For every function the pass records, in one body walk:

* resolved call sites (``CallSite``) — calls to same-module functions,
  ``self.method(...)`` within a class (following base classes across the
  project), ``alias.function(...)`` through project imports, and
  project-class constructors;
* the lexical ``with <lock>:`` stack held around each call site, both as
  raw source tokens (``self._lock``) and as declared lock labels
  (``buffer-pool``) when the expression resolves to a known lock;
* lexical lock-nesting pairs (outer label, inner label) for R011;
* direct thread-spawn sites (``ThreadPoolExecutor``/``Thread``), direct
  fork sites (``os.fork``, fork-context ``Pool``, ``multiprocessing.Pool``,
  ``ProcessPoolExecutor``) for R012;
* process-pool ship sites (``pool.map(fn, ...)`` and friends) for R013.

Unresolvable calls (attribute calls on objects of unknown type, calls
through stored callables) simply produce no edge: the dataflow pass is
written so missing edges can only *hide* context, never invent it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable

from .symbols import ClassInfo, FunctionInfo, ModuleInfo, dotted_name, name_tail

__all__ = ["CallSite", "Project", "build_project", "lock_label_of"]

#: methods that hand a callable to a process pool, with the callable's
#: positional index (always 0 for the stdlib pool APIs)
_POOL_SHIP_METHODS = {
    "map",
    "imap",
    "imap_unordered",
    "starmap",
    "starmap_async",
    "apply",
    "apply_async",
    "map_async",
    "submit",
}

_THREAD_SPAWNERS = {"ThreadPoolExecutor", "Thread", "Timer"}
_PROCESS_SPAWNERS = {"Pool", "ProcessPoolExecutor"}


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge, with the lexical lock context around it."""

    caller: FunctionInfo
    callee: FunctionInfo
    node: ast.Call
    held_labels: tuple[str, ...]
    held_tokens: tuple[str, ...]
    on_self: bool


class Project:
    """All linted modules plus the cross-module resolution indexes."""

    def __init__(self, modules: list[ModuleInfo]) -> None:
        self.modules = modules
        self.call_sites: list[CallSite] = []
        #: callee -> its call sites (filled by :func:`build_project`)
        self.callers: dict[FunctionInfo, list[CallSite]] = {}
        self._by_dotted: dict[str, ModuleInfo] = {}
        self._classes_by_name: dict[str, list[ClassInfo]] = {}
        for module in modules:
            dotted = self._dotted_of(module)
            if dotted:
                self._by_dotted[dotted] = module
            for cls in module.classes.values():
                self._classes_by_name.setdefault(cls.name, []).append(cls)

    @staticmethod
    def _dotted_of(module: ModuleInfo) -> str:
        parts = [p for p in module.posix().parts if p not in ("/", "")]
        if not parts:
            return ""
        leaf = parts[-1]
        if leaf.endswith(".py"):
            leaf = leaf[:-3]
        parts = parts[:-1] + ([] if leaf == "__init__" else [leaf])
        return ".".join(parts)

    def resolve_module(self, dotted: str) -> ModuleInfo | None:
        """The project module a dotted import path refers to, if linted."""
        if not dotted:
            return None
        exact = self._by_dotted.get(dotted)
        if exact is not None:
            return exact
        suffix = "." + dotted
        for known, module in self._by_dotted.items():
            if known.endswith(suffix):
                return module
        return None

    def find_class(self, name: str, *, near: ModuleInfo | None = None) -> ClassInfo | None:
        """A project class by simple name, preferring the given module."""
        if near is not None:
            local = near.classes.get(name)
            if local is not None:
                return local
            imported = near.imports.get(name)
            if imported is not None:
                owner = self.resolve_module(".".join(imported.split(".")[:-1]))
                if owner is not None and imported.split(".")[-1] in owner.classes:
                    return owner.classes[imported.split(".")[-1]]
        candidates = self._classes_by_name.get(name, [])
        return candidates[0] if candidates else None

    def mro_classes(self, cls: ClassInfo) -> Iterable[ClassInfo]:
        """The class and its resolvable project bases, nearest first."""
        seen: set[int] = set()
        stack = [cls]
        while stack:
            current = stack.pop(0)
            if id(current) in seen:
                continue
            seen.add(id(current))
            yield current
            for base in current.base_names:
                resolved = self.find_class(base.split(".")[-1], near=current.module)
                if resolved is not None and id(resolved) not in seen:
                    stack.append(resolved)

    def functions(self) -> Iterable[FunctionInfo]:
        for module in self.modules:
            yield from module.all_functions


def lock_label_of(project: Project, fn: FunctionInfo, expr: ast.expr) -> str | None:
    """Declared label of a lock expression, if it resolves to one."""
    if isinstance(expr, ast.Name):
        scope: FunctionInfo | None = fn
        while scope is not None:
            if expr.id in scope.local_locks:
                return scope.local_locks[expr.id]
            scope = scope.parent
        return fn.module.module_locks.get(expr.id)
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and fn.class_info is not None
    ):
        for cls in project.mro_classes(fn.class_info):
            if expr.attr in cls.lock_attrs:
                return cls.lock_attrs[expr.attr]
    return None


def _resolve_call(project: Project, fn: FunctionInfo, call: ast.Call) -> tuple[FunctionInfo | None, bool]:
    """(callee, call-is-on-self) for a call node, best effort."""
    func = call.func
    if isinstance(func, ast.Name):
        scope: FunctionInfo | None = fn
        while scope is not None:
            if func.id in scope.nested:
                return scope.nested[func.id], False
            scope = scope.parent
        target = fn.module.functions.get(func.id)
        if target is not None:
            return target, False
        local_cls = fn.module.classes.get(func.id)
        if local_cls is not None:
            return local_cls.methods.get("__init__"), False
        imported = fn.module.imports.get(func.id)
        if imported is not None:
            owner = project.resolve_module(".".join(imported.split(".")[:-1]))
            leaf = imported.split(".")[-1]
            if owner is not None:
                if leaf in owner.functions:
                    return owner.functions[leaf], False
                if leaf in owner.classes:
                    return owner.classes[leaf].methods.get("__init__"), False
        return None, False
    if not isinstance(func, ast.Attribute):
        return None, False
    owner = func.value
    if isinstance(owner, ast.Name) and owner.id == "self" and fn.class_info is not None:
        for cls in project.mro_classes(fn.class_info):
            if func.attr in cls.methods:
                return cls.methods[func.attr], True
        return None, True
    if isinstance(owner, ast.Name):
        local_cls = fn.module.classes.get(owner.id)
        if local_cls is not None:
            return local_cls.methods.get(func.attr), False
        imported = fn.module.imports.get(owner.id)
        if imported is not None:
            target_module = project.resolve_module(imported)
            if target_module is not None:
                if func.attr in target_module.functions:
                    return target_module.functions[func.attr], False
                if func.attr in target_module.classes:
                    return target_module.classes[func.attr].methods.get("__init__"), False
            owner_module = project.resolve_module(".".join(imported.split(".")[:-1]))
            leaf = imported.split(".")[-1]
            if owner_module is not None and leaf in owner_module.classes:
                return owner_module.classes[leaf].methods.get(func.attr), False
    return None, False


class _BodyWalker:
    """One function body: with-stack tracking plus call classification."""

    def __init__(self, project: Project, fn: FunctionInfo) -> None:
        self.project = project
        self.fn = fn
        #: lexical with-stack: (source token, resolved label or None)
        self.with_stack: list[tuple[str, str | None]] = []
        #: local variables bound to ``get_context("fork")`` results
        self.fork_contexts: set[str] = set()
        #: local variables bound to process pools / process executors
        self.pool_vars: set[str] = set()

    # -- classification helpers ---------------------------------------
    def _is_fork_context_call(self, node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and name_tail(node.func) == "get_context"
            and bool(node.args)
            and isinstance(node.args[0], ast.Constant)
            and node.args[0].value == "fork"
        )

    def _is_process_pool_call(self, call: ast.Call) -> bool:
        tail = name_tail(call.func)
        if tail == "ProcessPoolExecutor":
            return True
        if tail != "Pool":
            return False
        func = call.func
        if isinstance(func, ast.Name):
            # ``from multiprocessing import Pool``
            imported = self.fn.module.imports.get(func.id, "")
            return imported.startswith("multiprocessing")
        owner = func.value if isinstance(func, ast.Attribute) else None
        if isinstance(owner, ast.Name):
            if owner.id in self.fork_contexts:
                return True
            return self.fn.module.imports.get(owner.id, "") == "multiprocessing"
        return owner is not None and self._is_fork_context_call(owner)

    def _is_thread_spawn_call(self, call: ast.Call) -> bool:
        return name_tail(call.func) in _THREAD_SPAWNERS

    def _is_direct_fork_call(self, call: ast.Call) -> bool:
        if dotted_name(call.func) == "os.fork":
            return True
        return self._is_process_pool_call(call)

    # -- the walk ------------------------------------------------------
    def walk(self) -> None:
        for stmt in self.fn.node.body:
            self._stmt(stmt)

    def _stmt(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # walked as their own symbols
        if isinstance(node, (ast.With, ast.AsyncWith)):
            self._with(node)
            return
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                if self._is_fork_context_call(node.value):
                    self.fork_contexts.add(target.id)
                elif isinstance(node.value, ast.Call) and self._is_process_pool_call(
                    node.value
                ):
                    self.pool_vars.add(target.id)
        self._expr_fields(node)
        for field in ("body", "orelse", "finalbody"):
            for child in getattr(node, field, ()):
                self._stmt(child)
        for handler in getattr(node, "handlers", ()):
            for child in handler.body:
                self._stmt(child)

    def _with(self, node: ast.With | ast.AsyncWith) -> None:
        pushed = 0
        for item in node.items:
            ctx = item.context_expr
            self._expr(ctx)
            token = ast.unparse(ctx)
            label = lock_label_of(self.project, self.fn, ctx)
            if label is not None:
                self.fn.acquired_labels.add(label)
                for _, outer_label in self.with_stack:
                    if outer_label is not None and outer_label != label:
                        self.fn.lexical_pairs.append((outer_label, label, node))
            if (
                isinstance(ctx, ast.Call)
                and self._is_process_pool_call(ctx)
                and isinstance(item.optional_vars, ast.Name)
            ):
                self.pool_vars.add(item.optional_vars.id)
            if isinstance(ctx, ast.Call) and self._is_thread_spawn_call(ctx):
                self.fn.scoped_spawns.add(id(ctx))
            self.with_stack.append((token, label))
            pushed += 1
        for child in node.body:
            self._stmt(child)
        del self.with_stack[-pushed:]

    def _expr_fields(self, node: ast.stmt) -> None:
        for field, value in ast.iter_fields(node):
            if field in ("body", "orelse", "finalbody", "handlers"):
                continue
            if isinstance(value, ast.expr):
                self._expr(value)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, ast.expr):
                        self._expr(item)

    def _expr(self, node: ast.expr) -> None:
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                self._call(child)

    def _call(self, call: ast.Call) -> None:
        fn = self.fn
        if self._is_thread_spawn_call(call):
            fn.spawn_nodes.append(call)
        if self._is_direct_fork_call(call):
            fn.fork_nodes.append(call)
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self.pool_vars
            and func.attr in _POOL_SHIP_METHODS
            and call.args
        ):
            fn.ship_sites.append((call, call.args[0]))
        callee, on_self = _resolve_call(self.project, fn, call)
        if callee is None:
            return
        site = CallSite(
            caller=fn,
            callee=callee,
            node=call,
            held_labels=tuple(
                label for _, label in self.with_stack if label is not None
            ),
            held_tokens=tuple(token for token, _ in self.with_stack),
            on_self=on_self,
        )
        fn.calls.append(site)
        fn.call_targets[id(call)] = callee
        self.project.call_sites.append(site)
        self.project.callers.setdefault(callee, []).append(site)


def build_project(modules: list[ModuleInfo]) -> Project:
    """Index the modules and walk every function body once."""
    project = Project(modules)
    for fn in list(project.functions()):
        _BodyWalker(project, fn).walk()
    return project
