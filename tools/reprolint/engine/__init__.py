"""Interprocedural analysis engine behind reprolint's project rules.

The engine runs in three passes over the linted tree:

1. :mod:`.symbols` — per-module symbol tables: classes, functions,
   declared locks (``tracked_lock("name")`` assignments), ``@guarded_by``
   annotations, ``@fork_safe`` marks and ``declare_lock_order`` calls.
2. :mod:`.callgraph` — a project-wide call graph.  Each call site
   records the lexical ``with <lock>:`` stack held around it, so later
   passes know which locks are provably held on entry to a callee.
3. :mod:`.dataflow` — fixpoint analyses over the graph: transitive lock
   acquisition sets, the guarded-mutation reachability check (R010),
   lock-order pair collection (R011), and thread/fork sequencing (R012).

File-scoped rules (R001–R009) never touch the engine; only the
project rules R010–R013 do, which keeps single-file ``lint_source``
calls exactly as cheap as they were before the engine existed.
"""

from __future__ import annotations

from .callgraph import CallSite, Project, build_project
from .symbols import ClassInfo, FunctionInfo, ModuleInfo, build_module

__all__ = [
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "Project",
    "build_module",
    "build_project",
]
