"""Fixpoint analyses over the call graph: the engine's third pass.

Everything here is deliberately *monotone over missing edges*: the call
graph only contains edges it could prove, so each analysis is shaped so
an unresolved call can at worst hide a finding, never fabricate one.

* :func:`transitive_flag` — the classic reachability fixpoint ("does
  this function, or anything it calls, do X?") used for the
  thread-spawn and process-fork flags of R012.
* :func:`transitive_acquisitions` — per-function set of lock labels
  acquired on any call path, used by R011 to turn "calls ``pool.get``
  while holding the staging lock" into the order pair
  ``(executor-staging, buffer-pool)``.
* :func:`protected_methods` — the greatest-fixpoint reachability check
  behind R010: a method is *protected* when every resolved call site
  either lexically holds the class guard lock or comes from another
  protected method of the same class via ``self``.  Methods nobody
  calls are not protected — they must take the lock themselves.
* :func:`SequenceWalker` — the ordered-statement walk behind R012 that
  tracks "threads have been spawned by this point", treating ``if``
  branches as unsequenced alternatives and walking loop bodies twice so
  a spawn in iteration *n* reaches a fork in iteration *n + 1*.
"""

from __future__ import annotations

import ast
from typing import Callable, Iterable

from .callgraph import Project
from .symbols import FunctionInfo

__all__ = [
    "SequenceWalker",
    "protected_methods",
    "transitive_acquisitions",
    "transitive_flag",
]


def transitive_flag(
    project: Project, direct: Callable[[FunctionInfo], bool]
) -> set[FunctionInfo]:
    """Functions where ``direct`` holds, or that call one transitively."""
    flagged = {fn for fn in project.functions() if direct(fn)}
    worklist = list(flagged)
    while worklist:
        fn = worklist.pop()
        for site in project.callers.get(fn, ()):  # propagate callee -> caller
            if site.caller not in flagged:
                flagged.add(site.caller)
                worklist.append(site.caller)
    return flagged


def transitive_acquisitions(project: Project) -> dict[FunctionInfo, set[str]]:
    """Lock labels each function may acquire on some call path."""
    acquired = {fn: set(fn.acquired_labels) for fn in project.functions()}
    changed = True
    while changed:
        changed = False
        for site in project.call_sites:
            callee_set = acquired.get(site.callee)
            if not callee_set:
                continue
            caller_set = acquired[site.caller]
            before = len(caller_set)
            caller_set |= callee_set
            if len(caller_set) != before:
                changed = True
    return acquired


def protected_methods(
    project: Project,
    methods: Iterable[FunctionInfo],
    guard_label: str,
) -> set[FunctionInfo]:
    """Methods reachable *only* with the class guard lock held.

    Greatest fixpoint: start from every method that has at least one
    resolved call site, then strike any method with a call site that
    neither holds ``guard_label`` lexically nor comes from a still-
    protected sibling method through ``self``.  Mutually-recursive
    helpers with no locked entry point survive the fixpoint — a known
    blind spot that only ever *misses* findings, matching the engine's
    no-false-positive contract.
    """
    candidates = {m for m in methods if project.callers.get(m)}
    changed = True
    while changed:
        changed = False
        for method in list(candidates):
            for site in project.callers.get(method, ()):
                if guard_label in site.held_labels:
                    continue
                if (
                    site.on_self
                    and site.caller in candidates
                    and site.caller.class_info is method.class_info
                ):
                    continue
                candidates.discard(method)
                changed = True
                break
    return candidates


class SequenceWalker:
    """Per-function ordered walk for R012's fork-after-spawn check.

    ``walk`` returns whether threads may have been spawned by the end of
    the body, and appends every ``(fork call node, spawning flag)``
    conflict it sees to ``violations``.
    """

    def __init__(
        self,
        fn: FunctionInfo,
        spawners: set[FunctionInfo],
        forkers: set[FunctionInfo],
    ) -> None:
        self.fn = fn
        self.spawners = spawners
        self.forkers = forkers
        self.violations: list[ast.Call] = []
        self._direct_spawns = {id(node) for node in fn.spawn_nodes}
        self._direct_forks = {id(node) for node in fn.fork_nodes}

    # -- event classification ------------------------------------------
    def _call_spawns(self, call: ast.Call) -> bool:
        if id(call) in self._direct_spawns:
            # with-scoped executors join their threads at block exit;
            # the With handler models their lifetime instead
            return id(call) not in self.fn.scoped_spawns
        target = self.fn.call_targets.get(id(call))
        return target is not None and target in self.spawners

    def _call_forks(self, call: ast.Call) -> bool:
        if id(call) in self._direct_forks:
            return True
        target = self.fn.call_targets.get(id(call))
        return target is not None and target in self.forkers

    # -- the walk ------------------------------------------------------
    def walk(self) -> bool:
        return self._body(self.fn.node.body, False)

    def _body(self, stmts: Iterable[ast.stmt], spawned: bool) -> bool:
        for stmt in stmts:
            spawned = self._stmt(stmt, spawned)
        return spawned

    def _stmt(self, node: ast.stmt, spawned: bool) -> bool:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return spawned
        if isinstance(node, ast.If):
            spawned_expr = self._exprs(node, spawned)
            body = self._body(node.body, spawned_expr)
            orelse = self._body(node.orelse, spawned_expr)
            return body or orelse  # branches are alternatives, not a sequence
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            spawned = self._exprs(node, spawned)
            # walk the body twice: iteration n's spawn precedes n+1's fork
            spawned = self._body(node.body, spawned)
            spawned = self._body(node.body, spawned)
            return self._body(node.orelse, spawned)
        if isinstance(node, ast.Try):
            spawned = self._exprs(node, spawned)
            after_body = self._body(node.body, spawned)
            after_handlers = after_body
            for handler in node.handlers:
                after_handlers = self._body(handler.body, after_body) or after_handlers
            spawned = self._body(node.orelse, after_handlers)
            return self._body(node.finalbody, spawned)
        if isinstance(node, (ast.With, ast.AsyncWith)):
            before = self._exprs(node, spawned)
            scoped = any(
                id(item.context_expr) in self.fn.scoped_spawns
                for item in node.items
            )
            # inside a ``with ThreadPoolExecutor(...)`` block threads are
            # live; at block exit they are joined, so the flag resets
            after_body = self._body(node.body, before or scoped)
            return before if scoped else after_body
        return self._exprs(node, spawned)

    def _exprs(self, node: ast.stmt, spawned: bool) -> bool:
        """Process the statement's own expressions (not nested bodies)."""
        for field, value in ast.iter_fields(node):
            if field in ("body", "orelse", "finalbody", "handlers"):
                continue
            values = value if isinstance(value, list) else [value]
            for item in values:
                if not isinstance(item, ast.AST):
                    continue
                for child in ast.walk(item):
                    if not isinstance(child, ast.Call):
                        continue
                    if self._call_forks(child):
                        if spawned:
                            self.violations.append(child)
                    if self._call_spawns(child):
                        spawned = True
        return spawned

    # With items hold the spawning calls for pools/executors, and
    # ``_exprs`` already sees them through ``iter_fields`` (the ``items``
    # field is a list of withitem AST nodes, walked generically).
