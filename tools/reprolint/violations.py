"""The finding model shared by every reprolint rule and the driver.

A :class:`Violation` is one finding, rendered ``path:line:col: RULE
message`` — the format the test suite, the CI annotations and the JSON
output mode all derive from.  Suppression is line-scoped: a trailing
``# reprolint: allow`` (blanket) or ``# reprolint: allow(R00X)``
(rule-specific) comment on the offending line silences the finding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["Violation", "suppressed"]


@dataclass(frozen=True)
class Violation:
    """One finding: ``path:line:col: rule message``."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> dict[str, object]:
        """JSON-mode payload (stable key order via insertion)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


def suppressed(source_lines: Sequence[str], violation: Violation) -> bool:
    """Whether the finding's line carries a matching allow comment."""
    if not 1 <= violation.line <= len(source_lines):
        return False
    text = source_lines[violation.line - 1]
    index = text.find("# reprolint: allow")
    if index < 0:
        return False
    rest = text[index + len("# reprolint: allow") :].strip()
    return rest == "" or violation.rule in rest
